//! Lag-aware read routing across a fleet of follower-served query
//! front-ends.
//!
//! A [`ReadRouter`] holds one [`QueryClient`] per follower endpoint,
//! periodically polls each one's stats frame for its applied watermark
//! (`modb_replica_applied_lsn`, or the WAL frontier when the endpoint is
//! a leader) and lag clock, and sends each batch to the freshest
//! follower that can satisfy the batch's read-your-writes token:
//!
//! - candidates whose last-known watermark covers the token are tried
//!   first, least-lagged first — they answer without waiting;
//! - a typed `Stale` refusal **overwrites** the endpoint's watermark
//!   with the refusal's (it is authoritative — the poll view that put
//!   the refuser first was stale) and adds
//!   [`ReadRouterConfig::stale_penalty`] to its lag, so the next routing
//!   decision rotates to a fresher follower instead of hammering the
//!   same refuser;
//! - a transport error drops the connection and fails over likewise; the
//!   endpoint is re-dialed on a later refresh, but never sooner than
//!   [`ReadRouterConfig::redial_backoff`] after the loss, and each dial
//!   is bounded by the client config's `connect_timeout` — a dead
//!   endpoint costs the batch path a bounded, rate-limited amount, not a
//!   synchronous full-length TCP timeout per batch.
//!
//! Only when *every* endpoint refuses or fails does the batch error out,
//! and the error is typed ([`RouterError`]): `AllStale` carries the
//! freshest watermark seen against the floor that beat it, `NoEndpoint`
//! means nothing was even reachable. This is the client half of the
//! read-fan-out story (DESIGN.md §15): one write leader, N chained
//! followers, readers spread by staleness.

use std::fmt;
use std::time::{Duration, Instant};

use modb_wal::WalError;

use crate::net::client::{BatchOutcome, QueryClient, QueryClientConfig};
use crate::net::protocol::RemoteVerdict;

/// Tuning for [`ReadRouter`].
#[derive(Debug, Clone)]
pub struct ReadRouterConfig {
    /// How stale the router's view of follower watermarks may grow
    /// before the next batch triggers a re-poll (and re-dials dead
    /// endpoints whose backoff has elapsed).
    pub refresh_interval: Duration,
    /// Minimum pause between dial attempts at one dead endpoint. Keeps
    /// an unreachable follower from taxing every refresh (and therefore
    /// the batch path) with a fresh connection attempt.
    pub redial_backoff: Duration,
    /// Added to an endpoint's lag view when it answers a batch with a
    /// `Stale` refusal, demoting it behind equally-satisfying peers in
    /// the next routing decision so retries rotate instead of pinning.
    pub stale_penalty: Duration,
    /// Per-connection tuning for the underlying [`QueryClient`]s. The
    /// default sets `connect_timeout` so a black-holed endpoint cannot
    /// stall a refresh for the OS connect timeout; keep it set if you
    /// build this by hand.
    pub client: QueryClientConfig,
}

impl Default for ReadRouterConfig {
    fn default() -> Self {
        ReadRouterConfig {
            refresh_interval: Duration::from_millis(250),
            redial_backoff: Duration::from_secs(1),
            stale_penalty: Duration::from_millis(250),
            client: QueryClientConfig {
                connect_timeout: Some(Duration::from_millis(250)),
                ..QueryClientConfig::default()
            },
        }
    }
}

/// Why the router could not serve a batch (or come up at all). Converts
/// into [`WalError`] for call sites that funnel everything through the
/// storage error type.
#[derive(Debug)]
pub enum RouterError {
    /// Every reachable endpoint refused the batch's read-your-writes
    /// floor: the freshest applied watermark any refusal reported, and
    /// the floor none of them reached.
    AllStale {
        /// Highest applied watermark among the refusals.
        applied: u64,
        /// The read-your-writes floor the batch demanded.
        required: u64,
    },
    /// No endpoint is connected: none were given, none were reachable,
    /// or every dial is sitting out its backoff after a connection loss.
    NoEndpoint,
    /// Every connected endpoint failed at the transport level; the last
    /// error observed.
    Transport(WalError),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::AllStale { applied, required } => write!(
                f,
                "every follower stale: freshest applied {applied} < required {required}"
            ),
            RouterError::NoEndpoint => write!(f, "no read endpoint reachable"),
            RouterError::Transport(e) => write!(f, "every read endpoint failed; last error: {e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouterError> for WalError {
    fn from(e: RouterError) -> Self {
        match e {
            RouterError::AllStale { .. } => WalError::Io(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                e.to_string(),
            )),
            RouterError::NoEndpoint => WalError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                e.to_string(),
            )),
            RouterError::Transport(inner) => inner,
        }
    }
}

/// The router's last-known view of one follower endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerStatus {
    /// The endpoint address as given to [`ReadRouter::connect`].
    pub addr: String,
    /// Whether a live connection is currently held.
    pub connected: bool,
    /// Applied watermark from the last stats poll (0 before the first).
    pub applied_lsn: u64,
    /// Lag clock from the last stats poll (zero for a leader endpoint),
    /// plus any accumulated stale penalties since.
    pub lag: Duration,
}

struct Endpoint {
    addr: String,
    client: Option<QueryClient>,
    applied_lsn: u64,
    lag: Duration,
    /// Earliest instant the next dial may be attempted; `None` = now.
    next_dial: Option<Instant>,
}

/// Routes read batches to the least-lagged follower satisfying each
/// batch's session token, failing over on staleness and connection loss.
/// See the module docs for the policy.
pub struct ReadRouter {
    endpoints: Vec<Endpoint>,
    config: ReadRouterConfig,
    last_refresh: Option<Instant>,
}

impl ReadRouter {
    /// Connects to a fleet of follower (or leader) query front-ends and
    /// takes an initial watermark poll. Endpoints that cannot be reached
    /// yet are kept and re-dialed on later refreshes — the router comes
    /// up as long as *one* endpoint answers.
    ///
    /// # Errors
    ///
    /// [`RouterError::NoEndpoint`]: an empty endpoint list, or every
    /// endpoint unreachable.
    pub fn connect<S: Into<String>>(
        addrs: impl IntoIterator<Item = S>,
        config: ReadRouterConfig,
    ) -> Result<Self, RouterError> {
        let endpoints: Vec<Endpoint> = addrs
            .into_iter()
            .map(|a| Endpoint {
                addr: a.into(),
                client: None,
                applied_lsn: 0,
                lag: Duration::ZERO,
                next_dial: None,
            })
            .collect();
        if endpoints.is_empty() {
            return Err(RouterError::NoEndpoint);
        }
        let mut router = ReadRouter {
            endpoints,
            config,
            last_refresh: None,
        };
        router.refresh();
        if router.endpoints.iter().all(|e| e.client.is_none()) {
            return Err(RouterError::NoEndpoint);
        }
        Ok(router)
    }

    /// Re-dials dead endpoints whose backoff has elapsed and re-polls
    /// every live one's watermark and lag. Called automatically when the
    /// last poll is older than [`ReadRouterConfig::refresh_interval`];
    /// call it directly to force a fresh view.
    pub fn refresh(&mut self) {
        let now = Instant::now();
        for ep in &mut self.endpoints {
            if ep.client.is_none() {
                if ep.next_dial.is_some_and(|t| now < t) {
                    continue; // still in backoff from the last failure
                }
                match QueryClient::connect_with(&ep.addr, self.config.client.clone()) {
                    Ok(client) => {
                        ep.client = Some(client);
                        ep.next_dial = None;
                    }
                    Err(_) => {
                        ep.next_dial = Some(now + self.config.redial_backoff);
                        continue;
                    }
                }
            }
            let Some(client) = ep.client.as_mut() else {
                continue;
            };
            match client.stats() {
                Ok(stats) => {
                    // A leader endpoint has no replica watermark; its WAL
                    // frontier plays the same role (it is never stale).
                    ep.applied_lsn = stats.replica_applied_lsn.unwrap_or(stats.wal_next_lsn);
                    ep.lag = stats.replica_lag.unwrap_or(Duration::ZERO);
                }
                Err(_) => {
                    ep.client = None;
                    ep.next_dial = Some(Instant::now() + self.config.redial_backoff);
                }
            }
        }
        self.last_refresh = Some(Instant::now());
    }

    fn maybe_refresh(&mut self) {
        let due = self
            .last_refresh
            .is_none_or(|t| t.elapsed() >= self.config.refresh_interval);
        if due {
            self.refresh();
        }
    }

    /// The router's current view of its fleet, in endpoint order.
    pub fn statuses(&self) -> Vec<FollowerStatus> {
        self.endpoints
            .iter()
            .map(|ep| FollowerStatus {
                addr: ep.addr.clone(),
                connected: ep.client.is_some(),
                applied_lsn: ep.applied_lsn,
                lag: ep.lag,
            })
            .collect()
    }

    /// Runs a `;`-script with no read-your-writes floor on the freshest
    /// follower.
    ///
    /// # Errors
    ///
    /// As [`ReadRouter::batch_with_token`].
    pub fn batch(&mut self, script: &str) -> Result<Vec<RemoteVerdict>, RouterError> {
        self.batch_with_token(script, 0)
    }

    /// Runs a `;`-script with read-your-writes floor `token`, routing to
    /// the least-lagged follower whose last-known watermark satisfies it
    /// and failing over — through `Stale` refusals and connection
    /// losses — until some follower answers.
    ///
    /// # Errors
    ///
    /// [`RouterError::AllStale`] when every endpoint refused the floor,
    /// [`RouterError::NoEndpoint`] when none was even connected,
    /// [`RouterError::Transport`] when connected endpoints all failed.
    pub fn batch_with_token(
        &mut self,
        script: &str,
        token: u64,
    ) -> Result<Vec<RemoteVerdict>, RouterError> {
        self.maybe_refresh();
        // Candidate order: watermark-satisfying endpoints first (least
        // lag first — they answer without waiting), then the rest by
        // freshest watermark (they may catch up within the server-side
        // wait); dead endpoints are skipped.
        let mut order: Vec<usize> = (0..self.endpoints.len())
            .filter(|&i| self.endpoints[i].client.is_some())
            .collect();
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&self.endpoints[a], &self.endpoints[b]);
            let (sa, sb) = (ea.applied_lsn >= token, eb.applied_lsn >= token);
            sb.cmp(&sa)
                .then_with(|| ea.lag.cmp(&eb.lag))
                .then_with(|| eb.applied_lsn.cmp(&ea.applied_lsn))
        });
        if order.is_empty() {
            return Err(RouterError::NoEndpoint);
        }
        let mut last_err: Option<WalError> = None;
        let mut best_stale: Option<(u64, u64)> = None;
        for i in order {
            let ep = &mut self.endpoints[i];
            let client = ep.client.as_mut().expect("dead endpoints filtered");
            match client.batch_attempt(script, token) {
                Ok(BatchOutcome::Done(verdicts)) => return Ok(verdicts),
                Ok(BatchOutcome::Stale { applied, required }) => {
                    // The refusal is authoritative: the poll view that
                    // ranked this endpoint satisfying was stale, so
                    // overwrite it (a `max` would keep the overestimate
                    // and re-elect the refuser forever) and demote its
                    // lag so retries rotate to fresher peers.
                    ep.applied_lsn = applied;
                    ep.lag = ep.lag.saturating_add(self.config.stale_penalty);
                    best_stale = Some(match best_stale {
                        Some((a, r)) => (a.max(applied), r.max(required)),
                        None => (applied, required),
                    });
                }
                Err(e) => {
                    ep.client = None;
                    ep.next_dial = Some(Instant::now() + self.config.redial_backoff);
                    last_err = Some(e);
                }
            }
        }
        if let Some((applied, required)) = best_stale {
            return Err(RouterError::AllStale { applied, required });
        }
        match last_err {
            Some(e) => Err(RouterError::Transport(e)),
            None => Err(RouterError::NoEndpoint),
        }
    }

    /// Closes every connection.
    pub fn close(mut self) {
        for ep in &mut self.endpoints {
            if let Some(client) = ep.client.take() {
                client.close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use modb_core::MAX_BANDS;

    use crate::ingest::IngestStatsSnapshot;
    use crate::net::protocol::{
        send_message, FrameReader, Message, ReadEvent, ServerStatsSnapshot,
        DEFAULT_MAX_FRAME_BYTES, NET_PROTOCOL_VERSION,
    };
    use crate::query_engine::QueryStatsSnapshot;

    fn zero_stats(applied: u64) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            query: QueryStatsSnapshot {
                epoch: 0,
                queries: 0,
                epoch_queries: 0,
                errors: 0,
                candidates: 0,
                matches: 0,
                parallel_refines: 0,
                batches: 0,
                delta_publishes: 0,
                full_publishes: 0,
                publish_ns: 0,
                p50_us: 0,
                p99_us: 0,
                snapshot_age: Duration::ZERO,
            },
            ingest: IngestStatsSnapshot {
                accepted: 0,
                stale: 0,
                off_route: 0,
                unknown_object: 0,
                other_rejected: 0,
                wal_errors: 0,
            },
            wal_bytes_written: 0,
            wal_fsyncs: 0,
            wal_group_tickets: 0,
            wal_group_commits: 0,
            wal_group_last_batch: 0,
            wal_next_lsn: applied,
            ingest_queue_depth: 0,
            followers: 0,
            min_acked_lsn: None,
            shard: None,
            index_bands: 1,
            index_band_entries: [0u64; MAX_BANDS],
            index_band_migrations: 0,
            replica_applied_lsn: Some(applied),
            replica_lag: Some(Duration::ZERO),
        }
    }

    /// A scriptable follower front-end: handshakes, answers stats with a
    /// controllable applied watermark, and answers each batch with one
    /// error verdict — or a `Stale` refusal when the batch's floor
    /// outruns the watermark. Counts the batches it was asked to run.
    struct FakeFollower {
        addr: String,
        applied: Arc<AtomicU64>,
        batches: Arc<AtomicU64>,
        stop: Arc<AtomicBool>,
    }

    impl FakeFollower {
        fn spawn(applied_lsn: u64) -> Self {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let applied = Arc::new(AtomicU64::new(applied_lsn));
            let batches = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let (a, b, s) = (
                Arc::clone(&applied),
                Arc::clone(&batches),
                Arc::clone(&stop),
            );
            std::thread::spawn(move || {
                while !s.load(Ordering::Relaxed) {
                    let Ok((stream, _)) = listener.accept() else {
                        break;
                    };
                    let (a, b, s) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&s));
                    std::thread::spawn(move || Self::serve(stream, &a, &b, &s));
                }
            });
            FakeFollower {
                addr,
                applied,
                batches,
                stop,
            }
        }

        fn serve(
            mut stream: TcpStream,
            applied: &AtomicU64,
            batches: &AtomicU64,
            stop: &AtomicBool,
        ) {
            stream
                .set_read_timeout(Some(Duration::from_millis(10)))
                .unwrap();
            let mut reader = FrameReader::new(stream.try_clone().unwrap(), DEFAULT_MAX_FRAME_BYTES);
            while !stop.load(Ordering::Relaxed) {
                let msg = match reader.poll() {
                    Ok(ReadEvent::Message(m)) => m,
                    Ok(ReadEvent::Idle) => continue,
                    Ok(ReadEvent::Closed) | Err(_) => return,
                };
                let reply = match msg {
                    Message::Hello { .. } => vec![Message::HelloAck {
                        version: NET_PROTOCOL_VERSION,
                    }],
                    Message::StatsRequest => vec![Message::StatsReply(Box::new(zero_stats(
                        applied.load(Ordering::Relaxed),
                    )))],
                    Message::Batch { min_lsn, .. } => {
                        let now = applied.load(Ordering::Relaxed);
                        if min_lsn > now {
                            vec![Message::Stale {
                                applied: now,
                                required: min_lsn,
                            }]
                        } else {
                            batches.fetch_add(1, Ordering::Relaxed);
                            vec![
                                Message::Statement {
                                    index: 0,
                                    verdict: Err("fake".into()),
                                },
                                Message::BatchDone { count: 1 },
                            ]
                        }
                    }
                    _ => return,
                };
                for m in &reply {
                    if send_message(&mut stream, m).is_err() {
                        return;
                    }
                }
            }
        }
    }

    impl Drop for FakeFollower {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::Relaxed);
            let _ = TcpStream::connect(&self.addr); // unblock accept()
        }
    }

    fn quiet_config() -> ReadRouterConfig {
        // No mid-test re-poll: the tests drive the view by hand.
        ReadRouterConfig {
            refresh_interval: Duration::from_secs(600),
            client: QueryClientConfig {
                response_timeout: Duration::from_secs(5),
                connect_timeout: Some(Duration::from_millis(250)),
                ..QueryClientConfig::default()
            },
            ..ReadRouterConfig::default()
        }
    }

    /// Regression: a `Stale` refusal must dethrone the refuser. The old
    /// code `max`-ed the refusal's watermark into the (higher, stale)
    /// poll view and left lag untouched, so the refuser stayed the
    /// least-lagged satisfying candidate and every retry hit it first.
    #[test]
    fn stale_refusal_rotates_to_fresher_follower() {
        let fast = FakeFollower::spawn(100); // polls as fresh, lag 0
        let slow = FakeFollower::spawn(100);
        let mut router = ReadRouter::connect([&fast.addr, &slow.addr], quiet_config()).unwrap();
        // After the initial poll both advertise 100; `fast` regresses
        // (as a just-failed-over promotee's follower might) so a floor
        // of 50 now draws a refusal from it.
        fast.applied.store(10, Ordering::Relaxed);
        let verdicts = router.batch_with_token("q", 50).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(
            slow.batches.load(Ordering::Relaxed),
            1,
            "failover target must have answered"
        );
        // The refusal overwrote the stale view…
        let statuses = router.statuses();
        assert_eq!(statuses[0].applied_lsn, 10);
        assert!(statuses[0].lag > statuses[1].lag, "refuser must be demoted");
        // …so the next batch routes straight past the refuser.
        router.batch_with_token("q", 50).unwrap();
        assert_eq!(
            fast.batches.load(Ordering::Relaxed),
            0,
            "refuser must not be retried first while a satisfying peer exists"
        );
        assert_eq!(slow.batches.load(Ordering::Relaxed), 2);
    }

    /// Regression: a dead endpoint must not tax every batch with a
    /// synchronous re-dial. The victim here accepts TCP but never
    /// handshakes, so an unbounded re-dial policy would pay the full
    /// response timeout on every refresh.
    #[test]
    fn dead_endpoint_redial_is_backed_off() {
        let live = FakeFollower::spawn(100);
        // Accepts connections, never speaks: each dial costs the whole
        // handshake timeout.
        let black_hole = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = black_hole.local_addr().unwrap().to_string();
        let timeout = Duration::from_millis(200);
        let mut router = ReadRouter::connect(
            [live.addr.clone(), dead_addr],
            ReadRouterConfig {
                refresh_interval: Duration::ZERO, // every batch re-polls
                redial_backoff: Duration::from_secs(600),
                client: QueryClientConfig {
                    response_timeout: timeout,
                    connect_timeout: Some(timeout),
                    ..QueryClientConfig::default()
                },
                ..ReadRouterConfig::default()
            },
        )
        .unwrap();
        // connect() paid one handshake timeout for the dead endpoint;
        // from here its backoff shields the batch path.
        let start = Instant::now();
        for _ in 0..5 {
            router.batch_with_token("q", 0).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < timeout * 3,
            "5 batches took {elapsed:?}; dead endpoint is being re-dialed per batch"
        );
        assert_eq!(live.batches.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn all_stale_is_a_typed_error() {
        let f = FakeFollower::spawn(10);
        let mut router = ReadRouter::connect([&f.addr], quiet_config()).unwrap();
        match router.batch_with_token("q", 99) {
            Err(RouterError::AllStale { applied, required }) => {
                assert_eq!(applied, 10);
                assert_eq!(required, 99);
            }
            other => panic!("expected AllStale, got {other:?}"),
        }
        // The conversion call sites rely on: WouldBlock, message intact.
        let wal: WalError = RouterError::AllStale {
            applied: 10,
            required: 99,
        }
        .into();
        match wal {
            WalError::Io(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock);
                assert!(e.to_string().contains("10") && e.to_string().contains("99"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn losing_every_endpoint_is_typed_not_a_panic() {
        let f = FakeFollower::spawn(10);
        let addr = f.addr.clone();
        let mut router = ReadRouter::connect([&addr], quiet_config()).unwrap();
        drop(f); // server gone; the held connection dies
        let first = router.batch_with_token("q", 0);
        assert!(matches!(first, Err(RouterError::Transport(_))), "{first:?}");
        // The endpoint is now dead and in dial backoff: no candidates.
        let second = router.batch_with_token("q", 0);
        assert!(matches!(second, Err(RouterError::NoEndpoint)), "{second:?}");
        let wal: WalError = RouterError::NoEndpoint.into();
        assert!(matches!(wal, WalError::Io(ref e) if e.kind() == std::io::ErrorKind::NotConnected));
    }

    #[test]
    fn connect_with_no_endpoints_is_refused() {
        let err = ReadRouter::connect(Vec::<String>::new(), ReadRouterConfig::default())
            .err()
            .expect("empty endpoint list must be refused");
        assert!(matches!(err, RouterError::NoEndpoint));
    }
}
