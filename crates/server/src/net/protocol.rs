//! The query front-end wire protocol.
//!
//! Same framing discipline as the WAL and the replication stream: every
//! message travels as `[len: u32 LE][crc32(payload): u32 LE][payload]`,
//! where the payload is a tag byte followed by the message body. The CRC
//! is checked before a byte of the payload is interpreted, so a frame
//! corrupted in flight is rejected whole and the connection ends — the
//! stream cannot be re-synchronized after framing is lost.
//!
//! Messages:
//!
//! | tag | message        | direction       | body                               |
//! |-----|----------------|-----------------|------------------------------------|
//! | 1   | `Hello`        | client → server | `version u32`                      |
//! | 2   | `Batch`        | client → server | `script string, min_lsn u64`       |
//! | 3   | `StatsRequest` | client → server | —                                  |
//! | 4   | `HelloAck`     | server → client | `version u32`                      |
//! | 5   | `Statement`    | server → client | `index u32, verdict`               |
//! | 6   | `BatchDone`    | server → client | `count u32`                        |
//! | 7   | `StatsReply`   | server → client | [`ServerStatsSnapshot`]            |
//! | 8   | `Refused`      | server → client | `reason string`                    |
//! | 9   | `Update`       | client → server | `id u64, msg UpdateMessage`        |
//! | 10  | `UpdateBatch`  | client → server | `count u32, (id, msg)*`            |
//! | 11  | `UpdateAck`    | server → client | `lsn u64, count u32, verdict*`     |
//! | 12  | `Stale`        | server → client | `applied u64, required u64`        |
//!
//! A `Batch` is answered by one `Statement` per `;`-separated statement
//! (in script order) followed by a `BatchDone` carrying the count, so a
//! client can stream results without knowing the statement count up
//! front. Query results are encoded structurally (the full
//! [`QueryResult`] tree — positions, bounds, uncertainty intervals,
//! may/must sets, neighbour rankings); query *errors* travel as their
//! display strings, which keeps every `modb-query` error representable
//! without the server and client sharing an error-enum encoding.
//!
//! **Remote ingest (v2).** `Update` / `UpdateBatch` push position
//! updates through the server's ingest shards (per-object FIFO, WAL
//! logging, the works — the same path local producers use). The
//! `UpdateAck` carries one [`RemoteUpdateVerdict`] per envelope plus the
//! WAL frontier observed after the batch flushed: a **read-your-writes
//! token**. A later `Batch` carrying that token as `min_lsn` is
//! guaranteed to run against a snapshot covering every acknowledged
//! update (`min_lsn = 0` asks for no such floor). Envelopes with
//! non-finite time/coordinates/speed are refused at this boundary with
//! [`RemoteUpdateVerdict::Invalid`] — never applied, never logged — so a
//! malicious or broken client cannot poison a shard's WAL with values
//! the local path would reject only after logging.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use modb_core::{
    NearestAnswer, Neighbour, ObjectId, PositionAnswer, RangeAnswer, UpdateMessage, MAX_BANDS,
};
use modb_geom::Point;
use modb_index::SearchStats;
use modb_query::QueryResult;
use modb_wal::codec::{put_f64, put_string, put_u32, put_u64};
use modb_wal::{crc32, ByteReader, WalCodec, WalError};

use crate::ingest::IngestStatsSnapshot;
use crate::query_engine::QueryStatsSnapshot;

/// Protocol version spoken by this build; a mismatched `Hello` is
/// refused. v2 added remote ingest (`Update`/`UpdateBatch`/`UpdateAck`),
/// the `min_lsn` read-your-writes floor on `Batch`, and the shard label
/// in the stats frame. v3 widened the stats frame with the group-commit
/// counters (tickets, commits, last batch size). v4 added the speed-band
/// index gauges (per-band entry counts plus the migration counter). v5
/// added follower-served reads: the typed `Stale` answer to a `Batch`
/// whose `min_lsn` token outruns a follower's applied watermark, plus
/// the replica watermark/lag gauges in the stats frame.
pub(crate) const NET_PROTOCOL_VERSION: u32 = 5;

/// Default ceiling on one message's payload. Query scripts and result
/// sets are small next to replication snapshots, so the front-end default
/// is far below the replication stream's 64 MiB.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 * 1024 * 1024;

/// The outcome of one remote statement: the structural result, or the
/// server-side error rendered to its display string.
pub type RemoteVerdict = Result<QueryResult, String>;

/// The outcome of one remote update envelope, per the ingest contract:
/// DBMS rejections are *applied-and-logged* outcomes (stale timestamps
/// and off-route fixes are radio-network business as usual), while a
/// protocol-boundary refusal never touched the database or the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteUpdateVerdict {
    /// Applied and logged.
    Accepted,
    /// Rejected by the DBMS (stale, off-route, unknown object, …) —
    /// still logged, like the local ingest path. Carries the display
    /// string of the [`modb_core::CoreError`].
    Rejected(String),
    /// Refused at the protocol boundary (non-finite time, coordinates,
    /// or speed; or no ingest service attached): not applied, not
    /// logged.
    Invalid(String),
}

impl RemoteUpdateVerdict {
    /// `true` for [`RemoteUpdateVerdict::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, RemoteUpdateVerdict::Accepted)
    }
}

/// Everything a monitoring scrape wants from a serving node, gathered in
/// one frame so the numbers are from (nearly) the same instant: query
/// engine counters and latency percentiles, ingest accept/reject
/// counters, WAL I/O totals, the ingest queue depth, and the replication
/// ship horizon. [`ServerStatsSnapshot::prometheus_text`] renders the
/// standard text exposition for scrapers that speak it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Query engine counters (epoch, totals, p50/p99 latency).
    pub query: QueryStatsSnapshot,
    /// Ingest accept/reject counters (zeroed when no ingest service is
    /// attached to the server).
    pub ingest: IngestStatsSnapshot,
    /// Bytes written to the log since open (encoded frames, after delta
    /// coding and compression; segment headers excluded).
    pub wal_bytes_written: u64,
    /// `fsync` calls issued by the WAL writer since open.
    pub wal_fsyncs: u64,
    /// Group-commit tickets enqueued (acked updates that waited for a
    /// shared fsync); 0 when no group committer is running.
    pub wal_group_tickets: u64,
    /// Fsyncs the group committer issued; `tickets / commits` is the
    /// mean collapse factor.
    pub wal_group_commits: u64,
    /// Tickets satisfied by the most recent group fsync (> 1 means
    /// collapsing is happening right now).
    pub wal_group_last_batch: u64,
    /// The log frontier (next LSN to be written).
    pub wal_next_lsn: u64,
    /// Update envelopes enqueued but not yet applied across all ingest
    /// shards (0 when no ingest service is attached).
    pub ingest_queue_depth: u64,
    /// Replication followers currently registered on the ship horizon.
    pub followers: u64,
    /// Lowest acknowledged LSN across followers (the compaction barrier),
    /// when any are connected.
    pub min_acked_lsn: Option<u64>,
    /// This node's shard number in a cluster, when it has one
    /// ([`crate::QueryServerConfig::shard`]); rendered as a
    /// `shard="N"` label on every Prometheus sample so a scraped
    /// cluster's series stay distinguishable.
    pub shard: Option<u64>,
    /// Speed bands configured on the time-space index (≥ 1; 1 = the
    /// un-partitioned single-tree layout). Only the first `index_bands`
    /// slots of `index_band_entries` are meaningful.
    pub index_bands: u64,
    /// Objects indexed per speed band, slowest band first — rendered as
    /// `modb_index_band_entries{band="N"}`.
    pub index_band_entries: [u64; MAX_BANDS],
    /// Upserts/syncs that moved an object between bands since the
    /// database was created (city↔highway regime changes).
    pub index_band_migrations: u64,
    /// Applied-LSN watermark when the serving node is a standby replica
    /// (`None` on a leader) — rendered as `modb_replica_applied_lsn`.
    pub replica_applied_lsn: Option<u64>,
    /// How long the serving replica has continuously trailed its
    /// upstream's frontier (`None` on a leader, zero when caught up) —
    /// the `Δ` of the `2·v_max·Δ` staleness widening, rendered as
    /// `modb_replica_lag_seconds`.
    pub replica_lag: Option<Duration>,
}

impl ServerStatsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` lines plus one sample per metric). Gauges and counters
    /// are labelled as such; `modb_replication_min_acked_lsn` is omitted
    /// when no follower is connected rather than inventing a sentinel.
    /// A cluster node (`shard` set) gets a `shard="N"` label on every
    /// sample.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let labels = match self.shard {
            Some(n) => format!("{{shard=\"{n}\"}}"),
            None => String::new(),
        };
        let mut metric = |name: &str, kind: &str, value: u64| {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name}{labels} {value}");
        };
        metric("modb_query_epoch", "gauge", self.query.epoch);
        metric("modb_queries_total", "counter", self.query.queries);
        metric(
            "modb_query_epoch_queries",
            "gauge",
            self.query.epoch_queries,
        );
        metric("modb_query_errors_total", "counter", self.query.errors);
        metric(
            "modb_query_candidates_total",
            "counter",
            self.query.candidates,
        );
        metric("modb_query_matches_total", "counter", self.query.matches);
        metric(
            "modb_query_parallel_refines_total",
            "counter",
            self.query.parallel_refines,
        );
        metric("modb_query_batches_total", "counter", self.query.batches);
        metric(
            "modb_query_delta_publishes_total",
            "counter",
            self.query.delta_publishes,
        );
        metric(
            "modb_query_full_publishes_total",
            "counter",
            self.query.full_publishes,
        );
        metric(
            "modb_query_publish_nanoseconds_total",
            "counter",
            self.query.publish_ns,
        );
        metric("modb_query_p50_microseconds", "gauge", self.query.p50_us);
        metric("modb_query_p99_microseconds", "gauge", self.query.p99_us);
        metric(
            "modb_query_snapshot_age_microseconds",
            "gauge",
            self.query.snapshot_age.as_micros() as u64,
        );
        metric(
            "modb_ingest_accepted_total",
            "counter",
            self.ingest.accepted as u64,
        );
        metric(
            "modb_ingest_stale_total",
            "counter",
            self.ingest.stale as u64,
        );
        metric(
            "modb_ingest_off_route_total",
            "counter",
            self.ingest.off_route as u64,
        );
        metric(
            "modb_ingest_unknown_object_total",
            "counter",
            self.ingest.unknown_object as u64,
        );
        metric(
            "modb_ingest_other_rejected_total",
            "counter",
            self.ingest.other_rejected as u64,
        );
        metric(
            "modb_ingest_wal_errors_total",
            "counter",
            self.ingest.wal_errors as u64,
        );
        metric("modb_ingest_queue_depth", "gauge", self.ingest_queue_depth);
        metric(
            "modb_wal_bytes_written_total",
            "counter",
            self.wal_bytes_written,
        );
        metric("modb_wal_fsyncs_total", "counter", self.wal_fsyncs);
        metric(
            "modb_wal_group_commit_tickets_total",
            "counter",
            self.wal_group_tickets,
        );
        metric(
            "modb_wal_group_commits_total",
            "counter",
            self.wal_group_commits,
        );
        metric(
            "modb_wal_group_commit_batch_size",
            "gauge",
            self.wal_group_last_batch,
        );
        metric("modb_wal_next_lsn", "gauge", self.wal_next_lsn);
        metric("modb_replication_followers", "gauge", self.followers);
        if let Some(lsn) = self.min_acked_lsn {
            metric("modb_replication_min_acked_lsn", "gauge", lsn);
        }
        metric(
            "modb_index_band_migrations_total",
            "counter",
            self.index_band_migrations,
        );
        if let Some(lsn) = self.replica_applied_lsn {
            metric("modb_replica_applied_lsn", "gauge", lsn);
        }
        // The lag gauge is fractional seconds, so it bypasses the u64
        // `metric` closure; like the other replica gauges it is omitted
        // entirely on a leader.
        if let Some(lag) = self.replica_lag {
            let _ = writeln!(out, "# TYPE modb_replica_lag_seconds gauge");
            let _ = writeln!(
                out,
                "modb_replica_lag_seconds{labels} {:.6}",
                lag.as_secs_f64()
            );
        }
        // Per-band entry gauges carry their own `band` label, merged
        // with the shard label when the node has one.
        let _ = writeln!(out, "# TYPE modb_index_band_entries gauge");
        for band in 0..(self.index_bands as usize).min(MAX_BANDS) {
            let sample = match self.shard {
                Some(n) => format!(
                    "modb_index_band_entries{{shard=\"{n}\",band=\"{band}\"}} {}",
                    self.index_band_entries[band]
                ),
                None => format!(
                    "modb_index_band_entries{{band=\"{band}\"}} {}",
                    self.index_band_entries[band]
                ),
            };
            let _ = writeln!(out, "{sample}");
        }
        out
    }
}

/// One protocol message (see the module table).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Message {
    /// Client's opening line.
    Hello { version: u32 },
    /// A `;`-separated query script to run as one batch. `min_lsn` is
    /// the read-your-writes floor: the batch must run against a
    /// snapshot covering at least this WAL frontier (0 = no floor).
    Batch { script: String, min_lsn: u64 },
    /// Ask for a [`ServerStatsSnapshot`].
    StatsRequest,
    /// Handshake accepted.
    HelloAck { version: u32 },
    /// One statement's verdict, in script order.
    Statement { index: u32, verdict: RemoteVerdict },
    /// End of a batch's statement stream.
    BatchDone { count: u32 },
    /// The stats scrape.
    StatsReply(Box<ServerStatsSnapshot>),
    /// The server declined (version mismatch, at connection capacity);
    /// the connection closes after this.
    Refused { reason: String },
    /// One position update for the ingest path.
    Update { id: ObjectId, msg: UpdateMessage },
    /// Several position updates in one frame (amortized framing, one
    /// ack).
    UpdateBatch {
        updates: Vec<(ObjectId, UpdateMessage)>,
    },
    /// Reply to `Update`/`UpdateBatch`: one verdict per envelope in
    /// frame order, plus the WAL frontier after the flush — the
    /// read-your-writes token (0 when the serving node has no WAL).
    UpdateAck {
        lsn: u64,
        verdicts: Vec<RemoteUpdateVerdict>,
    },
    /// A follower's typed refusal of a `Batch` whose read-your-writes
    /// floor outran its applied watermark past the wait deadline:
    /// `applied` is the watermark at refusal time, `required` echoes the
    /// floor. The session stays open — the client may retry here or
    /// route the batch to a fresher follower.
    Stale { applied: u64, required: u64 },
}

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn read_point(r: &mut ByteReader<'_>) -> Result<Point, WalError> {
    Ok(Point::new(r.f64()?, r.f64()?))
}

fn put_ids(out: &mut Vec<u8>, ids: &[ObjectId]) {
    put_u32(out, ids.len() as u32);
    for id in ids {
        put_u64(out, id.0);
    }
}

fn read_ids(r: &mut ByteReader<'_>) -> Result<Vec<ObjectId>, WalError> {
    let n = r.u32()? as usize;
    let mut ids = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ids.push(ObjectId(r.u64()?));
    }
    Ok(ids)
}

fn put_neighbours(out: &mut Vec<u8>, ns: &[Neighbour]) {
    put_u32(out, ns.len() as u32);
    for n in ns {
        put_u64(out, n.id.0);
        put_f64(out, n.distance);
        put_f64(out, n.bound);
        out.push(u8::from(n.certain));
    }
}

fn read_neighbours(r: &mut ByteReader<'_>) -> Result<Vec<Neighbour>, WalError> {
    let n = r.u32()? as usize;
    let mut ns = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ns.push(Neighbour {
            id: ObjectId(r.u64()?),
            distance: r.f64()?,
            bound: r.f64()?,
            certain: r.u8()? != 0,
        });
    }
    Ok(ns)
}

fn put_query_result(out: &mut Vec<u8>, result: &QueryResult) {
    match result {
        QueryResult::Position(p) => {
            out.push(1);
            put_point(out, &p.position);
            put_f64(out, p.arc);
            put_f64(out, p.bound);
            put_f64(out, p.interval.0);
            put_f64(out, p.interval.1);
            put_u32(out, p.interval_path.len() as u32);
            for pt in &p.interval_path {
                put_point(out, pt);
            }
        }
        QueryResult::Range(a) => {
            out.push(2);
            put_ids(out, &a.must);
            put_ids(out, &a.may);
            put_u64(out, a.candidates as u64);
            put_u64(out, a.stats.nodes_visited as u64);
            put_u64(out, a.stats.entries_tested as u64);
            put_u64(out, a.stats.matches as u64);
        }
        QueryResult::Nearest(a) => {
            out.push(3);
            put_neighbours(out, &a.ranked);
            put_neighbours(out, &a.contenders);
        }
    }
}

fn read_query_result(r: &mut ByteReader<'_>) -> Result<QueryResult, WalError> {
    Ok(match r.u8()? {
        1 => {
            let position = read_point(r)?;
            let arc = r.f64()?;
            let bound = r.f64()?;
            let interval = (r.f64()?, r.f64()?);
            let n = r.u32()? as usize;
            let mut interval_path = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                interval_path.push(read_point(r)?);
            }
            QueryResult::Position(PositionAnswer {
                position,
                arc,
                bound,
                interval,
                interval_path,
            })
        }
        2 => {
            let must = read_ids(r)?;
            let may = read_ids(r)?;
            let candidates = r.u64()? as usize;
            let stats = SearchStats {
                nodes_visited: r.u64()? as usize,
                entries_tested: r.u64()? as usize,
                matches: r.u64()? as usize,
            };
            QueryResult::Range(RangeAnswer {
                must,
                may,
                candidates,
                stats,
            })
        }
        3 => {
            let ranked = read_neighbours(r)?;
            let contenders = read_neighbours(r)?;
            QueryResult::Nearest(NearestAnswer { ranked, contenders })
        }
        _ => return Err(WalError::Decode("unknown query result kind")),
    })
}

fn put_update_verdict(out: &mut Vec<u8>, v: &RemoteUpdateVerdict) {
    match v {
        RemoteUpdateVerdict::Accepted => out.push(0),
        RemoteUpdateVerdict::Rejected(msg) => {
            out.push(1);
            put_string(out, msg);
        }
        RemoteUpdateVerdict::Invalid(msg) => {
            out.push(2);
            put_string(out, msg);
        }
    }
}

fn read_update_verdict(r: &mut ByteReader<'_>) -> Result<RemoteUpdateVerdict, WalError> {
    Ok(match r.u8()? {
        0 => RemoteUpdateVerdict::Accepted,
        1 => RemoteUpdateVerdict::Rejected(r.string()?),
        2 => RemoteUpdateVerdict::Invalid(r.string()?),
        _ => return Err(WalError::Decode("unknown update verdict tag")),
    })
}

fn put_stats(out: &mut Vec<u8>, s: &ServerStatsSnapshot) {
    put_u64(out, s.query.epoch);
    put_u64(out, s.query.queries);
    put_u64(out, s.query.epoch_queries);
    put_u64(out, s.query.errors);
    put_u64(out, s.query.candidates);
    put_u64(out, s.query.matches);
    put_u64(out, s.query.parallel_refines);
    put_u64(out, s.query.batches);
    put_u64(out, s.query.delta_publishes);
    put_u64(out, s.query.full_publishes);
    put_u64(out, s.query.publish_ns);
    put_u64(out, s.query.p50_us);
    put_u64(out, s.query.p99_us);
    put_u64(out, s.query.snapshot_age.as_nanos() as u64);
    put_u64(out, s.ingest.accepted as u64);
    put_u64(out, s.ingest.stale as u64);
    put_u64(out, s.ingest.off_route as u64);
    put_u64(out, s.ingest.unknown_object as u64);
    put_u64(out, s.ingest.other_rejected as u64);
    put_u64(out, s.ingest.wal_errors as u64);
    put_u64(out, s.wal_bytes_written);
    put_u64(out, s.wal_fsyncs);
    put_u64(out, s.wal_group_tickets);
    put_u64(out, s.wal_group_commits);
    put_u64(out, s.wal_group_last_batch);
    put_u64(out, s.wal_next_lsn);
    put_u64(out, s.ingest_queue_depth);
    put_u64(out, s.followers);
    match s.min_acked_lsn {
        Some(lsn) => {
            out.push(1);
            put_u64(out, lsn);
        }
        None => out.push(0),
    }
    match s.shard {
        Some(n) => {
            out.push(1);
            put_u64(out, n);
        }
        None => out.push(0),
    }
    let bands = (s.index_bands as usize).min(MAX_BANDS);
    put_u64(out, bands as u64);
    for entries in &s.index_band_entries[..bands] {
        put_u64(out, *entries);
    }
    put_u64(out, s.index_band_migrations);
    match s.replica_applied_lsn {
        Some(lsn) => {
            out.push(1);
            put_u64(out, lsn);
        }
        None => out.push(0),
    }
    match s.replica_lag {
        Some(lag) => {
            out.push(1);
            put_u64(out, lag.as_nanos() as u64);
        }
        None => out.push(0),
    }
}

fn read_stats(r: &mut ByteReader<'_>) -> Result<ServerStatsSnapshot, WalError> {
    let query = QueryStatsSnapshot {
        epoch: r.u64()?,
        queries: r.u64()?,
        epoch_queries: r.u64()?,
        errors: r.u64()?,
        candidates: r.u64()?,
        matches: r.u64()?,
        parallel_refines: r.u64()?,
        batches: r.u64()?,
        delta_publishes: r.u64()?,
        full_publishes: r.u64()?,
        publish_ns: r.u64()?,
        p50_us: r.u64()?,
        p99_us: r.u64()?,
        snapshot_age: Duration::from_nanos(r.u64()?),
    };
    let ingest = IngestStatsSnapshot {
        accepted: r.u64()? as usize,
        stale: r.u64()? as usize,
        off_route: r.u64()? as usize,
        unknown_object: r.u64()? as usize,
        other_rejected: r.u64()? as usize,
        wal_errors: r.u64()? as usize,
    };
    let wal_bytes_written = r.u64()?;
    let wal_fsyncs = r.u64()?;
    let wal_group_tickets = r.u64()?;
    let wal_group_commits = r.u64()?;
    let wal_group_last_batch = r.u64()?;
    let wal_next_lsn = r.u64()?;
    let ingest_queue_depth = r.u64()?;
    let followers = r.u64()?;
    let min_acked_lsn = if r.u8()? != 0 { Some(r.u64()?) } else { None };
    let shard = if r.u8()? != 0 { Some(r.u64()?) } else { None };
    let index_bands = r.u64()?;
    if index_bands as usize > MAX_BANDS {
        return Err(WalError::Decode("band count out of range in stats frame"));
    }
    let mut index_band_entries = [0u64; MAX_BANDS];
    for slot in index_band_entries.iter_mut().take(index_bands as usize) {
        *slot = r.u64()?;
    }
    let index_band_migrations = r.u64()?;
    let replica_applied_lsn = if r.u8()? != 0 { Some(r.u64()?) } else { None };
    let replica_lag = if r.u8()? != 0 {
        Some(Duration::from_nanos(r.u64()?))
    } else {
        None
    };
    Ok(ServerStatsSnapshot {
        query,
        ingest,
        wal_bytes_written,
        wal_fsyncs,
        wal_group_tickets,
        wal_group_commits,
        wal_group_last_batch,
        wal_next_lsn,
        ingest_queue_depth,
        followers,
        min_acked_lsn,
        shard,
        index_bands,
        index_band_entries,
        index_band_migrations,
        replica_applied_lsn,
        replica_lag,
    })
}

impl Message {
    pub(crate) fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello { version } => {
                out.push(1);
                put_u32(out, *version);
            }
            Message::Batch { script, min_lsn } => {
                out.push(2);
                put_string(out, script);
                put_u64(out, *min_lsn);
            }
            Message::StatsRequest => out.push(3),
            Message::HelloAck { version } => {
                out.push(4);
                put_u32(out, *version);
            }
            Message::Statement { index, verdict } => {
                out.push(5);
                put_u32(out, *index);
                match verdict {
                    Ok(result) => {
                        out.push(1);
                        put_query_result(out, result);
                    }
                    Err(msg) => {
                        out.push(0);
                        put_string(out, msg);
                    }
                }
            }
            Message::BatchDone { count } => {
                out.push(6);
                put_u32(out, *count);
            }
            Message::StatsReply(stats) => {
                out.push(7);
                put_stats(out, stats);
            }
            Message::Refused { reason } => {
                out.push(8);
                put_string(out, reason);
            }
            Message::Update { id, msg } => {
                out.push(9);
                put_u64(out, id.0);
                msg.encode(out);
            }
            Message::UpdateBatch { updates } => {
                out.push(10);
                put_u32(out, updates.len() as u32);
                for (id, msg) in updates {
                    put_u64(out, id.0);
                    msg.encode(out);
                }
            }
            Message::UpdateAck { lsn, verdicts } => {
                out.push(11);
                put_u64(out, *lsn);
                put_u32(out, verdicts.len() as u32);
                for v in verdicts {
                    put_update_verdict(out, v);
                }
            }
            Message::Stale { applied, required } => {
                out.push(12);
                put_u64(out, *applied);
                put_u64(out, *required);
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, WalError> {
        let mut r = ByteReader::new(payload);
        let msg = match r.u8()? {
            1 => Message::Hello { version: r.u32()? },
            2 => Message::Batch {
                script: r.string()?,
                min_lsn: r.u64()?,
            },
            3 => Message::StatsRequest,
            4 => Message::HelloAck { version: r.u32()? },
            5 => {
                let index = r.u32()?;
                let verdict = match r.u8()? {
                    1 => Ok(read_query_result(&mut r)?),
                    0 => Err(r.string()?),
                    _ => return Err(WalError::Decode("bad statement verdict flag")),
                };
                Message::Statement { index, verdict }
            }
            6 => Message::BatchDone { count: r.u32()? },
            7 => Message::StatsReply(Box::new(read_stats(&mut r)?)),
            8 => Message::Refused {
                reason: r.string()?,
            },
            9 => Message::Update {
                id: ObjectId(r.u64()?),
                msg: UpdateMessage::decode(&mut r)?,
            },
            10 => {
                let n = r.u32()? as usize;
                let mut updates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let id = ObjectId(r.u64()?);
                    let msg = UpdateMessage::decode(&mut r)?;
                    updates.push((id, msg));
                }
                Message::UpdateBatch { updates }
            }
            11 => {
                let lsn = r.u64()?;
                let n = r.u32()? as usize;
                let mut verdicts = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    verdicts.push(read_update_verdict(&mut r)?);
                }
                Message::UpdateAck { lsn, verdicts }
            }
            12 => Message::Stale {
                applied: r.u64()?,
                required: r.u64()?,
            },
            _ => return Err(WalError::Decode("unknown front-end message tag")),
        };
        if !r.is_empty() {
            return Err(WalError::Decode("trailing bytes in front-end message"));
        }
        Ok(msg)
    }
}

/// Frames and sends one message (blocking, honoring the stream's write
/// timeout).
pub(crate) fn send_message(stream: &mut TcpStream, msg: &Message) -> Result<(), WalError> {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)?;
    Ok(())
}

/// What one [`FrameReader::poll`] observed.
// One short-lived value per poll; boxing `Message` would buy stack bytes
// at the price of a heap allocation per frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum ReadEvent {
    /// A whole, CRC-valid message.
    Message(Message),
    /// No complete frame yet (read timed out or a frame is partially
    /// buffered).
    Idle,
    /// The peer closed the connection.
    Closed,
}

/// Accumulating frame decoder over a socket, bounded by `max_frame_bytes`
/// per message. Reads honor the stream's read timeout, so a poll returns
/// [`ReadEvent::Idle`] rather than blocking forever; bytes of a partial
/// frame are buffered across polls. A length or CRC violation is a hard
/// [`WalError::Decode`].
#[derive(Debug)]
pub(crate) struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_bytes: u32,
}

impl FrameReader {
    pub(crate) fn new(stream: TcpStream, max_frame_bytes: u32) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
            max_frame_bytes,
        }
    }

    /// `true` while bytes of an unfinished frame sit in the buffer — the
    /// server's stalled-client deadline keys off this.
    pub(crate) fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads once and decodes if a whole frame is available.
    pub(crate) fn poll(&mut self) -> Result<ReadEvent, WalError> {
        if let Some(msg) = self.try_decode()? {
            return Ok(ReadEvent::Message(msg));
        }
        let mut tmp = [0u8; 64 * 1024];
        match self.stream.read(&mut tmp) {
            Ok(0) => Ok(ReadEvent::Closed),
            Ok(n) => {
                self.buf.extend_from_slice(&tmp[..n]);
                match self.try_decode()? {
                    Some(msg) => Ok(ReadEvent::Message(msg)),
                    None => Ok(ReadEvent::Idle),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                Ok(ReadEvent::Idle)
            }
            Err(e) => Err(WalError::Io(e)),
        }
    }

    fn try_decode(&mut self) -> Result<Option<Message>, WalError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 || len > self.max_frame_bytes {
            return Err(WalError::Decode("implausible front-end frame length"));
        }
        let crc = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        let total = 8 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = &self.buf[8..total];
        if crc32(payload) != crc {
            return Err(WalError::Decode("front-end frame crc mismatch"));
        }
        let msg = Message::decode_payload(payload)?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn sample_stats() -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            query: QueryStatsSnapshot {
                epoch: 3,
                queries: 100,
                epoch_queries: 40,
                errors: 2,
                candidates: 500,
                matches: 123,
                parallel_refines: 7,
                batches: 9,
                delta_publishes: 2,
                full_publishes: 1,
                publish_ns: 12_345,
                p50_us: 64,
                p99_us: 1024,
                snapshot_age: Duration::from_micros(873),
            },
            ingest: IngestStatsSnapshot {
                accepted: 10,
                stale: 1,
                off_route: 2,
                unknown_object: 3,
                other_rejected: 4,
                wal_errors: 0,
            },
            wal_bytes_written: 4_096,
            wal_fsyncs: 17,
            wal_group_tickets: 96,
            wal_group_commits: 12,
            wal_group_last_batch: 8,
            wal_next_lsn: 88,
            ingest_queue_depth: 5,
            followers: 2,
            min_acked_lsn: Some(80),
            shard: Some(3),
            index_bands: 2,
            index_band_entries: {
                let mut entries = [0u64; MAX_BANDS];
                entries[0] = 70;
                entries[1] = 30;
                entries
            },
            index_band_migrations: 6,
            replica_applied_lsn: Some(84),
            replica_lag: Some(Duration::from_millis(250)),
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                version: NET_PROTOCOL_VERSION,
            },
            Message::Batch {
                script: "RETRIEVE POSITION OF OBJECT 1 AT TIME 5; RETRIEVE \
                         OBJECTS INSIDE RECT (0, 0, 5, 5) AT TIME 5"
                    .into(),
                min_lsn: 42,
            },
            Message::StatsRequest,
            Message::HelloAck {
                version: NET_PROTOCOL_VERSION,
            },
            Message::Statement {
                index: 0,
                verdict: Ok(QueryResult::Position(PositionAnswer {
                    position: Point::new(1.5, -2.25),
                    arc: 7.0,
                    bound: 0.5,
                    interval: (6.5, 7.5),
                    interval_path: vec![Point::new(6.5, 0.0), Point::new(7.5, 0.0)],
                })),
            },
            Message::Statement {
                index: 1,
                verdict: Ok(QueryResult::Range(RangeAnswer {
                    must: vec![ObjectId(1), ObjectId(4)],
                    may: vec![ObjectId(9)],
                    candidates: 6,
                    stats: SearchStats {
                        nodes_visited: 3,
                        entries_tested: 12,
                        matches: 3,
                    },
                })),
            },
            Message::Statement {
                index: 2,
                verdict: Ok(QueryResult::Nearest(NearestAnswer {
                    ranked: vec![Neighbour {
                        id: ObjectId(2),
                        distance: 1.25,
                        bound: 0.1,
                        certain: true,
                    }],
                    contenders: vec![Neighbour {
                        id: ObjectId(5),
                        distance: 1.5,
                        bound: 0.5,
                        certain: false,
                    }],
                })),
            },
            Message::Statement {
                index: 3,
                verdict: Err("lex error at byte 0: unterminated string literal".into()),
            },
            Message::BatchDone { count: 4 },
            Message::StatsReply(Box::new(sample_stats())),
            Message::Refused {
                reason: "server at connection capacity".into(),
            },
            Message::Update {
                id: ObjectId(17),
                msg: UpdateMessage::basic(5.0, modb_core::UpdatePosition::Arc(12.5), 0.9),
            },
            Message::UpdateBatch {
                updates: vec![
                    (
                        ObjectId(1),
                        UpdateMessage::basic(
                            1.0,
                            modb_core::UpdatePosition::Coordinates(Point::new(3.0, 4.0)),
                            1.1,
                        ),
                    ),
                    (
                        ObjectId(2),
                        UpdateMessage::route_change(
                            2.0,
                            modb_routes::RouteId(7),
                            modb_core::UpdatePosition::Arc(0.5),
                            modb_routes::Direction::Backward,
                            0.8,
                        ),
                    ),
                ],
            },
            Message::UpdateAck {
                lsn: 91,
                verdicts: vec![
                    RemoteUpdateVerdict::Accepted,
                    RemoteUpdateVerdict::Rejected("stale update: 1 is not newer than 2".into()),
                    RemoteUpdateVerdict::Invalid("non-finite speed NaN".into()),
                ],
            },
            Message::Stale {
                applied: 84,
                required: 91,
            },
        ]
    }

    #[test]
    fn round_trips_every_message() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut reader = FrameReader::new(rx, DEFAULT_MAX_FRAME_BYTES);
        for msg in sample_messages() {
            send_message(&mut tx, &msg).unwrap();
            let got = loop {
                match reader.poll().unwrap() {
                    ReadEvent::Message(m) => break m,
                    ReadEvent::Idle => continue,
                    ReadEvent::Closed => panic!("peer closed"),
                }
            };
            assert_eq!(got, msg);
        }
        drop(tx);
        assert!(matches!(reader.poll().unwrap(), ReadEvent::Closed));
    }

    #[test]
    fn oversized_frame_is_a_hard_error() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut frame = Vec::new();
        put_u32(&mut frame, 1024 + 1); // over this reader's ceiling
        put_u32(&mut frame, 0);
        tx.write_all(&frame).unwrap();
        let mut reader = FrameReader::new(rx, 1024);
        let err = loop {
            match reader.poll() {
                Ok(ReadEvent::Idle) => continue,
                Ok(other) => panic!("{other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::Decode(_)), "{err}");
    }

    #[test]
    fn corrupt_crc_is_a_hard_error() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut payload = Vec::new();
        Message::StatsRequest.encode_payload(&mut payload);
        let mut frame = Vec::new();
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload) ^ 1); // flipped
        frame.extend_from_slice(&payload);
        tx.write_all(&frame).unwrap();
        let mut reader = FrameReader::new(rx, DEFAULT_MAX_FRAME_BYTES);
        let err = loop {
            match reader.poll() {
                Ok(ReadEvent::Idle) => continue,
                Ok(other) => panic!("{other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::Decode(_)), "{err}");
    }

    #[test]
    fn prometheus_text_carries_every_counter() {
        let stats = ServerStatsSnapshot {
            shard: None,
            ..sample_stats()
        };
        let text = stats.prometheus_text();
        for (metric, value) in [
            ("modb_query_epoch", 3),
            ("modb_queries_total", 100),
            ("modb_query_errors_total", 2),
            ("modb_query_p50_microseconds", 64),
            ("modb_query_p99_microseconds", 1024),
            ("modb_ingest_accepted_total", 10),
            ("modb_ingest_queue_depth", 5),
            ("modb_wal_bytes_written_total", 4096),
            ("modb_wal_fsyncs_total", 17),
            ("modb_wal_group_commit_tickets_total", 96),
            ("modb_wal_group_commits_total", 12),
            ("modb_wal_group_commit_batch_size", 8),
            ("modb_wal_next_lsn", 88),
            ("modb_replication_followers", 2),
            ("modb_replication_min_acked_lsn", 80),
            ("modb_index_band_migrations_total", 6),
            ("modb_replica_applied_lsn", 84),
        ] {
            assert!(
                text.lines().any(|l| l == format!("{metric} {value}")),
                "missing `{metric} {value}` in:\n{text}"
            );
            assert!(
                text.lines()
                    .any(|l| l.starts_with(&format!("# TYPE {metric} "))),
                "missing TYPE line for {metric}"
            );
        }
        // Per-band gauges: one sample per configured band, band-labelled.
        assert!(
            text.lines()
                .any(|l| l == "modb_index_band_entries{band=\"0\"} 70"),
            "{text}"
        );
        assert!(
            text.lines()
                .any(|l| l == "modb_index_band_entries{band=\"1\"} 30"),
            "{text}"
        );
        assert!(!text.contains("band=\"2\""), "unconfigured band emitted");
        // The fractional lag gauge: 250 ms renders as 0.250000 seconds.
        assert!(
            text.lines()
                .any(|l| l == "modb_replica_lag_seconds 0.250000"),
            "{text}"
        );
        // No follower connected: the barrier gauge disappears entirely.
        let empty = ServerStatsSnapshot {
            min_acked_lsn: None,
            ..stats
        };
        assert!(!empty.prometheus_text().contains("min_acked_lsn"));
        // A leader (no replica fields) emits no replica gauges at all.
        let leader = ServerStatsSnapshot {
            replica_applied_lsn: None,
            replica_lag: None,
            ..stats
        };
        assert!(!leader.prometheus_text().contains("modb_replica_"));
    }

    #[test]
    fn prometheus_text_labels_every_sample_with_the_shard() {
        let stats = sample_stats(); // shard = Some(3)
        let text = stats.prometheus_text();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.contains("shard=\"3\""),
                "unlabelled sample on a cluster node: {line}"
            );
        }
        assert!(
            text.lines()
                .any(|l| l == "modb_queries_total{shard=\"3\"} 100"),
            "{text}"
        );
        // Band samples merge the shard label with their band label.
        assert!(
            text.lines()
                .any(|l| l == "modb_index_band_entries{shard=\"3\",band=\"0\"} 70"),
            "{text}"
        );
        // TYPE lines stay label-free (labels belong on samples).
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            assert!(!line.contains("shard="), "{line}");
        }
    }
}
