//! The network front-end: remote query batches and a metrics scrape over
//! the same CRC-framed socket protocol the replication stream uses.
//!
//! The paper's deployment has *queries* arriving over the network, not
//! just position updates; this module is that last wire. A
//! [`QueryServer`] (started with
//! [`crate::DurableDatabase::serve_queries`]) accepts clients, fans
//! their `;`-scripts through the query engine's batch path, and streams
//! back one structurally encoded verdict per statement — a remote batch
//! returns exactly what a local [`crate::QueryEngine::run_batch`] call
//! would. The same connection answers `StatsRequest` with a
//! [`ServerStatsSnapshot`]: query counters and latency percentiles,
//! ingest accept/reject counts and queue depth, WAL bytes/fsyncs, and
//! the replication ship horizon, gathered in one frame so a monitoring
//! scrape sees one instant, with
//! [`ServerStatsSnapshot::prometheus_text`] rendering the conventional
//! text exposition.
//!
//! Front-end overhead is part of the paper's cost story: the update-cost
//! model in §5 prices communication, and experiment W5 (`exp_frontend`)
//! measures what the wire adds per statement over the in-process path.

mod client;
mod protocol;
mod router;
mod server;

pub use client::{BatchOutcome, QueryClient, QueryClientConfig};
pub use protocol::{
    RemoteUpdateVerdict, RemoteVerdict, ServerStatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
};
pub use router::{FollowerStatus, ReadRouter, ReadRouterConfig, RouterError};
pub(crate) use server::serve_follower_queries;
pub use server::{QueryServer, QueryServerConfig};
