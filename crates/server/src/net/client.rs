//! Client side of the query front-end: a small blocking library (and the
//! REPL's `\connect` backend) that speaks the protocol in
//! [`crate::net::protocol`].

use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use modb_wal::WalError;

use crate::net::protocol::{
    send_message, FrameReader, Message, ReadEvent, RemoteVerdict, ServerStatsSnapshot,
    DEFAULT_MAX_FRAME_BYTES, NET_PROTOCOL_VERSION,
};

/// Tuning for [`QueryClient`].
#[derive(Debug, Clone)]
pub struct QueryClientConfig {
    /// How long to wait for the complete response to one request
    /// (handshake, batch, or scrape).
    pub response_timeout: Duration,
    /// Per-message payload ceiling on the receive side.
    pub max_frame_bytes: u32,
}

impl Default for QueryClientConfig {
    fn default() -> Self {
        QueryClientConfig {
            response_timeout: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

fn timeout_error(what: &str) -> WalError {
    WalError::Io(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        format!("timed out waiting for {what}"),
    ))
}

/// A blocking connection to a [`crate::net::QueryServer`]. One request
/// runs at a time: [`QueryClient::batch`] sends a `;`-script and
/// collects the per-statement verdicts, [`QueryClient::stats`] scrapes
/// the server's counters.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    reader: FrameReader,
    config: QueryClientConfig,
    addr: SocketAddr,
}

impl QueryClient {
    /// Connects and handshakes with default tuning.
    ///
    /// # Errors
    ///
    /// Connection failures, a `Refused` server (capacity or version),
    /// or a handshake timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WalError> {
        Self::connect_with(addr, QueryClientConfig::default())
    }

    /// [`QueryClient::connect`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: QueryClientConfig,
    ) -> Result<Self, WalError> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(10)))?;
        stream.set_write_timeout(Some(config.response_timeout))?;
        let reader = FrameReader::new(stream.try_clone()?, config.max_frame_bytes);
        let mut client = QueryClient {
            stream,
            reader,
            config,
            addr: peer,
        };
        send_message(
            &mut client.stream,
            &Message::Hello {
                version: NET_PROTOCOL_VERSION,
            },
        )?;
        match client.next_message("handshake")? {
            Message::HelloAck { .. } => Ok(client),
            Message::Refused { reason } => Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                reason,
            ))),
            _ => Err(WalError::Decode("unexpected handshake reply")),
        }
    }

    /// The server address this client is connected to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs a `;`-separated script as one server-side batch, returning
    /// one verdict per statement in script order — the same vector a
    /// local [`crate::QueryEngine::run_batch`] would produce, with
    /// errors rendered to their display strings.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations (out-of-order statement
    /// indices, a count mismatch), or a response timeout.
    pub fn batch(&mut self, script: &str) -> Result<Vec<RemoteVerdict>, WalError> {
        send_message(
            &mut self.stream,
            &Message::Batch {
                script: script.to_string(),
            },
        )?;
        let mut verdicts: Vec<RemoteVerdict> = Vec::new();
        loop {
            match self.next_message("batch results")? {
                Message::Statement { index, verdict } => {
                    if index as usize != verdicts.len() {
                        return Err(WalError::Decode("statement results out of order"));
                    }
                    verdicts.push(verdict);
                }
                Message::BatchDone { count } => {
                    if count as usize != verdicts.len() {
                        return Err(WalError::Decode("batch result count mismatch"));
                    }
                    return Ok(verdicts);
                }
                _ => return Err(WalError::Decode("unexpected message in batch reply")),
            }
        }
    }

    /// Scrapes the server's combined stats frame.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a response timeout.
    pub fn stats(&mut self) -> Result<ServerStatsSnapshot, WalError> {
        send_message(&mut self.stream, &Message::StatsRequest)?;
        match self.next_message("stats reply")? {
            Message::StatsReply(stats) => Ok(stats),
            _ => Err(WalError::Decode("unexpected message in stats reply")),
        }
    }

    /// Closes the connection (also happens on drop).
    pub fn close(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn next_message(&mut self, what: &str) -> Result<Message, WalError> {
        let deadline = Instant::now() + self.config.response_timeout;
        loop {
            match self.reader.poll()? {
                ReadEvent::Message(msg) => return Ok(msg),
                ReadEvent::Idle => {
                    if Instant::now() > deadline {
                        return Err(timeout_error(what));
                    }
                }
                ReadEvent::Closed => {
                    return Err(WalError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!("server closed the connection during {what}"),
                    )))
                }
            }
        }
    }
}
