//! Client side of the query front-end: a small blocking library (and the
//! REPL's `\connect` backend) that speaks the protocol in
//! [`crate::net::protocol`].

use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use modb_core::{ObjectId, UpdateMessage};
use modb_wal::WalError;

use crate::net::protocol::{
    send_message, FrameReader, Message, ReadEvent, RemoteUpdateVerdict, RemoteVerdict,
    ServerStatsSnapshot, DEFAULT_MAX_FRAME_BYTES, NET_PROTOCOL_VERSION,
};

/// Tuning for [`QueryClient`].
#[derive(Debug, Clone)]
pub struct QueryClientConfig {
    /// How long to wait for the complete response to one request
    /// (handshake, batch, or scrape).
    pub response_timeout: Duration,
    /// Per-message payload ceiling on the receive side.
    pub max_frame_bytes: u32,
    /// Bound on the TCP connect itself (`None` = the OS default, which
    /// can be minutes against a black-holed address). Anything that
    /// dials on a latency-sensitive path — the [`crate::ReadRouter`]'s
    /// refresh, a failover probe — should set this.
    pub connect_timeout: Option<Duration>,
}

impl Default for QueryClientConfig {
    fn default() -> Self {
        QueryClientConfig {
            response_timeout: Duration::from_secs(30),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            connect_timeout: None,
        }
    }
}

fn timeout_error(what: &str) -> WalError {
    WalError::Io(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        format!("timed out waiting for {what}"),
    ))
}

/// How a server answered one `Batch` request: the verdict vector, or a
/// follower's typed staleness refusal (its applied watermark had not
/// reached the batch's read-your-writes floor within the server's wait
/// deadline). `Stale` leaves the session usable — retry here later, or
/// route to a fresher follower ([`crate::ReadRouter`] does exactly
/// that).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// The batch ran; one verdict per statement in script order.
    Done(Vec<RemoteVerdict>),
    /// A follower could not satisfy the floor within its wait deadline.
    Stale {
        /// The follower's applied watermark at the moment of refusal.
        applied: u64,
        /// The read-your-writes floor it could not reach (echoes the
        /// request's `min_lsn`).
        required: u64,
    },
}

/// A blocking connection to a [`crate::net::QueryServer`]. One request
/// runs at a time: [`QueryClient::batch`] sends a `;`-script and
/// collects the per-statement verdicts, [`QueryClient::update`] /
/// [`QueryClient::update_batch`] push position updates through the
/// server's ingest shards, and [`QueryClient::stats`] scrapes the
/// server's counters.
///
/// **Read your writes.** Every update ack carries the server's WAL
/// frontier; the client keeps the highest as its token
/// ([`QueryClient::token`]) and stamps it on every batch, so a query
/// issued after an acknowledged update on this connection never misses
/// that update, regardless of the server's epoch cadence.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    reader: FrameReader,
    config: QueryClientConfig,
    addr: SocketAddr,
    token: u64,
}

impl QueryClient {
    /// Connects and handshakes with default tuning.
    ///
    /// # Errors
    ///
    /// Connection failures, a `Refused` server (capacity or version),
    /// or a handshake timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WalError> {
        Self::connect_with(addr, QueryClientConfig::default())
    }

    /// [`QueryClient::connect`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: QueryClientConfig,
    ) -> Result<Self, WalError> {
        let stream = match config.connect_timeout {
            Some(timeout) => {
                let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    WalError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "address resolved to nothing",
                    ))
                })?;
                TcpStream::connect_timeout(&addr, timeout)?
            }
            None => TcpStream::connect(addr)?,
        };
        let peer = stream.peer_addr()?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(10)))?;
        stream.set_write_timeout(Some(config.response_timeout))?;
        let reader = FrameReader::new(stream.try_clone()?, config.max_frame_bytes);
        let mut client = QueryClient {
            stream,
            reader,
            config,
            addr: peer,
            token: 0,
        };
        send_message(
            &mut client.stream,
            &Message::Hello {
                version: NET_PROTOCOL_VERSION,
            },
        )?;
        match client.next_message("handshake")? {
            Message::HelloAck { .. } => Ok(client),
            Message::Refused { reason } => Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                reason,
            ))),
            _ => Err(WalError::Decode("unexpected handshake reply")),
        }
    }

    /// The server address this client is connected to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs a `;`-separated script as one server-side batch, returning
    /// one verdict per statement in script order — the same vector a
    /// local [`crate::QueryEngine::run_batch`] would produce, with
    /// errors rendered to their display strings.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations (out-of-order statement
    /// indices, a count mismatch), or a response timeout.
    pub fn batch(&mut self, script: &str) -> Result<Vec<RemoteVerdict>, WalError> {
        let token = self.token;
        self.batch_with_token(script, token)
    }

    /// [`QueryClient::batch`] with an explicit read-your-writes floor:
    /// the server republishes its query snapshot first if none published
    /// so far covers WAL frontier `min_lsn` (0 = no floor). Use a token
    /// from another connection's update ack to read *its* writes; plain
    /// [`QueryClient::batch`] already covers this connection's own.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::batch`].
    pub fn batch_with_token(
        &mut self,
        script: &str,
        min_lsn: u64,
    ) -> Result<Vec<RemoteVerdict>, WalError> {
        match self.batch_attempt(script, min_lsn)? {
            BatchOutcome::Done(verdicts) => Ok(verdicts),
            BatchOutcome::Stale { applied, required } => Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                format!("follower stale: applied {applied} < required {required}"),
            ))),
        }
    }

    /// [`QueryClient::batch_with_token`] surfacing a follower's typed
    /// `Stale` refusal instead of folding it into the error side — the
    /// building block for retry-elsewhere routing. The session survives
    /// a `Stale`; the same client can immediately try a lower floor or a
    /// later retry.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a response timeout.
    pub fn batch_attempt(&mut self, script: &str, min_lsn: u64) -> Result<BatchOutcome, WalError> {
        send_message(
            &mut self.stream,
            &Message::Batch {
                script: script.to_string(),
                min_lsn,
            },
        )?;
        let mut verdicts: Vec<RemoteVerdict> = Vec::new();
        loop {
            match self.next_message("batch results")? {
                Message::Statement { index, verdict } => {
                    if index as usize != verdicts.len() {
                        return Err(WalError::Decode("statement results out of order"));
                    }
                    verdicts.push(verdict);
                }
                Message::BatchDone { count } => {
                    if count as usize != verdicts.len() {
                        return Err(WalError::Decode("batch result count mismatch"));
                    }
                    return Ok(BatchOutcome::Done(verdicts));
                }
                Message::Stale { applied, required } if verdicts.is_empty() => {
                    return Ok(BatchOutcome::Stale { applied, required });
                }
                _ => return Err(WalError::Decode("unexpected message in batch reply")),
            }
        }
    }

    /// Sends one position update through the server's ingest shards and
    /// waits for the ack. The verdict distinguishes applied, rejected
    /// by the DBMS (still logged), and refused at the protocol boundary
    /// (non-finite fields — never logged); transport-level failures are
    /// the `Err` side. On ack the client's read-your-writes token
    /// advances, so a following [`QueryClient::batch`] sees the write.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a response timeout.
    pub fn update(
        &mut self,
        id: ObjectId,
        msg: &UpdateMessage,
    ) -> Result<RemoteUpdateVerdict, WalError> {
        send_message(&mut self.stream, &Message::Update { id, msg: *msg })?;
        let (lsn, mut verdicts) = self.recv_update_ack(1)?;
        self.token = self.token.max(lsn);
        Ok(verdicts.remove(0))
    }

    /// Sends several updates in one frame (one ack, one token advance).
    /// Verdicts come back in input order.
    ///
    /// # Errors
    ///
    /// As [`QueryClient::update`].
    pub fn update_batch(
        &mut self,
        updates: &[(ObjectId, UpdateMessage)],
    ) -> Result<Vec<RemoteUpdateVerdict>, WalError> {
        send_message(
            &mut self.stream,
            &Message::UpdateBatch {
                updates: updates.to_vec(),
            },
        )?;
        let (lsn, verdicts) = self.recv_update_ack(updates.len())?;
        self.token = self.token.max(lsn);
        Ok(verdicts)
    }

    /// The highest acknowledged WAL frontier seen on this connection —
    /// the read-your-writes floor [`QueryClient::batch`] stamps on every
    /// script. Hand it to [`QueryClient::batch_with_token`] on another
    /// connection to make *that* reader see this writer's updates.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Raises the read-your-writes floor to `lsn` (never lowers it).
    /// Use a token minted by a writer connection — e.g. the REPL's
    /// `\session <lsn>` — to make this reader observe that writer's
    /// acknowledged updates even across processes.
    pub fn set_token(&mut self, lsn: u64) {
        self.token = self.token.max(lsn);
    }

    fn recv_update_ack(
        &mut self,
        expected: usize,
    ) -> Result<(u64, Vec<RemoteUpdateVerdict>), WalError> {
        match self.next_message("update ack")? {
            Message::UpdateAck { lsn, verdicts } => {
                if verdicts.len() != expected {
                    return Err(WalError::Decode("update ack verdict count mismatch"));
                }
                Ok((lsn, verdicts))
            }
            _ => Err(WalError::Decode("unexpected message in update ack")),
        }
    }

    /// Scrapes the server's combined stats frame.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, or a response timeout.
    pub fn stats(&mut self) -> Result<ServerStatsSnapshot, WalError> {
        send_message(&mut self.stream, &Message::StatsRequest)?;
        match self.next_message("stats reply")? {
            Message::StatsReply(stats) => Ok(*stats),
            _ => Err(WalError::Decode("unexpected message in stats reply")),
        }
    }

    /// Closes the connection (also happens on drop).
    pub fn close(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn next_message(&mut self, what: &str) -> Result<Message, WalError> {
        let deadline = Instant::now() + self.config.response_timeout;
        loop {
            match self.reader.poll()? {
                ReadEvent::Message(msg) => return Ok(msg),
                ReadEvent::Idle => {
                    if Instant::now() > deadline {
                        return Err(timeout_error(what));
                    }
                }
                ReadEvent::Closed => {
                    return Err(WalError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!("server closed the connection during {what}"),
                    )))
                }
            }
        }
    }
}
