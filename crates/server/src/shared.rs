//! A thread-safe database handle.

use std::path::Path;
use std::sync::Arc;

use modb_core::{
    CoreError, Database, MovingObject, ObjectId, PositionAnswer, RangeAnswer, StationaryObject,
    UpdateMessage,
};
use modb_geom::Point;
use modb_index::QueryRegion;
use modb_query::{QueryError, QueryResult};
use modb_routes::Route;
use modb_wal::{RecoveryReport, WalError};
use parking_lot::RwLock;

/// A cloneable, thread-safe handle to one moving-objects database.
///
/// Queries take a read lock (many concurrent readers); updates take a
/// write lock. The lock is held only for the duration of one operation —
/// the underlying [`Database`] operations are all short (no I/O).
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
}

impl SharedDatabase {
    /// Wraps a database for shared use.
    pub fn new(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Rebuilds a shared database from a durability directory (latest
    /// snapshot + write-ahead-log replay, torn tails truncated). See
    /// [`modb_wal::recover`] for the procedure; see
    /// [`crate::DurableDatabase::open`] to also resume logging.
    ///
    /// # Errors
    ///
    /// See [`modb_wal::recover`].
    pub fn recover(dir: &Path) -> Result<(Self, RecoveryReport), WalError> {
        let recovered = modb_wal::recover(dir)?;
        Ok((SharedDatabase::new(recovered.database), recovered.report))
    }

    /// Spawns a [`crate::QueryEngine`] over this handle: epoch-snapshot
    /// reads that never contend with writers, with a worker pool for
    /// batches and parallel refinement.
    pub fn query_engine(&self, config: crate::QueryEngineConfig) -> crate::QueryEngine {
        crate::QueryEngine::new(self.clone(), config)
    }

    /// Registers a moving object.
    ///
    /// # Errors
    ///
    /// See [`Database::register_moving`].
    pub fn register_moving(&self, obj: MovingObject) -> Result<(), CoreError> {
        self.inner.write().register_moving(obj)
    }

    /// Registers a stationary landmark.
    ///
    /// # Errors
    ///
    /// See [`Database::insert_stationary`].
    pub fn insert_stationary(&self, obj: StationaryObject) -> Result<(), CoreError> {
        self.inner.write().insert_stationary(obj)
    }

    /// Adds a route to the route network.
    ///
    /// # Errors
    ///
    /// See [`Database::insert_route`].
    pub fn insert_route(&self, route: Route) -> Result<(), CoreError> {
        self.inner.write().insert_route(route)
    }

    /// Applies a position update.
    ///
    /// # Errors
    ///
    /// See [`Database::apply_update`].
    pub fn apply_update(&self, id: ObjectId, msg: &UpdateMessage) -> Result<(), CoreError> {
        self.inner.write().apply_update(id, msg)
    }

    /// Removes a moving object.
    ///
    /// # Errors
    ///
    /// See [`Database::remove_moving`].
    pub fn remove_moving(&self, id: ObjectId) -> Result<MovingObject, CoreError> {
        self.inner.write().remove_moving(id)
    }

    /// Position query with deviation bound.
    ///
    /// # Errors
    ///
    /// See [`Database::position_of`].
    pub fn position_of(&self, id: ObjectId, t: f64) -> Result<PositionAnswer, CoreError> {
        self.inner.read().position_of(id, t)
    }

    /// As-of position query.
    ///
    /// # Errors
    ///
    /// See [`Database::position_of_as_of`].
    pub fn position_of_as_of(&self, id: ObjectId, t: f64) -> Result<PositionAnswer, CoreError> {
        self.inner.read().position_of_as_of(id, t)
    }

    /// May/must range query via the time-space index.
    ///
    /// # Errors
    ///
    /// See [`Database::range_query`].
    pub fn range_query(&self, region: &QueryRegion) -> Result<RangeAnswer, CoreError> {
        self.inner.read().range_query(region)
    }

    /// Within-distance-of-point query.
    ///
    /// # Errors
    ///
    /// See [`Database::within_distance_of_point`].
    pub fn within_distance_of_point(
        &self,
        center: Point,
        radius: f64,
        t: f64,
    ) -> Result<RangeAnswer, CoreError> {
        self.inner
            .read()
            .within_distance_of_point(center, radius, t)
    }

    /// Executes a textual query (the `modb-query` language).
    ///
    /// # Errors
    ///
    /// See [`modb_query::run`].
    pub fn run_query(&self, src: &str) -> Result<QueryResult, QueryError> {
        modb_query::run(&self.inner.read(), src)
    }

    /// Number of moving objects.
    pub fn moving_count(&self) -> usize {
        self.inner.read().moving_count()
    }

    /// Runs an arbitrary read-only closure against the database (escape
    /// hatch for operations not mirrored here).
    pub fn with_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs a mutating closure under the write lock. Crate-internal: the
    /// replication follower applies raw WAL records through
    /// [`modb_wal::apply_record`], which needs `&mut Database`.
    pub(crate) fn with_write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Swaps the wrapped database in place. Existing clones (and query
    /// engines built over them) observe the new state on their next lock
    /// acquisition — this is how a replica installs a bootstrap snapshot
    /// without invalidating handles.
    pub(crate) fn replace(&self, db: Database) {
        *self.inner.write() = db;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{DatabaseConfig, PolicyDescriptor, PositionAttribute, UpdatePosition};
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn shared() -> SharedDatabase {
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap();
        let network = RouteNetwork::from_routes([route]).unwrap();
        SharedDatabase::new(Database::new(network, DatabaseConfig::default()))
    }

    fn obj(id: u64, arc: f64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(arc, 0.0),
                start_arc: arc,
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        }
    }

    #[test]
    fn basic_operations_through_handle() {
        let db = shared();
        db.register_moving(obj(1, 10.0)).unwrap();
        assert_eq!(db.moving_count(), 1);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(2.0, UpdatePosition::Arc(12.0), 0.5),
        )
        .unwrap();
        let p = db.position_of(ObjectId(1), 4.0).unwrap();
        assert_eq!(p.arc, 13.0);
        let r = db
            .run_query("RETRIEVE OBJECTS WITHIN 5 OF POINT (13, 0) AT TIME 4")
            .unwrap();
        assert_eq!(r.as_range().unwrap().all(), vec![ObjectId(1)]);
        let past = db.position_of_as_of(ObjectId(1), 1.0).unwrap();
        assert_eq!(past.arc, 11.0);
        db.remove_moving(ObjectId(1)).unwrap();
        assert_eq!(db.moving_count(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = shared();
        let b = a.clone();
        a.register_moving(obj(1, 10.0)).unwrap();
        assert_eq!(b.moving_count(), 1);
        b.with_read(|db| assert!(db.moving(ObjectId(1)).is_ok()));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let db = shared();
        for i in 0..20 {
            db.register_moving(obj(i, i as f64)).unwrap();
        }
        std::thread::scope(|s| {
            // Writers: each thread updates its own disjoint objects.
            for w in 0..4u64 {
                let handle = db.clone();
                s.spawn(move || {
                    for round in 1..=50u64 {
                        for i in (w * 5)..(w * 5 + 5) {
                            let t = round as f64 * 0.1;
                            handle
                                .apply_update(
                                    ObjectId(i),
                                    &UpdateMessage::basic(
                                        t,
                                        UpdatePosition::Arc((i as f64 + t).min(100.0)),
                                        0.8,
                                    ),
                                )
                                .unwrap();
                        }
                    }
                });
            }
            // Readers hammer queries concurrently.
            for _ in 0..4 {
                let handle = db.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let r = handle
                            .within_distance_of_point(Point::new(50.0, 0.0), 30.0, 5.0)
                            .unwrap();
                        assert!(r.candidates <= 20);
                    }
                });
            }
        });
        // All final updates applied: every object's start_time is 5.0.
        db.with_read(|inner| {
            for id in inner.moving_ids().collect::<Vec<_>>() {
                assert_eq!(inner.moving(id).unwrap().attr.start_time, 5.0);
            }
        });
    }
}
