//! # modb-server — service façade for the moving-objects database
//!
//! The paper's deployment (§1) has many vehicles sending position updates
//! over wireless links while stationary and mobile users pose queries.
//! This crate provides that service shape on top of `modb-core`:
//!
//! - [`SharedDatabase`]: a cloneable, thread-safe handle (readers–writer
//!   locking via `parking_lot`) exposing the full query API, including the
//!   `modb-query` text language.
//! - [`IngestService`]: a sharded crossbeam-channel worker pool draining an
//!   asynchronous stream of [`UpdateEnvelope`]s into the database with
//!   per-object FIFO ordering, plus per-reason accepted/rejected counters —
//!   rejected messages (stale, off-route, unknown sender) are radio-network
//!   business as usual. Spawned with a `modb-wal` writer, the workers log
//!   every envelope (batched, flushed after application so the WAL
//!   watermark never runs ahead of the state).
//! - [`ShadowBuffer`]: a delta-maintained shadow copy of the database —
//!   the consumer side of `modb-core`'s change-log subscription, reused
//!   by the epoch publisher and the pause-free snapshot path.
//! - [`DurableDatabase`]: the durable deployment shape — a shared database
//!   whose mutations are write-ahead logged, with pause-free snapshots
//!   (serialization holds no database lock) and crash recovery
//!   ([`DurableDatabase::open`] / [`SharedDatabase::recover`]).
//! - [`QueryEngine`]: epoch-based snapshot reads plus a parallel query
//!   executor — queries run lock-free against a recently published
//!   immutable snapshot, batches and large refines fan out across a fixed
//!   worker pool, and [`QueryStats`] tracks per-epoch counts and latency
//!   percentiles (see the `query_engine` module docs for the staleness /
//!   imprecision argument).
//! - **Replication** ([`DurableDatabase::serve_replication`] /
//!   [`StandbyReplica`]): the leader ships its WAL (bootstrap snapshot +
//!   streamed segments) over a CRC-framed socket protocol to warm standby
//!   followers, which replay it through the recovery seam into their own
//!   database + query engine; follower acknowledgements form the
//!   [`ShipHorizon`] compaction barrier, and replication lag prices into
//!   the paper's deviation bound as `D·dt` (see the `replication` module
//!   docs).
//! - **Query front-end** ([`DurableDatabase::serve_queries`] /
//!   [`QueryClient`]): remote `;`-batches and a one-frame metrics scrape
//!   ([`ServerStatsSnapshot`], with a Prometheus text exposition) over
//!   the same CRC-framed socket protocol, with connection caps, frame
//!   caps, stalled-client deadlines, and drained shutdown (see the `net`
//!   module docs).
//! - **Sharded cluster** ([`cluster`]): partition the fleet across N
//!   such servers — [`ShardMap`] key strategies (hash-of-id, spatial
//!   regions), a scatter-gather [`ClusterRouter`] whose merged verdicts
//!   match a single node holding the union fleet, remote ingest routed
//!   to the owning shard with per-shard read-your-writes tokens, and a
//!   [`CostModel`] scoring candidate maps against recorded workloads
//!   (see the `cluster` module docs).

#![warn(missing_docs)]

pub mod cluster;
mod durable;
mod ingest;
mod net;
mod query_engine;
mod replication;
mod shadow;
mod shared;

pub use cluster::{
    ClusterError, ClusterRouter, CostBreakdown, CostModel, RecordedWorkload, ShardKey, ShardMap,
    WorkloadOp,
};
pub use durable::DurableDatabase;
pub use ingest::{
    IngestFrontend, IngestHandle, IngestMonitor, IngestService, IngestStats, IngestStatsSnapshot,
    UpdateEnvelope, UpdateOutcome, WAL_BATCH_RECORDS,
};
pub use net::{
    BatchOutcome, FollowerStatus, QueryClient, QueryClientConfig, QueryServer, QueryServerConfig,
    ReadRouter, ReadRouterConfig, RemoteUpdateVerdict, RemoteVerdict, RouterError,
    ServerStatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
};
pub use query_engine::{
    BatchRequest, EpochSnapshot, QueryEngine, QueryEngineConfig, QueryStats, QueryStatsSnapshot,
};
pub use replication::{
    DivergenceInfo, FailoverConfig, FailoverCoordinator, FailoverError, FailoverOutcome,
    FailoverPlan, ReplicaConfig, ReplicaPhase, ReplicaStatsSnapshot, ReplicaWatch,
    ReplicationConfig, ReplicationServer, ReplicationStatsSnapshot, ShipHorizon, StandbyReplica,
};
pub use shadow::ShadowBuffer;
pub use shared::SharedDatabase;
