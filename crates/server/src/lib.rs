//! # modb-server — service façade for the moving-objects database
//!
//! The paper's deployment (§1) has many vehicles sending position updates
//! over wireless links while stationary and mobile users pose queries.
//! This crate provides that service shape on top of `modb-core`:
//!
//! - [`SharedDatabase`]: a cloneable, thread-safe handle (readers–writer
//!   locking via `parking_lot`) exposing the full query API, including the
//!   `modb-query` text language.
//! - [`IngestService`]: a sharded crossbeam-channel worker pool draining an
//!   asynchronous stream of [`UpdateEnvelope`]s into the database with
//!   per-object FIFO ordering, plus accepted/rejected counters — rejected
//!   messages (stale, off-route, unknown sender) are radio-network
//!   business as usual.

#![warn(missing_docs)]

mod ingest;
mod shared;

pub use ingest::{IngestHandle, IngestService, IngestStats, UpdateEnvelope};
pub use shared::SharedDatabase;
