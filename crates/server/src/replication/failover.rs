//! Leader failover: deadman detection, freshest-follower election,
//! promotion, and chain repoint.
//!
//! The pieces compose the write-path half of availability (DESIGN.md
//! §16). A [`FailoverCoordinator`] probes the leader's query front-end
//! stats frame on a cadence; a leader that misses
//! [`FailoverConfig::probe_failures`] consecutive probes is declared
//! dead. [`FailoverCoordinator::fail_over`] then elects the follower
//! with the highest applied watermark (it has the longest acked prefix —
//! promoting anything staler would silently drop acked writes its peers
//! hold), promotes it via [`StandbyReplica::promote`], and repoints the
//! survivors at the promotee's re-ship address so they resume from their
//! applied LSN instead of re-bootstrapping.
//!
//! Election here is administrative, not consensus: one coordinator
//! decides, the epoch machinery ([`modb_wal::EpochHistory`]) is what
//! keeps a partitioned old leader from corrupting anyone — its revived
//! tail past the promotion point is refused with a typed `Diverged`
//! answer no matter who talks to whom first.

use std::fmt;
use std::time::Duration;

use modb_wal::WalError;

use crate::durable::DurableDatabase;
use crate::net::{QueryClient, QueryClientConfig};
use crate::replication::follower::StandbyReplica;

/// Tuning for the deadman probe.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Pause between probes of the leader's stats frame.
    pub probe_interval: Duration,
    /// Consecutive failed probes before the leader is declared dead. One
    /// failure is a blip; this many in a row is an outage.
    pub probe_failures: u32,
    /// Tuning for the probe connection (keep `response_timeout` short —
    /// it bounds how long one dead probe takes).
    pub client: QueryClientConfig,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            probe_interval: Duration::from_millis(100),
            probe_failures: 3,
            client: QueryClientConfig {
                response_timeout: Duration::from_millis(500),
                ..QueryClientConfig::default()
            },
        }
    }
}

/// Why a failover could not run.
#[derive(Debug)]
pub enum FailoverError {
    /// No follower to promote.
    NoCandidates,
    /// `ship_addrs` does not pair one address with each replica.
    AddrCountMismatch {
        /// Candidate replicas offered.
        replicas: usize,
        /// Re-ship addresses offered.
        addrs: usize,
    },
    /// Every candidate's promotion failed; the last error, rendered.
    AllPromotionsFailed(String),
}

impl fmt::Display for FailoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailoverError::NoCandidates => write!(f, "no follower available to promote"),
            FailoverError::AddrCountMismatch { replicas, addrs } => write!(
                f,
                "{replicas} candidate replica(s) but {addrs} re-ship address(es)"
            ),
            FailoverError::AllPromotionsFailed(e) => {
                write!(f, "every candidate promotion failed; last error: {e}")
            }
        }
    }
}

impl std::error::Error for FailoverError {}

impl From<FailoverError> for WalError {
    fn from(e: FailoverError) -> Self {
        WalError::Io(std::io::Error::other(e.to_string()))
    }
}

/// The election verdict, before anything is touched: who would be
/// promoted and what everyone's watermark was at decision time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverPlan {
    /// Index (into the candidate slice) of the follower to promote.
    pub winner: usize,
    /// The winner's applied watermark.
    pub winner_applied: u64,
    /// Every candidate's applied watermark, in candidate order.
    pub applied: Vec<u64>,
}

/// What a completed failover produced.
pub struct FailoverOutcome {
    /// The promoted follower, now a full write-accepting leader.
    pub promoted: DurableDatabase,
    /// Index (into the original candidate vector) of the promotee.
    pub winner: usize,
    /// The promotee's log frontier right after promotion (the sealed
    /// `LeaderEpoch` record is the last one below it).
    pub promoted_next_lsn: u64,
    /// The leadership epoch the promotion opened.
    pub epoch: u64,
    /// The surviving followers, already repointed at the promotee.
    pub survivors: Vec<StandbyReplica>,
}

impl fmt::Debug for FailoverOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailoverOutcome")
            .field("winner", &self.winner)
            .field("promoted_next_lsn", &self.promoted_next_lsn)
            .field("epoch", &self.epoch)
            .field("survivors", &self.survivors.len())
            .finish_non_exhaustive()
    }
}

/// Watches one leader and, on its death, turns a set of followers into a
/// new leader plus a repointed chain. See the module docs.
#[derive(Debug)]
pub struct FailoverCoordinator {
    leader_addr: String,
    config: FailoverConfig,
    probe: Option<QueryClient>,
    failures: u32,
}

impl FailoverCoordinator {
    /// A coordinator probing the leader's *query front-end* at
    /// `leader_addr` (the stats frame is the liveness signal — it proves
    /// the whole serving stack, not just a TCP accept).
    pub fn new(leader_addr: impl Into<String>, config: FailoverConfig) -> Self {
        FailoverCoordinator {
            leader_addr: leader_addr.into(),
            config,
            probe: None,
            failures: 0,
        }
    }

    /// One probe: scrape the leader's stats frame. `true` means alive
    /// (and resets the failure streak); `false` counts toward the
    /// deadman threshold. Bounded by the config's `response_timeout`.
    pub fn probe(&mut self) -> bool {
        if self.probe.is_none() {
            self.probe =
                QueryClient::connect_with(&self.leader_addr, self.config.client.clone()).ok();
        }
        let alive = match self.probe.as_mut() {
            Some(client) => client.stats().is_ok(),
            None => false,
        };
        if alive {
            self.failures = 0;
        } else {
            self.probe = None;
            self.failures = self.failures.saturating_add(1);
        }
        alive
    }

    /// Consecutive failed probes so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Whether the failure streak has crossed the deadman threshold.
    pub fn leader_dead(&self) -> bool {
        self.failures >= self.config.probe_failures
    }

    /// Probes on the configured cadence until the deadman threshold is
    /// crossed or `max_wait` elapses. `true` means the leader is dead
    /// (time to [`FailoverCoordinator::fail_over`]); `false` means it
    /// stayed (or came back) alive.
    pub fn await_death(&mut self, max_wait: Duration) -> bool {
        let deadline = std::time::Instant::now() + max_wait;
        loop {
            self.probe();
            if self.leader_dead() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.config.probe_interval);
        }
    }

    /// Elects the promotee without touching anything: the candidate with
    /// the highest applied watermark (first wins ties — candidate order
    /// is the operator's preference order).
    ///
    /// # Errors
    ///
    /// [`FailoverError::NoCandidates`] on an empty slice.
    pub fn plan(candidates: &[StandbyReplica]) -> Result<FailoverPlan, FailoverError> {
        let applied: Vec<u64> = candidates.iter().map(|r| r.applied_lsn()).collect();
        let winner = applied
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .ok_or(FailoverError::NoCandidates)?;
        Ok(FailoverPlan {
            winner,
            winner_applied: applied[winner],
            applied,
        })
    }

    /// Runs the failover: elect, promote, repoint. `ship_addrs[i]` is
    /// where candidate `i` re-ships its log
    /// ([`StandbyReplica::serve_replication`] must already be running
    /// there — promotion keeps it serving); survivors are repointed at
    /// the winner's entry. If the freshest candidate's promotion fails,
    /// the next-freshest is tried (the failed one is lost — its state
    /// was not usable to lead from anyway).
    ///
    /// # Errors
    ///
    /// [`FailoverError::NoCandidates`], [`FailoverError::AddrCountMismatch`],
    /// or [`FailoverError::AllPromotionsFailed`].
    pub fn fail_over(
        candidates: Vec<StandbyReplica>,
        ship_addrs: &[String],
    ) -> Result<FailoverOutcome, FailoverError> {
        if candidates.is_empty() {
            return Err(FailoverError::NoCandidates);
        }
        if candidates.len() != ship_addrs.len() {
            return Err(FailoverError::AddrCountMismatch {
                replicas: candidates.len(),
                addrs: ship_addrs.len(),
            });
        }
        // Freshest first; original index remembered so the outcome and
        // the ship-addr lookup both speak the caller's numbering.
        let mut slots: Vec<(usize, StandbyReplica)> = candidates.into_iter().enumerate().collect();
        slots.sort_by_key(|(i, r)| (std::cmp::Reverse(r.applied_lsn()), *i));
        let mut last_err: Option<WalError> = None;
        while !slots.is_empty() {
            let (winner, replica) = slots.remove(0);
            match replica.promote() {
                Ok(promoted) => {
                    let promoted_next_lsn = promoted.wal().next_lsn();
                    let epoch = promoted.epoch();
                    let survivors: Vec<StandbyReplica> = slots
                        .into_iter()
                        .map(|(_, r)| {
                            r.repoint(ship_addrs[winner].clone());
                            r
                        })
                        .collect();
                    return Ok(FailoverOutcome {
                        promoted,
                        winner,
                        promoted_next_lsn,
                        epoch,
                        survivors,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(FailoverError::AllPromotionsFailed(
            last_err
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no error recorded".into()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_are_informative() {
        assert!(FailoverError::NoCandidates.to_string().contains("promote"));
        let e = FailoverError::AddrCountMismatch {
            replicas: 3,
            addrs: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
        let e = FailoverError::AllPromotionsFailed("boom".into());
        assert!(e.to_string().contains("boom"));
        let w: WalError = FailoverError::NoCandidates.into();
        assert!(matches!(w, WalError::Io(_)));
    }

    #[test]
    fn dead_leader_probe_counts_failures() {
        // Nothing listens on this address (port 9 is discard; connect
        // fails fast on loopback).
        let mut fo = FailoverCoordinator::new(
            "127.0.0.1:9",
            FailoverConfig {
                probe_interval: Duration::from_millis(1),
                probe_failures: 2,
                ..FailoverConfig::default()
            },
        );
        assert!(!fo.probe());
        assert!(!fo.leader_dead(), "one failure is a blip");
        assert!(!fo.probe());
        assert!(fo.leader_dead());
        assert_eq!(fo.failures(), 2);
    }
}
