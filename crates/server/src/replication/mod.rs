//! WAL-shipping replication: a leader streams its write-ahead log to
//! warm standby followers over TCP.
//!
//! The log is already a complete, ordered, CRC-framed change stream
//! (every mutation is appended before the paper's imprecision machinery
//! ever answers a query from it), so replication is log shipping plus
//! careful failure handling:
//!
//! - the **leader** ([`crate::DurableDatabase::serve_replication`])
//!   bootstraps each follower from its newest snapshot and then tails
//!   its own segments with [`modb_wal::SegmentTailer`], shipping records
//!   in bounded runs; follower acknowledgements feed the
//!   [`ShipHorizon`], the compaction barrier that keeps unshipped log
//!   alive ([`modb_wal::compact_with_barrier`]);
//! - the **follower** ([`StandbyReplica`]) replays the stream through
//!   [`modb_wal::apply_record`] — the exact seam recovery uses — into
//!   its own database, persists what it applies to a local log, and
//!   tracks an applied watermark so a reconnect (or restart) resumes
//!   incrementally instead of re-bootstrapping.
//!
//! A lagging follower is not wrong, just stale in a *bounded* way: if it
//! lags the leader by `dt` seconds of database time, a position answered
//! from it deviates from the leader's answer by at most `D·dt` where `D`
//! bounds the relative drift rate (§3.3 of the paper, widened the same
//! way epoch snapshots widen it — see DESIGN.md §10 and the W4
//! experiment).

mod failover;
mod follower;
mod horizon;
mod leader;
mod protocol;

pub use failover::{
    FailoverConfig, FailoverCoordinator, FailoverError, FailoverOutcome, FailoverPlan,
};
pub use follower::{
    DivergenceInfo, ReplicaConfig, ReplicaPhase, ReplicaStatsSnapshot, ReplicaWatch, StandbyReplica,
};
pub use horizon::ShipHorizon;
pub use leader::{ReplicationConfig, ReplicationServer, ReplicationStatsSnapshot};
