//! The replication horizon: the compaction barrier that keeps unshipped
//! log alive.
//!
//! Every connected follower registers an entry holding the LSN it has
//! acknowledged; [`ShipHorizon::min`] is the lowest such LSN across all
//! of them, and the leader passes it to
//! [`modb_wal::compact_with_barrier`] so no segment a live follower
//! still has to read is ever garbage-collected. A follower that
//! disconnects releases its entry — its log may then be compacted away,
//! and on reconnect it re-bootstraps from a snapshot if its cursor fell
//! behind the oldest surviving segment.

use std::collections::HashMap;
use std::sync::Mutex;

/// Registry of per-follower acknowledged LSNs; the minimum across all
/// live entries is the ship barrier for log compaction. Shared between
/// the replication server's connection handlers and
/// [`crate::DurableDatabase::snapshot_with_retention`].
#[derive(Debug, Default)]
pub struct ShipHorizon {
    entries: Mutex<HorizonEntries>,
}

#[derive(Debug, Default)]
struct HorizonEntries {
    next_id: u64,
    acked: HashMap<u64, u64>,
}

impl ShipHorizon {
    /// An empty horizon (no followers; compaction is unconstrained).
    pub fn new() -> Self {
        ShipHorizon::default()
    }

    /// Registers a follower whose unshipped log starts at `lsn`,
    /// returning an id for [`ShipHorizon::advance`] /
    /// [`ShipHorizon::release`]. Registering at 0 pins the whole log —
    /// the right opening move while a handshake decides the real cursor.
    pub fn register(&self, lsn: u64) -> u64 {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let id = entries.next_id;
        entries.next_id += 1;
        entries.acked.insert(id, lsn);
        id
    }

    /// Moves a follower's barrier forward (acknowledged through `lsn`).
    /// A stale `lsn` below the current value is ignored — the barrier
    /// never moves backwards.
    pub fn advance(&self, id: u64, lsn: u64) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = entries.acked.get_mut(&id) {
            *v = (*v).max(lsn);
        }
    }

    /// Drops a follower's entry (it disconnected); its log becomes
    /// eligible for compaction again.
    pub fn release(&self, id: u64) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.acked.remove(&id);
    }

    /// The compaction barrier: the lowest acknowledged LSN across live
    /// followers, or `None` when none are connected.
    pub fn min(&self) -> Option<u64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.acked.values().copied().min()
    }

    /// Number of registered followers.
    pub fn followers(&self) -> usize {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.acked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_tracks_registrations_and_releases() {
        let h = ShipHorizon::new();
        assert_eq!(h.min(), None);
        let a = h.register(0);
        let b = h.register(40);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.followers(), 2);
        h.advance(a, 25);
        assert_eq!(h.min(), Some(25));
        h.advance(a, 10); // never backwards
        assert_eq!(h.min(), Some(25));
        h.release(a);
        assert_eq!(h.min(), Some(40));
        h.release(b);
        assert_eq!(h.min(), None);
        h.advance(b, 99); // released id: no-op
        assert_eq!(h.min(), None);
    }

    /// Concurrent register/advance/release from many follower threads
    /// while a compactor thread polls `min`: ids stay unique, the
    /// barrier observed mid-flight is never above any live follower's
    /// acked LSN (monotone per follower), and the registry drains to
    /// empty once every thread has released.
    #[test]
    fn concurrent_register_advance_release_converges() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let h = Arc::new(ShipHorizon::new());
        let done = Arc::new(AtomicBool::new(false));

        // Compactor side: the barrier must always be a plausible value —
        // while any follower is live it is Some(lsn ≤ the largest LSN any
        // follower will ever ack).
        let poller = {
            let h = Arc::clone(&h);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if let Some(m) = h.min() {
                        assert!(m <= 1_000, "barrier {m} above any acked LSN");
                    }
                    std::thread::yield_now();
                }
            })
        };

        let followers: Vec<_> = (0..8)
            .map(|f| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for round in 0..50u64 {
                        let id = h.register(0);
                        // Advance out of order: the entry must stay
                        // monotone regardless.
                        h.advance(id, 500 + round);
                        h.advance(id, round);
                        h.advance(id, 1_000);
                        ids.push(id);
                        if round % 3 == 0 {
                            h.release(id);
                            ids.pop();
                        }
                    }
                    for id in ids.drain(..) {
                        h.release(id);
                    }
                    // Ids are unique across threads: every register got a
                    // fresh slot (no double-release panics, no aliasing).
                    (f, ())
                })
            })
            .collect();
        for t in followers {
            t.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        poller.join().unwrap();
        assert_eq!(h.followers(), 0, "registry must drain after releases");
        assert_eq!(h.min(), None);
    }
}
