//! Leader side of WAL shipping: accept followers, bootstrap them from a
//! snapshot, then stream log segments as the writer grows them.
//!
//! One thread accepts connections; each follower gets a session thread
//! pair — a **shipper** (tailing the log with [`SegmentTailer`] and
//! writing `Snapshot` / `Records` / `Heartbeat` messages) and an
//! **ack reader** (draining `Ack` messages into the acknowledged-LSN
//! watermark). The watermark feeds the [`ShipHorizon`], which
//! [`crate::DurableDatabase::snapshot_with_retention`] passes to
//! [`modb_wal::compact_with_barrier`] so compaction never deletes a
//! segment a connected follower still has to read.

use std::fmt;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modb_wal::{
    list_segments, list_snapshots, read_snapshot, EpochCheck, EpochHistory, SegmentTailer, WalError,
};

use crate::durable::DurableDatabase;
use crate::replication::horizon::ShipHorizon;
use crate::replication::protocol::{
    send_message, FrameReader, Message, ReadEvent, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Where the shipped log ends: a closure yielding the serving node's
/// frontier LSN. On a leader that is the WAL's next LSN; on a chained
/// follower ([`crate::StandbyReplica::serve_replication`]) it is the
/// applied watermark — the ship machinery itself is identical, which is
/// what lets one leader feed a tree of followers through the same seam.
#[derive(Clone)]
pub(crate) struct Frontier(Arc<dyn Fn() -> u64 + Send + Sync>);

impl Frontier {
    pub(crate) fn new(f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        Frontier(Arc::new(f))
    }

    fn now(&self) -> u64 {
        (self.0)()
    }
}

impl fmt::Debug for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frontier({})", self.now())
    }
}

/// Tuning for [`DurableDatabase::serve_replication`].
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Records per `Records` message (bounds catch-up burst size).
    pub chunk_records: usize,
    /// Sleep between tail polls when the follower is caught up.
    pub poll_interval: Duration,
    /// Cadence of `Heartbeat` messages while idle (carries the leader's
    /// log frontier, so the follower can report lag).
    pub heartbeat_interval: Duration,
    /// Socket write timeout; a follower stalled longer than this is
    /// disconnected (its horizon entry is then released, letting
    /// compaction proceed).
    pub write_timeout: Option<Duration>,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            chunk_records: 512,
            poll_interval: Duration::from_millis(2),
            heartbeat_interval: Duration::from_millis(100),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

#[derive(Debug, Default)]
struct ServerStats {
    connections: AtomicU64,
    snapshots_shipped: AtomicU64,
    records_shipped: AtomicU64,
}

/// Point-in-time view of a replication server's activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationStatsSnapshot {
    /// Followers currently connected (live horizon entries).
    pub followers: usize,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// The leader's log frontier (next LSN to be written).
    pub leader_next_lsn: u64,
    /// Lowest acknowledged LSN across connected followers (the ship
    /// barrier), when any are connected.
    pub min_acked_lsn: Option<u64>,
    /// `leader_next_lsn − min_acked_lsn`: the worst follower's lag in
    /// records (0 with no followers).
    pub max_lag_records: u64,
    /// Bootstrap snapshots shipped.
    pub snapshots_shipped: u64,
    /// Log records shipped (re-sends after a reconnect count again).
    pub records_shipped: u64,
}

impl fmt::Display for ReplicationStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replication: {} follower(s), {} connection(s), frontier lsn {}, \
             max lag {} record(s), {} snapshot(s) + {} record(s) shipped",
            self.followers,
            self.connections,
            self.leader_next_lsn,
            self.max_lag_records,
            self.snapshots_shipped,
            self.records_shipped,
        )
    }
}

/// Handle to a running leader-side replication listener. Dropping (or
/// [`ReplicationServer::shutdown`]) stops the accept loop and all
/// follower sessions.
#[derive(Debug)]
pub struct ReplicationServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    horizon: Arc<ShipHorizon>,
    frontier: Frontier,
}

impl ReplicationServer {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current activity counters and lag.
    pub fn stats(&self) -> ReplicationStatsSnapshot {
        let leader_next_lsn = self.frontier.now();
        let min_acked_lsn = self.horizon.min();
        ReplicationStatsSnapshot {
            followers: self.horizon.followers(),
            connections: self.stats.connections.load(Ordering::Relaxed),
            leader_next_lsn,
            min_acked_lsn,
            max_lag_records: min_acked_lsn.map_or(0, |a| leader_next_lsn.saturating_sub(a)),
            snapshots_shipped: self.stats.snapshots_shipped.load(Ordering::Relaxed),
            records_shipped: self.stats.records_shipped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, disconnects followers, and returns the final
    /// stats.
    pub fn shutdown(mut self) -> ReplicationStatsSnapshot {
        let stats = self.stats();
        self.stop_and_join();
        stats
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl DurableDatabase {
    /// Starts serving this database's log to followers on `addr` (use
    /// port 0 for an ephemeral port, then
    /// [`ReplicationServer::local_addr`]). Each accepted follower is
    /// bootstrapped from the newest readable snapshot if its log
    /// position cannot be resumed, then streamed records as they are
    /// appended; its acknowledged watermark pins log compaction via the
    /// ship barrier.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_replication(
        &self,
        addr: impl ToSocketAddrs,
        config: ReplicationConfig,
    ) -> Result<ReplicationServer, WalError> {
        let wal = self.wal().clone();
        serve_replication_from(
            self.dir().to_path_buf(),
            Frontier::new(move || wal.next_lsn()),
            Arc::clone(self.ship_horizon()),
            Arc::clone(self.epochs()),
            addr,
            config,
        )
    }
}

/// Shared ship-server constructor: tails the segments in `dir` up to
/// `frontier`, feeding acknowledgements into `horizon`. The leader and a
/// chained follower differ only in these three inputs.
pub(crate) fn serve_replication_from(
    dir: PathBuf,
    frontier: Frontier,
    horizon: Arc<ShipHorizon>,
    epochs: Arc<Mutex<EpochHistory>>,
    addr: impl ToSocketAddrs,
    config: ReplicationConfig,
) -> Result<ReplicationServer, WalError> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let accept = {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let horizon = Arc::clone(&horizon);
        let frontier = frontier.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            accept_loop(
                listener, dir, frontier, horizon, epochs, stats, config, stop,
            )
        })
    };
    Ok(ReplicationServer {
        addr: local,
        stop,
        accept: Some(accept),
        stats,
        horizon,
        frontier,
    })
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    dir: PathBuf,
    frontier: Frontier,
    horizon: Arc<ShipHorizon>,
    epochs: Arc<Mutex<EpochHistory>>,
    stats: Arc<ServerStats>,
    config: ReplicationConfig,
    stop: Arc<AtomicBool>,
) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let dir = dir.clone();
                let frontier = frontier.clone();
                let horizon = Arc::clone(&horizon);
                let epochs = Arc::clone(&epochs);
                let stats = Arc::clone(&stats);
                let config = config.clone();
                let stop = Arc::clone(&stop);
                sessions.push(std::thread::spawn(move || {
                    handle_follower(stream, &dir, frontier, horizon, epochs, stats, config, stop)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// One follower session: handshake, optional bootstrap, then ship until
/// disconnect or shutdown. The horizon entry is registered at 0 (pinning
/// the whole log) *before* the resume point is chosen, and released on
/// the way out.
#[allow(clippy::too_many_arguments)]
fn handle_follower(
    mut stream: TcpStream,
    dir: &Path,
    frontier: Frontier,
    horizon: Arc<ShipHorizon>,
    epochs: Arc<Mutex<EpochHistory>>,
    stats: Arc<ServerStats>,
    config: ReplicationConfig,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let _ = stream.set_write_timeout(config.write_timeout);
    let hid = horizon.register(0);
    let _ = run_session(
        &mut stream,
        dir,
        &frontier,
        &horizon,
        &epochs,
        hid,
        &stats,
        &config,
        &stop,
    );
    horizon.release(hid);
    let _ = stream.shutdown(Shutdown::Both);
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    stream: &mut TcpStream,
    dir: &Path,
    frontier: &Frontier,
    horizon: &ShipHorizon,
    epochs: &Mutex<EpochHistory>,
    hid: u64,
    stats: &ServerStats,
    config: &ReplicationConfig,
    stop: &AtomicBool,
) -> Result<(), WalError> {
    // Read side runs on a clone so acks drain while the shipper blocks
    // in writes.
    let reader_stream = stream.try_clone()?;

    // ---- Handshake: wait (bounded) for the follower's Hello.
    let mut reader = FrameReader::new(reader_stream);
    let deadline = Instant::now() + Duration::from_secs(5);
    let hello = loop {
        if stop.load(Ordering::SeqCst) || Instant::now() > deadline {
            return Ok(());
        }
        match reader.poll()? {
            ReadEvent::Message(Message::Hello {
                version,
                next_lsn,
                have_state,
                epoch,
            }) => {
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    return Err(WalError::Decode("replication protocol version mismatch"));
                }
                break (version, next_lsn, have_state, epoch);
            }
            ReadEvent::Message(_) => {
                return Err(WalError::Decode("expected Hello"));
            }
            ReadEvent::Idle => continue,
            ReadEvent::Closed => return Ok(()),
        }
    };

    // ---- Divergence gate (the promotion guard). A stateful peer whose
    // log frontier runs past the birth of an epoch it never lived under
    // holds forked history — a revived old leader tailing past the
    // promotion point. It gets a typed refusal, never a silent
    // bootstrap-and-overwrite (pre-v3 peers hard-error on the unknown
    // tag, which is still a refusal). A peer claiming a *newer* epoch
    // means this server is the stale one: close without serving.
    let (peer_version, follower_lsn, have_state, peer_epoch) = hello;
    if have_state {
        let check = epochs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .check_follower(peer_epoch, follower_lsn);
        match check {
            EpochCheck::Clean => {}
            EpochCheck::Diverged { boundary_lsn } => {
                let leader_epoch = epochs.lock().unwrap_or_else(|e| e.into_inner()).current();
                let _ = send_message(
                    stream,
                    &Message::Diverged {
                        leader_epoch,
                        boundary_lsn,
                    },
                );
                return Err(WalError::Decode("follower log diverges from this timeline"));
            }
            EpochCheck::PeerAhead { .. } => {
                return Err(WalError::Decode("follower is on a newer epoch"));
            }
        }
    }
    // A v3 peer gets the full leadership history up front: in-stream
    // LeaderEpoch records only cover epochs born inside the shipped
    // stretch, and a bootstrap snapshot carries none at all.
    if peer_version >= 3 {
        let spans = epochs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans()
            .to_vec();
        send_message(stream, &Message::Epochs { spans })?;
    }

    // ---- Resume or bootstrap. The horizon entry (still at 0) keeps
    // every segment alive while we decide.
    let leader_next = frontier.now();
    let resumable = have_state && follower_lsn <= leader_next && {
        let segments = list_segments(dir)?;
        // The follower's next record must still be on disk — either
        // inside a surviving segment or exactly at the frontier.
        segments
            .first()
            .is_some_and(|&(start, _)| start <= follower_lsn)
    };
    let cursor = if resumable {
        follower_lsn
    } else {
        // Newest snapshot that actually reads back (same fallback ladder
        // as recovery).
        let snapshots = list_snapshots(dir)?;
        let chosen = snapshots
            .iter()
            .rev()
            .find(|(_, path)| read_snapshot(path).is_ok());
        let Some((lsn, path)) = chosen else {
            return Err(WalError::NoSnapshot(dir.to_path_buf()));
        };
        let bytes = std::fs::read(path)?;
        send_message(stream, &Message::Snapshot { lsn: *lsn, bytes })?;
        stats.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
        *lsn
    };
    horizon.advance(hid, cursor);

    // ---- Ack reader: drains the follower's watermark into `acked`.
    let acked = Arc::new(AtomicU64::new(cursor));
    let done = Arc::new(AtomicBool::new(false));
    let ack_thread = {
        let acked = Arc::clone(&acked);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            loop {
                if done.load(Ordering::SeqCst) {
                    break;
                }
                match reader.poll() {
                    Ok(ReadEvent::Message(Message::Ack { applied_lsn })) => {
                        acked.fetch_max(applied_lsn, Ordering::SeqCst);
                    }
                    Ok(ReadEvent::Idle) => continue,
                    // Anything else — close, garbage, a second Hello —
                    // ends the session.
                    Ok(_) | Err(_) => break,
                }
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    // ---- Ship loop. A version-2 follower gets segment frames verbatim
    // (`Blocks` — compressed blocks go out exactly as they sit on disk);
    // a version-1 follower gets decoded records re-framed (`Records`).
    let mut tailer = SegmentTailer::new(dir, cursor);
    let mut last_heartbeat: Option<Instant> = None;
    let result = loop {
        if stop.load(Ordering::SeqCst) || done.load(Ordering::SeqCst) {
            break Ok(());
        }
        horizon.advance(hid, acked.load(Ordering::SeqCst));
        let next = if peer_version >= 2 {
            tailer.poll_blocks(config.chunk_records).map(|opt| {
                opt.map(|chunk| {
                    let count = chunk.records;
                    let msg = Message::Blocks {
                        start_lsn: chunk.start_lsn,
                        count: count as u32,
                        version: chunk.segment_version,
                        frames: chunk.frames,
                    };
                    (msg, count)
                })
            })
        } else {
            tailer.poll(config.chunk_records).map(|opt| {
                opt.map(|chunk| {
                    let mut frames = Vec::new();
                    for rec in &chunk.records {
                        rec.encode_frame(&mut frames);
                    }
                    let count = chunk.records.len() as u64;
                    let msg = Message::Records {
                        start_lsn: chunk.start_lsn,
                        count: count as u32,
                        frames,
                    };
                    (msg, count)
                })
            })
        };
        match next {
            Ok(Some((msg, count))) => {
                if let Err(e) = send_message(stream, &msg) {
                    break Err(e);
                }
                stats.records_shipped.fetch_add(count, Ordering::Relaxed);
            }
            Ok(None) => {
                let due = last_heartbeat.is_none_or(|t| t.elapsed() >= config.heartbeat_interval);
                if due {
                    let hb = Message::Heartbeat {
                        leader_next_lsn: frontier.now(),
                    };
                    if let Err(e) = send_message(stream, &hb) {
                        break Err(e);
                    }
                    last_heartbeat = Some(Instant::now());
                }
                std::thread::sleep(config.poll_interval);
            }
            // A gap or interior corruption under a live session: give up
            // on this connection; the follower reconnects and
            // re-bootstraps from a snapshot.
            Err(e) => break Err(e),
        }
    };
    done.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(Shutdown::Both);
    let _ = ack_thread.join();
    result
}

#[cfg(test)]
mod tests {
    //! Wire-level version negotiation: these speak the protocol by hand
    //! (the in-tree [`crate::StandbyReplica`] always negotiates v2, so
    //! the v1 `Records` fallback is only reachable from here).

    use super::*;
    use modb_core::{
        Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
        UpdateMessage, UpdatePosition,
    };
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};
    use modb_wal::{
        decode_block_frames, decode_frames, FrameEnd, FsyncPolicy, WalOptions, SEGMENT_VERSION,
        SEGMENT_VERSION_V2,
    };

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("modb-leader-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn vehicle(id: u64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(0.0, 0.0),
                start_arc: 0.0,
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        }
    }

    /// A leader with `updates` logged records past the two registrations.
    fn leader(name: &str, updates: u64) -> (DurableDatabase, ReplicationServer) {
        let route = Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)],
        )
        .unwrap();
        let db = Database::new(
            RouteNetwork::from_routes([route]).unwrap(),
            DatabaseConfig::default(),
        );
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 512,
            ..WalOptions::default()
        };
        let durable = DurableDatabase::create(tmp(name), db, opts).unwrap();
        durable.register_moving(vehicle(1)).unwrap();
        durable.register_moving(vehicle(2)).unwrap();
        for i in 0..updates {
            let id = ObjectId(1 + i % 2);
            let msg = UpdateMessage::basic(i as f64, UpdatePosition::Arc((i % 100) as f64), 1.0);
            durable.apply_update(id, &msg).unwrap();
        }
        let config = ReplicationConfig {
            poll_interval: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(20),
            ..ReplicationConfig::default()
        };
        let server = durable.serve_replication("127.0.0.1:0", config).unwrap();
        (durable, server)
    }

    fn dial(server: &ReplicationServer, version: u32) -> (TcpStream, FrameReader) {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut tx = stream.try_clone().unwrap();
        send_message(
            &mut tx,
            &Message::Hello {
                version,
                next_lsn: 0,
                have_state: false,
                epoch: 0,
            },
        )
        .unwrap();
        (tx, FrameReader::new(stream))
    }

    fn next_message(reader: &mut FrameReader) -> Option<Message> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match reader.poll() {
                Ok(ReadEvent::Message(m)) => return Some(m),
                Ok(ReadEvent::Idle) if Instant::now() < deadline => continue,
                Ok(ReadEvent::Idle) => panic!("timed out waiting for a message"),
                Ok(ReadEvent::Closed) | Err(_) => return None,
            }
        }
    }

    /// Drains the stream until `expected` records arrived, returning the
    /// decoded records; `assert_shape` sees every data message.
    fn drain(
        reader: &mut FrameReader,
        expected: u64,
        mut assert_shape: impl FnMut(&Message) -> Vec<modb_wal::WalRecord>,
    ) -> Vec<modb_wal::WalRecord> {
        let mut records = Vec::new();
        while (records.len() as u64) < expected {
            let msg = next_message(reader).expect("leader closed before the stream caught up");
            match msg {
                Message::Heartbeat { .. } | Message::Epochs { .. } => continue,
                Message::Snapshot { .. } => panic!("second bootstrap"),
                ref data => records.extend(assert_shape(data)),
            }
        }
        assert_eq!(records.len() as u64, expected, "no over-delivery");
        records
    }

    #[test]
    fn v1_hello_is_served_decoded_records() {
        let (durable, server) = leader("v1-records", 38);
        let total = 2 + 38;
        let (_tx, mut reader) = dial(&server, 1);
        let Some(Message::Snapshot { lsn: 0, .. }) = next_message(&mut reader) else {
            panic!("expected the bootstrap snapshot at lsn 0");
        };
        let records = drain(&mut reader, total, |msg| {
            let Message::Records { count, frames, .. } = msg else {
                panic!("v1 follower must never see {msg:?}");
            };
            let (recs, _, end) = decode_frames(frames);
            assert!(matches!(end, FrameEnd::Clean));
            assert_eq!(recs.len(), *count as usize);
            recs
        });
        assert_eq!(records.len() as u64, durable.wal().next_lsn());
        server.shutdown();
    }

    #[test]
    fn v2_hello_is_served_verbatim_blocks() {
        let (durable, server) = leader("v2-blocks", 38);
        let total = 2 + 38;
        let (_tx, mut reader) = dial(&server, PROTOCOL_VERSION);
        // A v3 peer is told the leadership history before anything else.
        let Some(Message::Epochs { spans }) = next_message(&mut reader) else {
            panic!("expected the epoch history first");
        };
        assert_eq!(spans.len(), 1, "a never-promoted leader is on genesis");
        let Some(Message::Snapshot { lsn: 0, .. }) = next_message(&mut reader) else {
            panic!("expected the bootstrap snapshot at lsn 0");
        };
        let records = drain(&mut reader, total, |msg| {
            let Message::Blocks {
                count,
                version,
                frames,
                ..
            } = msg
            else {
                panic!("v2 follower must never see {msg:?}");
            };
            let (recs, _, end) = match *version {
                SEGMENT_VERSION => decode_frames(frames),
                SEGMENT_VERSION_V2 => decode_block_frames(frames),
                other => panic!("unknown segment version {other}"),
            };
            assert!(matches!(end, FrameEnd::Clean));
            assert_eq!(recs.len(), *count as usize);
            recs
        });
        assert_eq!(records.len() as u64, durable.wal().next_lsn());
        server.shutdown();
    }

    #[test]
    fn unknown_hello_version_is_rejected() {
        let (_durable, server) = leader("v3-reject", 4);
        for version in [0, PROTOCOL_VERSION + 1, u32::MAX] {
            let (_tx, mut reader) = dial(&server, version);
            assert!(
                next_message(&mut reader).is_none(),
                "version {version} must be disconnected, not served"
            );
        }
        server.shutdown();
    }
}
