//! The warm standby: a [`StandbyReplica`] connects to a leader, replays
//! its WAL stream into a local [`SharedDatabase`] (through the same
//! [`modb_wal::apply_record`] seam recovery uses), and persists what it
//! applies to its own durability directory so a restart resumes from the
//! local snapshot + cursor instead of re-bootstrapping.
//!
//! State machine (one worker thread):
//!
//! ```text
//! Connecting ──connect──▶ Bootstrapping ──Snapshot──▶ CatchingUp
//!     ▲                        │ (skipped when local state resumes)
//!     │                        ▼
//!     └──── disconnect ──── CatchingUp ◀──lag──▶ Steady
//! ```
//!
//! Every hazard resolves to "reject and re-sync, never apply a torn
//! record": a `Records` run is decoded with [`modb_wal::decode_frames`],
//! a `Blocks` run (protocol v2: verbatim segment frames, decompressed
//! here on apply) with the per-version path recovery uses, and either is
//! applied only if it is clean, complete, and contiguous with the
//! applied watermark; duplicates below the watermark are skipped
//! (idempotent re-delivery); anything else ends the session and the next
//! `Hello` renegotiates from the watermark.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modb_core::{Database, DatabaseConfig};
use modb_routes::{Route, RouteNetwork};
use modb_wal::snapshot::snapshot_file_name;
use modb_wal::{
    apply_record, decode_block_frames, decode_frames, list_segments, list_snapshots, read_snapshot,
    write_snapshot, EpochHistory, FrameEnd, SharedWal, WalError, WalOptions, WalRecord, WalWriter,
    DEFAULT_SNAPSHOT_RETENTION, SEGMENT_VERSION, SEGMENT_VERSION_V2,
};

use crate::durable::DurableDatabase;
use crate::net::{QueryServer, QueryServerConfig};
use crate::query_engine::QueryEngine;
use crate::replication::horizon::ShipHorizon;
use crate::replication::leader::{serve_replication_from, Frontier, ReplicationServer};
use crate::replication::protocol::{
    send_message, FrameReader, Message, ReadEvent, PROTOCOL_VERSION,
};
use crate::replication::ReplicationConfig;
use crate::shared::SharedDatabase;

/// Tuning for a [`StandbyReplica`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Options for the replica's own log (what it applies, it persists).
    pub wal: WalOptions,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Socket read timeout (the granularity at which shutdown and
    /// forced reconnects are noticed).
    pub read_timeout: Duration,
    /// Take a local snapshot every this many applied records (0 = only
    /// the bootstrap snapshot). Local snapshots bound restart replay and
    /// feed the local compaction pass.
    pub snapshot_every: u64,
    /// Snapshot retention for the local compaction pass.
    pub snapshot_retention: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            wal: WalOptions::default(),
            reconnect_backoff: Duration::from_millis(25),
            read_timeout: Duration::from_millis(10),
            snapshot_every: 0,
            snapshot_retention: DEFAULT_SNAPSHOT_RETENTION,
        }
    }
}

/// Where a replica is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPhase {
    /// Not connected; dialing the leader.
    Connecting,
    /// Connected without local state; waiting for a bootstrap snapshot.
    Bootstrapping,
    /// Applying a backlog; the watermark is behind the leader frontier.
    CatchingUp,
    /// At (or within one heartbeat of) the leader frontier.
    Steady,
    /// Terminal: the upstream refused this replica's log tail as forked
    /// history (a typed `Diverged` answer to the handshake). The worker
    /// has stopped; see [`StandbyReplica::divergence`] for the boundary.
    /// The local state is intact but must be rebuilt (fresh directory)
    /// before it can follow again — never silently overwritten.
    Diverged,
    /// Terminal: this replica was promoted to a leader
    /// ([`StandbyReplica::promote`]); the watermark now tracks the local
    /// WAL frontier.
    Promoted,
}

impl ReplicaPhase {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => ReplicaPhase::Connecting,
            1 => ReplicaPhase::Bootstrapping,
            2 => ReplicaPhase::CatchingUp,
            4 => ReplicaPhase::Diverged,
            5 => ReplicaPhase::Promoted,
            _ => ReplicaPhase::Steady,
        }
    }
}

impl fmt::Display for ReplicaPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplicaPhase::Connecting => "connecting",
            ReplicaPhase::Bootstrapping => "bootstrapping",
            ReplicaPhase::CatchingUp => "catching-up",
            ReplicaPhase::Steady => "steady",
            ReplicaPhase::Diverged => "diverged",
            ReplicaPhase::Promoted => "promoted",
        };
        f.write_str(s)
    }
}

/// Why an upstream refused this replica: the typed payload of the
/// `Diverged` handshake answer, kept for the operator (and the failover
/// coordinator) to inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceInfo {
    /// The refusing upstream's leadership epoch.
    pub leader_epoch: u64,
    /// First LSN of the timeline this replica never saw — everything it
    /// holds at or past this LSN is forked history.
    pub boundary_lsn: u64,
    /// This replica's log frontier at refusal time (how deep the fork
    /// runs: `local_next_lsn − boundary_lsn` records).
    pub local_next_lsn: u64,
}

#[derive(Debug, Default)]
struct ReplicaStats {
    connects: AtomicU64,
    bootstraps: AtomicU64,
    resyncs: AtomicU64,
    rejected_messages: AtomicU64,
    records_applied: AtomicU64,
    records_skipped: AtomicU64,
    snapshots_taken: AtomicU64,
}

/// Point-in-time view of a replica's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatsSnapshot {
    /// The applied watermark: every record with `lsn <` this is in the
    /// local database (and local log).
    pub applied_lsn: u64,
    /// The leader frontier from the last heartbeat (0 before the first).
    pub leader_lsn: u64,
    /// `leader_lsn − applied_lsn` (saturating): staleness in records.
    pub lag_records: u64,
    /// Current lifecycle phase.
    pub phase: ReplicaPhase,
    /// Successful connections.
    pub connects: u64,
    /// Full snapshot bootstraps (0 after a warm restart that resumed).
    pub bootstraps: u64,
    /// Sessions ended early to renegotiate (fault or protocol reject).
    pub resyncs: u64,
    /// Messages rejected without being applied (torn runs, bad CRCs
    /// surface as resyncs; this counts semantic rejects).
    pub rejected_messages: u64,
    /// Records applied to the local state.
    pub records_applied: u64,
    /// Duplicate records below the watermark skipped idempotently.
    pub records_skipped: u64,
    /// Local snapshots taken past bootstrap.
    pub snapshots_taken: u64,
}

impl fmt::Display for ReplicaStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replica: {} @ lsn {} (leader {}, lag {}), {} connect(s), \
             {} bootstrap(s), {} resync(s), {} applied / {} skipped / {} rejected",
            self.phase,
            self.applied_lsn,
            self.leader_lsn,
            self.lag_records,
            self.connects,
            self.bootstraps,
            self.resyncs,
            self.records_applied,
            self.records_skipped,
            self.rejected_messages,
        )
    }
}

#[derive(Debug)]
struct Shared {
    applied: Mutex<u64>,
    applied_cv: Condvar,
    leader_lsn: AtomicU64,
    phase: AtomicU8,
    stop: AtomicBool,
    force_reconnect: AtomicUsize,
    stats: ReplicaStats,
    /// When the replica first observed itself behind the upstream
    /// frontier and has stayed behind since; `None` while caught up.
    /// `behind_since.elapsed()` is the `Δ` of the `2·v_max·Δ` staleness
    /// widening on follower-served answers.
    behind_since: Mutex<Option<Instant>>,
    /// Which upstream the worker dials; [`StandbyReplica::repoint`]
    /// swaps it so a surviving follower can chase a promoted standby
    /// without re-bootstrapping.
    addr: Mutex<String>,
    /// The leadership-epoch history of the local log, shared with the
    /// re-shipping server so a post-promotion handshake sees the new
    /// epoch.
    epochs: Arc<Mutex<EpochHistory>>,
    /// Set by [`StandbyReplica::promote`]: the local WAL this node now
    /// leads. Once set, the watermark, lag, and frontier views all
    /// delegate here — every live consumer of this `Shared` (the
    /// follower query front-end, the re-shipping `Frontier`, watches)
    /// tracks the new leader's log without restarting.
    promoted: Mutex<Option<SharedWal>>,
    /// The typed refusal that ended the worker, when the upstream
    /// declared this replica's tail forked.
    diverged: Mutex<Option<DivergenceInfo>>,
}

impl Shared {
    fn set_applied(&self, lsn: u64) {
        let mut g = self.applied.lock().unwrap_or_else(|e| e.into_inner());
        *g = lsn;
        self.applied_cv.notify_all();
        drop(g);
        self.note_progress(lsn);
    }

    fn promoted_wal(&self) -> Option<SharedWal> {
        self.promoted
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn applied(&self) -> u64 {
        if let Some(wal) = self.promoted_wal() {
            return wal.next_lsn();
        }
        *self.applied.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_phase(&self, phase: ReplicaPhase) {
        self.phase.store(phase as u8, Ordering::SeqCst);
    }

    /// Re-evaluates the lag clock against the last known upstream
    /// frontier: caught up clears it, falling behind starts it (once —
    /// the clock measures *continuous* trailing, not per-record lag).
    fn note_progress(&self, applied: u64) {
        let frontier = self.leader_lsn.load(Ordering::SeqCst);
        let mut g = self.behind_since.lock().unwrap_or_else(|e| e.into_inner());
        if applied >= frontier {
            *g = None;
        } else if g.is_none() {
            *g = Some(Instant::now());
        }
    }

    fn lag(&self) -> Duration {
        // A promoted node is the frontier — there is nothing upstream to
        // trail, so its served answers carry no staleness widening.
        if self.promoted_wal().is_some() {
            return Duration::ZERO;
        }
        self.behind_since
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|t| t.elapsed())
            .unwrap_or(Duration::ZERO)
    }

    fn wait_for_lsn(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        // Post-promotion the watermark is the WAL frontier, which no
        // condvar tracks — poll it in short slices instead.
        if let Some(wal) = self.promoted_wal() {
            loop {
                if wal.next_lsn() >= lsn {
                    return true;
                }
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut g = self.applied.lock().unwrap_or_else(|e| e.into_inner());
        while *g < lsn {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (ng, _timeout) = self
                .applied_cv
                .wait_timeout(g, left)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
        true
    }
}

/// A cheap, cloneable view of a replica's replication progress, detached
/// from the [`StandbyReplica`] handle so the follower's query front-end
/// ([`StandbyReplica::serve_queries`]) can consult the watermark from its
/// session threads.
#[derive(Debug, Clone)]
pub struct ReplicaWatch {
    shared: Arc<Shared>,
}

impl ReplicaWatch {
    /// The applied watermark (see [`StandbyReplica::applied_lsn`]).
    pub fn applied_lsn(&self) -> u64 {
        self.shared.applied()
    }

    /// The upstream frontier from the last heartbeat (0 before the
    /// first).
    pub fn leader_lsn(&self) -> u64 {
        self.shared.leader_lsn.load(Ordering::SeqCst)
    }

    /// How long the replica has continuously trailed the upstream
    /// frontier (zero while caught up) — the `Δ` that widens served
    /// answers by `2·v_max·Δ`.
    pub fn lag(&self) -> Duration {
        self.shared.lag()
    }

    /// Blocks until the applied watermark reaches `lsn` or the timeout
    /// elapses; `true` when reached.
    pub fn wait_for_lsn(&self, lsn: u64, timeout: Duration) -> bool {
        self.shared.wait_for_lsn(lsn, timeout)
    }
}

/// A warm standby follower of one leader. See the module docs for the
/// state machine; see [`crate::DurableDatabase::serve_replication`] for
/// the other end.
#[derive(Debug)]
pub struct StandbyReplica {
    db: SharedDatabase,
    dir: PathBuf,
    config: ReplicaConfig,
    shared: Arc<Shared>,
    horizon: Arc<ShipHorizon>,
    worker: Option<JoinHandle<()>>,
}

impl StandbyReplica {
    /// Opens (or resumes) a replica in `dir` following the leader at
    /// `addr`. A directory holding a usable snapshot is recovered
    /// locally first — the session then resumes from the recovered
    /// watermark instead of re-bootstrapping. A fresh directory starts
    /// empty and waits for the leader's bootstrap snapshot.
    ///
    /// # Errors
    ///
    /// Local recovery failures (see [`modb_wal::recover`]); directory
    /// creation failures.
    pub fn open(
        dir: impl Into<PathBuf>,
        addr: impl Into<String>,
        config: ReplicaConfig,
    ) -> Result<Self, WalError> {
        let dir = dir.into();
        let addr = addr.into();
        std::fs::create_dir_all(&dir)?;
        let have_state = !list_snapshots(&dir)?.is_empty();
        let (db, wal, applied) = if have_state {
            let recovered = modb_wal::recover(&dir)?;
            let writer = WalWriter::resume(&dir, config.wal, recovered.report.next_lsn)?;
            (recovered.database, Some(writer), recovered.report.next_lsn)
        } else {
            (placeholder_database(), None, 0)
        };
        let db = SharedDatabase::new(db);
        let epochs = Arc::new(Mutex::new(EpochHistory::load(&dir)?));
        let shared = Arc::new(Shared {
            applied: Mutex::new(applied),
            applied_cv: Condvar::new(),
            leader_lsn: AtomicU64::new(0),
            phase: AtomicU8::new(ReplicaPhase::Connecting as u8),
            stop: AtomicBool::new(false),
            force_reconnect: AtomicUsize::new(0),
            stats: ReplicaStats::default(),
            behind_since: Mutex::new(None),
            addr: Mutex::new(addr),
            epochs,
            promoted: Mutex::new(None),
            diverged: Mutex::new(None),
        });
        let horizon = Arc::new(ShipHorizon::new());
        let worker = {
            let db = db.clone();
            let shared = Arc::clone(&shared);
            let dir = dir.clone();
            let horizon = Arc::clone(&horizon);
            let config = config.clone();
            std::thread::spawn(move || {
                Worker {
                    dir,
                    config,
                    db,
                    shared,
                    horizon,
                    wal,
                }
                .run()
            })
        };
        Ok(StandbyReplica {
            db,
            dir,
            config,
            shared,
            horizon,
            worker: Some(worker),
        })
    }

    /// The replica's queryable database handle. Reads here see the
    /// applied watermark — a position answer is as stale as the
    /// replication lag, which widens the paper's deviation bound by at
    /// most `D·dt` (DESIGN.md §10).
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The applied watermark: every record with `lsn <` this is in the
    /// local state.
    pub fn applied_lsn(&self) -> u64 {
        self.shared.applied()
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> ReplicaPhase {
        ReplicaPhase::from_u8(self.shared.phase.load(Ordering::SeqCst))
    }

    /// Blocks until the applied watermark reaches `lsn` or the timeout
    /// elapses; `true` when reached.
    pub fn wait_for_lsn(&self, lsn: u64, timeout: Duration) -> bool {
        self.shared.wait_for_lsn(lsn, timeout)
    }

    /// A detached, cloneable view of this replica's progress (watermark,
    /// upstream frontier, lag clock) for the query front-end's session
    /// threads.
    pub fn watch(&self) -> ReplicaWatch {
        ReplicaWatch {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The horizon of this replica's own downstream followers (empty
    /// unless [`StandbyReplica::serve_replication`] is running) — the
    /// barrier its local compaction pass honors.
    pub fn ship_horizon(&self) -> &Arc<ShipHorizon> {
        &self.horizon
    }

    /// The replica's durability directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Starts a query front-end on this follower: remote clients get the
    /// same CRC-framed protocol a leader serves, with three follower
    /// twists (DESIGN.md §15). A `Batch` whose read-your-writes token
    /// outruns the applied watermark waits up to
    /// [`QueryServerConfig::stale_deadline`] and then gets a typed
    /// `Stale { applied, required }` instead of a hang; the coverage
    /// watermark advances only to an applied LSN read *before* the epoch
    /// shadow swap (so a token never claims a snapshot it is not in);
    /// and every served answer is widened by the lag-derived
    /// `2·v_max·Δ` term, so a stale follower's imprecision is priced
    /// honestly (§3.3 of the paper). `engine` must be built on this
    /// replica's database ([`StandbyReplica::database`]).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_queries(
        &self,
        engine: Arc<QueryEngine>,
        addr: impl std::net::ToSocketAddrs,
        config: QueryServerConfig,
    ) -> Result<QueryServer, WalError> {
        crate::net::serve_follower_queries(
            engine,
            self.watch(),
            Arc::clone(&self.horizon),
            addr,
            config,
        )
    }

    /// Re-ships this replica's received WAL to downstream followers —
    /// the chaining seam. The local log holds verbatim copies of the
    /// leader's records (apply-before-log), so the same
    /// [`modb_wal::SegmentTailer`] machinery the leader uses tails it
    /// here; the shipped frontier is this replica's *applied* watermark,
    /// and downstream acknowledgements pin the local compaction pass
    /// through [`StandbyReplica::ship_horizon`]. A bootstrap (timeline
    /// replacement) wipes local segments regardless — downstream
    /// sessions then error out and re-bootstrap from the new snapshot,
    /// exactly like a follower whose cursor fell behind compaction.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_replication(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: ReplicationConfig,
    ) -> Result<ReplicationServer, WalError> {
        let shared = Arc::clone(&self.shared);
        let frontier = Frontier::new(move || shared.applied());
        serve_replication_from(
            self.dir.clone(),
            frontier,
            Arc::clone(&self.horizon),
            Arc::clone(&self.shared.epochs),
            addr,
            config,
        )
    }

    /// Drops the current session (if any); the worker reconnects and
    /// renegotiates from the applied watermark. Test hook for
    /// disconnect-fault injection, harmless in production.
    pub fn force_reconnect(&self) {
        self.shared.force_reconnect.fetch_add(1, Ordering::SeqCst);
    }

    /// Swaps the upstream this replica follows and drops the current
    /// session; the worker re-dials `new_addr` and resumes from the
    /// applied watermark (the promotee's log is a byte-identical copy of
    /// the stretch this replica already applied, so the handshake
    /// resumes instead of re-bootstrapping). The repoint half of a
    /// failover: survivors chase the promoted standby.
    pub fn repoint(&self, new_addr: impl Into<String>) {
        *self.shared.addr.lock().unwrap_or_else(|e| e.into_inner()) = new_addr.into();
        self.force_reconnect();
    }

    /// The typed refusal that ended replication, when the upstream
    /// declared this replica's log tail forked history (phase
    /// [`ReplicaPhase::Diverged`]).
    pub fn divergence(&self) -> Option<DivergenceInfo> {
        *self
            .shared
            .diverged
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The leadership epoch of the local log (1 until a promotion
    /// somewhere upstream has been observed).
    pub fn epoch(&self) -> u64 {
        self.shared
            .epochs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .current()
    }

    /// Promotes this standby to a full leader — the failover tentpole.
    ///
    /// The apply loop is stopped at the applied watermark (applies are
    /// atomic per shipped run, so the watermark lands on a run
    /// boundary), a new leadership epoch starting at that watermark is
    /// persisted to the epoch sidecar and sealed into the local WAL as a
    /// [`modb_wal::WalRecord::LeaderEpoch`] record, and the replica's
    /// database, log, and ship horizon are rewrapped as a
    /// [`DurableDatabase`] that accepts acked ingest.
    ///
    /// Everything chained off this replica keeps working across the
    /// switch: a running [`StandbyReplica::serve_replication`] keeps
    /// shipping (its frontier now tracks the WAL, its epoch state shows
    /// the new epoch, and downstream followers repointed here resume
    /// from their applied LSN); a running
    /// [`StandbyReplica::serve_queries`] front-end keeps answering (its
    /// watch now reports the WAL frontier with zero lag — the promotee
    /// is the new session-token source); and the shared ship horizon
    /// keeps pinning compaction for downstream acks. A revived old
    /// leader that tails past the promotion point is refused with a
    /// typed `Diverged` answer, never silently overwritten.
    ///
    /// # Errors
    ///
    /// [`WalError::NoSnapshot`] when the replica never completed a
    /// bootstrap (there is no state to lead from); I/O failures
    /// persisting the epoch or sealing the log.
    pub fn promote(mut self) -> Result<DurableDatabase, WalError> {
        // Stop the apply loop first: the watermark is final after this.
        self.stop_and_join();
        if list_snapshots(&self.dir)?.is_empty() {
            return Err(WalError::NoSnapshot(self.dir.clone()));
        }
        let applied = self.shared.applied();
        // The worker owned the writer and dropped it on exit; reclaim
        // the log at the watermark (recovery already ran at open, and
        // the worker never logs past what it applies).
        let mut writer = WalWriter::resume(&self.dir, self.config.wal, applied)?;
        // Epoch first, then the seal record: a crash in between leaves
        // the sidecar authoritative and the log merely missing the
        // in-stream announcement (re-sent to v3 followers at handshake).
        let epoch = {
            let mut epochs = self.shared.epochs.lock().unwrap_or_else(|e| e.into_inner());
            let epoch = epochs.begin(applied)?;
            epochs.save(&self.dir)?;
            epoch
        };
        writer.append(&WalRecord::LeaderEpoch { epoch })?;
        writer.sync()?;
        let wal = SharedWal::new(writer);
        // Flip every live view of this replica over to the new log: the
        // watermark, lag clock, and re-ship frontier all delegate to the
        // WAL from here on.
        *self
            .shared
            .promoted
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(wal.clone());
        self.shared.set_applied(wal.next_lsn()); // wake condvar waiters
        self.shared.set_phase(ReplicaPhase::Promoted);
        Ok(DurableDatabase::from_parts(
            self.db.clone(),
            wal,
            self.dir.clone(),
            Arc::clone(&self.horizon),
            Arc::clone(&self.shared.epochs),
        ))
    }

    /// Current progress counters.
    pub fn stats(&self) -> ReplicaStatsSnapshot {
        let applied_lsn = self.shared.applied();
        let leader_lsn = self.shared.leader_lsn.load(Ordering::SeqCst);
        let s = &self.shared.stats;
        ReplicaStatsSnapshot {
            applied_lsn,
            leader_lsn,
            lag_records: leader_lsn.saturating_sub(applied_lsn),
            phase: self.phase(),
            connects: s.connects.load(Ordering::Relaxed),
            bootstraps: s.bootstraps.load(Ordering::Relaxed),
            resyncs: s.resyncs.load(Ordering::Relaxed),
            rejected_messages: s.rejected_messages.load(Ordering::Relaxed),
            records_applied: s.records_applied.load(Ordering::Relaxed),
            records_skipped: s.records_skipped.load(Ordering::Relaxed),
            snapshots_taken: s.snapshots_taken.load(Ordering::Relaxed),
        }
    }

    /// Stops the worker, closes the session, and returns the final
    /// stats. The local directory keeps the applied state — a later
    /// [`StandbyReplica::open`] resumes from it.
    pub fn shutdown(mut self) -> ReplicaStatsSnapshot {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StandbyReplica {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A replica with no state yet: an empty network, default config. The
/// bootstrap snapshot replaces all of it (network, config, objects).
fn placeholder_database() -> Database {
    let network = RouteNetwork::from_routes(Vec::<Route>::new()).expect("empty network is valid");
    Database::new(network, DatabaseConfig::default())
}

/// Why a session ended (all roads lead back to Connecting — except
/// divergence, which is terminal).
enum SessionEnd {
    /// Stop flag observed — unwind the worker.
    Shutdown,
    /// Connection closed or forced; reconnect and resume.
    Disconnected,
    /// Protocol violation, torn run, or local apply/log failure —
    /// reconnect and renegotiate (counted as a resync).
    Resync,
    /// The upstream refused this replica's log tail as forked history.
    /// Reconnecting would get the same answer, so the worker exits.
    Diverged,
}

struct Worker {
    dir: PathBuf,
    config: ReplicaConfig,
    db: SharedDatabase,
    shared: Arc<Shared>,
    /// Downstream followers chained off this replica; their lowest ack
    /// is the barrier the local compaction pass must not cross.
    horizon: Arc<ShipHorizon>,
    wal: Option<WalWriter>,
}

impl Worker {
    fn run(mut self) {
        let mut last_snapshot_lsn = self.shared.applied();
        while !self.shared.stop.load(Ordering::SeqCst) {
            self.shared.set_phase(ReplicaPhase::Connecting);
            // Re-read the dial target every attempt: a repoint swaps it
            // while the worker runs, and the next connect chases the new
            // upstream (the promoted standby) from the applied watermark.
            let addr = self
                .shared
                .addr
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            let stream = match std::net::TcpStream::connect(&addr) {
                Ok(s) => s,
                Err(_) => {
                    self.backoff();
                    continue;
                }
            };
            self.shared.stats.connects.fetch_add(1, Ordering::Relaxed);
            match self.session(stream, &mut last_snapshot_lsn) {
                SessionEnd::Shutdown => break,
                SessionEnd::Disconnected => self.backoff(),
                SessionEnd::Resync => {
                    self.shared.stats.resyncs.fetch_add(1, Ordering::Relaxed);
                    self.backoff();
                }
                SessionEnd::Diverged => break,
            }
        }
    }

    fn backoff(&self) {
        // Sliced sleep so shutdown is prompt even with long backoffs.
        let deadline = Instant::now() + self.config.reconnect_backoff;
        while Instant::now() < deadline && !self.shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn session(&mut self, stream: std::net::TcpStream, last_snapshot_lsn: &mut u64) -> SessionEnd {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let mut tx = match stream.try_clone() {
            Ok(tx) => tx,
            Err(_) => return SessionEnd::Disconnected,
        };
        let reconnect_epoch = self.shared.force_reconnect.load(Ordering::SeqCst);
        let hello = Message::Hello {
            version: PROTOCOL_VERSION,
            next_lsn: self.shared.applied(),
            have_state: self.wal.is_some(),
            epoch: self
                .shared
                .epochs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .current(),
        };
        if send_message(&mut tx, &hello).is_err() {
            return SessionEnd::Disconnected;
        }
        self.shared.set_phase(if self.wal.is_some() {
            ReplicaPhase::CatchingUp
        } else {
            ReplicaPhase::Bootstrapping
        });
        let mut reader = FrameReader::new(stream);
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return SessionEnd::Shutdown;
            }
            if self.shared.force_reconnect.load(Ordering::SeqCst) != reconnect_epoch {
                return SessionEnd::Disconnected;
            }
            match reader.poll() {
                Ok(ReadEvent::Message(msg)) => match self.handle(msg, &mut tx, last_snapshot_lsn) {
                    Ok(()) => {}
                    Err(end) => return end,
                },
                Ok(ReadEvent::Idle) => continue,
                Ok(ReadEvent::Closed) => return SessionEnd::Disconnected,
                // Framing lost (bad length / CRC / undecodable message):
                // drop the connection and renegotiate.
                Err(_) => return SessionEnd::Resync,
            }
        }
    }

    fn handle(
        &mut self,
        msg: Message,
        tx: &mut std::net::TcpStream,
        last_snapshot_lsn: &mut u64,
    ) -> Result<(), SessionEnd> {
        match msg {
            Message::Snapshot { lsn, bytes } => self.bootstrap(lsn, &bytes, tx, last_snapshot_lsn),
            Message::Records {
                start_lsn,
                count,
                frames,
            } => self.apply_run(start_lsn, count, &frames, tx, last_snapshot_lsn),
            Message::Blocks {
                start_lsn,
                count,
                version,
                frames,
            } => self.apply_blocks(start_lsn, count, version, &frames, tx, last_snapshot_lsn),
            Message::Heartbeat { leader_next_lsn } => {
                self.shared
                    .leader_lsn
                    .store(leader_next_lsn, Ordering::SeqCst);
                let applied = self.shared.applied();
                self.shared.note_progress(applied);
                if self.wal.is_some() {
                    self.shared.set_phase(if applied >= leader_next_lsn {
                        ReplicaPhase::Steady
                    } else {
                        ReplicaPhase::CatchingUp
                    });
                }
                self.ack(tx, applied)
            }
            Message::Diverged {
                leader_epoch,
                boundary_lsn,
            } => {
                // The upstream proved this replica's tail belongs to a
                // dead timeline. Record the typed refusal and stop: the
                // local state is preserved for inspection, never
                // silently overwritten.
                *self
                    .shared
                    .diverged
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()) = Some(DivergenceInfo {
                    leader_epoch,
                    boundary_lsn,
                    local_next_lsn: self.shared.applied(),
                });
                self.shared.set_phase(ReplicaPhase::Diverged);
                Err(SessionEnd::Diverged)
            }
            Message::Epochs { spans } => {
                // The upstream's full epoch history, sent right after
                // the handshake admitted us — which already proved our
                // log is a prefix of the upstream's, so adopting its
                // history wholesale is safe (and the only way a
                // bootstrap learns epochs older than its snapshot).
                let Ok(history) = EpochHistory::from_spans(spans) else {
                    self.reject();
                    return Err(SessionEnd::Resync);
                };
                let mut epochs = self.shared.epochs.lock().unwrap_or_else(|e| e.into_inner());
                *epochs = history;
                if epochs.save(&self.dir).is_err() {
                    self.reject();
                    return Err(SessionEnd::Resync);
                }
                Ok(())
            }
            // Leaders never send Hello or Ack.
            Message::Hello { .. } | Message::Ack { .. } => {
                self.reject();
                Err(SessionEnd::Resync)
            }
        }
    }

    fn ack(&self, tx: &mut std::net::TcpStream, applied_lsn: u64) -> Result<(), SessionEnd> {
        send_message(tx, &Message::Ack { applied_lsn }).map_err(|_| SessionEnd::Disconnected)
    }

    fn reject(&self) {
        self.shared
            .stats
            .rejected_messages
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Installs a bootstrap snapshot: validate, persist atomically, wipe
    /// the stale local log, restart the local writer at the snapshot
    /// LSN, and swap the in-memory database under the shared handle.
    fn bootstrap(
        &mut self,
        lsn: u64,
        bytes: &[u8],
        tx: &mut std::net::TcpStream,
        last_snapshot_lsn: &mut u64,
    ) -> Result<(), SessionEnd> {
        let tmp = self.dir.join("incoming.snap.tmp");
        let install = (|| -> Result<Database, WalError> {
            std::fs::write(&tmp, bytes)?;
            // The snapshot file self-validates (magic, version, CRC,
            // full decode) before anything local is disturbed.
            let (db, embedded_lsn) = read_snapshot(&tmp)?;
            if embedded_lsn != lsn {
                return Err(WalError::Decode("snapshot lsn does not match message"));
            }
            // Local log and snapshots describe a dead timeline now.
            self.wal = None;
            for (_, path) in list_segments(&self.dir)? {
                std::fs::remove_file(path)?;
            }
            for (_, path) in list_snapshots(&self.dir)? {
                std::fs::remove_file(path)?;
            }
            std::fs::rename(&tmp, self.dir.join(snapshot_file_name(lsn)))?;
            self.wal = Some(WalWriter::resume(&self.dir, self.config.wal, lsn)?);
            Ok(db)
        })();
        let db = match install {
            Ok(db) => db,
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.reject();
                return Err(SessionEnd::Resync);
            }
        };
        self.db.replace(db);
        self.shared.set_applied(lsn);
        *last_snapshot_lsn = lsn;
        self.shared.stats.bootstraps.fetch_add(1, Ordering::Relaxed);
        self.shared.set_phase(ReplicaPhase::CatchingUp);
        self.ack(tx, lsn)
    }

    /// Applies one `Records` run: all-or-nothing validation, then
    /// record-by-record apply-before-log, skipping the watermark overlap.
    fn apply_run(
        &mut self,
        start_lsn: u64,
        count: u32,
        frames: &[u8],
        tx: &mut std::net::TcpStream,
        last_snapshot_lsn: &mut u64,
    ) -> Result<(), SessionEnd> {
        let (records, _clean, end) = decode_frames(frames);
        if !matches!(end, FrameEnd::Clean) || records.len() != count as usize {
            // A torn or short run is never applied, not even partially.
            self.reject();
            return Err(SessionEnd::Resync);
        }
        self.apply_records(start_lsn, records, tx, last_snapshot_lsn)
    }

    /// Applies one `Blocks` run: the frames are verbatim segment bytes,
    /// so they decode through the same per-version path recovery uses
    /// (v2 blocks decompress here, on apply). Wire chunks are whole
    /// frames — a torn tail is not a crash artifact but corruption in
    /// flight that slipped past the CRC, so it rejects the run.
    fn apply_blocks(
        &mut self,
        start_lsn: u64,
        count: u32,
        version: u32,
        frames: &[u8],
        tx: &mut std::net::TcpStream,
        last_snapshot_lsn: &mut u64,
    ) -> Result<(), SessionEnd> {
        let (records, _clean, end) = match version {
            SEGMENT_VERSION => decode_frames(frames),
            SEGMENT_VERSION_V2 => decode_block_frames(frames),
            _ => {
                self.reject();
                return Err(SessionEnd::Resync);
            }
        };
        if !matches!(end, FrameEnd::Clean) || records.len() != count as usize {
            self.reject();
            return Err(SessionEnd::Resync);
        }
        self.apply_records(start_lsn, records, tx, last_snapshot_lsn)
    }

    /// The shared tail of both run shapes: contiguity check against the
    /// watermark, then record-by-record apply-before-log with idempotent
    /// overlap skipping.
    fn apply_records(
        &mut self,
        start_lsn: u64,
        records: Vec<WalRecord>,
        tx: &mut std::net::TcpStream,
        last_snapshot_lsn: &mut u64,
    ) -> Result<(), SessionEnd> {
        let Some(wal) = self.wal.as_mut() else {
            // Records before a bootstrap snapshot: protocol desync.
            self.reject();
            return Err(SessionEnd::Resync);
        };
        let mut applied = self.shared.applied();
        if start_lsn > applied {
            // A gap would desynchronize the watermark from the stream.
            self.reject();
            return Err(SessionEnd::Resync);
        }
        for (i, rec) in records.into_iter().enumerate() {
            let lsn = start_lsn + i as u64;
            if lsn < applied {
                // Watermark overlap (duplicate delivery): already
                // applied and logged; skipping is the idempotent path.
                self.shared
                    .stats
                    .records_skipped
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // An in-stream leadership change: fold it into the local
            // epoch history *before* logging, so a restart can never
            // present a stale epoch alongside an advanced frontier.
            if let WalRecord::LeaderEpoch { epoch } = &rec {
                let mut epochs = self.shared.epochs.lock().unwrap_or_else(|e| e.into_inner());
                match epochs.observe(*epoch, lsn) {
                    Ok(true) => {
                        if epochs.save(&self.dir).is_err() {
                            self.shared.set_applied(applied);
                            return Err(SessionEnd::Resync);
                        }
                    }
                    Ok(false) => {}
                    Err(_) => {
                        // A conflicting epoch claim in an admitted
                        // stream is a protocol violation.
                        drop(epochs);
                        self.shared.set_applied(applied);
                        self.reject();
                        return Err(SessionEnd::Resync);
                    }
                }
            }
            // Apply-before-log, the same watermark invariant the leader
            // maintains: acceptance verdicts are re-derived locally.
            self.db.with_write(|db| {
                let _accepted = apply_record(db, rec.clone());
            });
            if wal.append(&rec).is_err() {
                // The record is applied but not logged: the in-memory
                // state is ahead of the local log, which a restart would
                // silently lose. Fall back to a re-sync (the leader
                // re-ships from the last durable watermark).
                self.shared.set_applied(applied);
                return Err(SessionEnd::Resync);
            }
            applied = lsn + 1;
            self.shared
                .stats
                .records_applied
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared.set_applied(applied);
        if self.config.snapshot_every > 0
            && applied.saturating_sub(*last_snapshot_lsn) >= self.config.snapshot_every
            && self.local_snapshot(applied).is_ok()
        {
            *last_snapshot_lsn = applied;
            self.shared
                .stats
                .snapshots_taken
                .fetch_add(1, Ordering::Relaxed);
        }
        self.ack(tx, applied)
    }

    /// A local snapshot at the applied watermark: the worker is the only
    /// writer, so the state is exactly the log prefix below `applied`.
    fn local_snapshot(&mut self, applied: u64) -> Result<(), WalError> {
        let wal = self.wal.as_mut().expect("snapshot only after bootstrap");
        wal.sync()?;
        let state = self.db.with_read(|db| db.clone());
        write_snapshot(&self.dir, &state, applied)?;
        // Chained followers tail this replica's local log: their lowest
        // acknowledged LSN is a barrier here exactly as it is on the
        // leader, so local compaction never deletes a segment a
        // downstream session still has to read.
        modb_wal::compact_with_barrier(
            &self.dir,
            self.config.snapshot_retention,
            self.horizon.min(),
        )?;
        Ok(())
    }
}
