//! The replication wire protocol.
//!
//! Same framing discipline as the log itself: every message travels as
//! `[len: u32 LE][crc32(payload): u32 LE][payload]`, where the payload is
//! a tag byte followed by the message body. The CRC is checked before a
//! byte of the payload is interpreted, so a frame corrupted in flight is
//! rejected whole — the session ends and the follower re-syncs, exactly
//! like recovery refusing a damaged interior record.
//!
//! Messages:
//!
//! | tag | message     | direction          | body                                  |
//! |-----|-------------|--------------------|---------------------------------------|
//! | 1   | `Hello`     | follower → leader  | `version u32, next_lsn u64, have_state u8[, epoch u64]` |
//! | 2   | `Snapshot`  | leader → follower  | `lsn u64, bytes (raw snapshot file)`  |
//! | 3   | `Records`   | leader → follower  | `start_lsn u64, count u32, frames`    |
//! | 4   | `Heartbeat` | leader → follower  | `leader_next_lsn u64`                 |
//! | 5   | `Ack`       | follower → leader  | `applied_lsn u64`                     |
//! | 6   | `Blocks`    | leader → follower  | `start_lsn u64, count u32, version u32, frames` |
//! | 7   | `Diverged`  | leader → follower  | `leader_epoch u64, boundary_lsn u64`  |
//! | 8   | `Epochs`    | leader → follower  | `count u32, (epoch u64, start_lsn u64) * count` |
//!
//! `Records` carries a run of consecutive WAL frames *in their on-disk
//! encoding* (inner length + CRC per record), so the follower validates
//! each record a second time with the same [`modb_wal::decode_frames`]
//! path recovery uses — a partially delivered or torn run can never be
//! applied.
//!
//! `Blocks` (protocol v2) is the same idea one layer up: a run of
//! *segment* frames shipped verbatim off the leader's disk, each holding
//! a v2 block (delta-coded, possibly LZ-compressed) or a single v1
//! record, with `version` naming the segment format the frames came
//! from. Compression paid once at append time is reused on the wire;
//! the follower decompresses on apply. A v1 leader never sends it, and
//! a v1 follower never negotiates it — the leader falls back to
//! `Records` when a follower's `Hello` says version 1.
//!
//! `Diverged` (protocol v3) is the promotion-time divergence guard: a
//! `Hello` carries the follower's leadership epoch (0 from a pre-v3
//! peer), and a server whose [`modb_wal::EpochHistory`] shows the
//! follower holding records past the birth of an epoch it never saw
//! answers with this typed refusal — naming the server's epoch and the
//! first forked LSN — instead of shipping onto a forked log or silently
//! re-bootstrapping it away.
//!
//! `Epochs` (protocol v3) transfers the server's full leadership
//! history to an admitted v3 follower, right after the handshake. The
//! in-stream `LeaderEpoch` records only cover epochs born inside the
//! shipped stretch; a follower bootstrapping from a snapshot taken
//! after a promotion would otherwise never learn the older boundaries
//! it needs to refuse (or be refused by) stale peers later.

use std::io::{Read, Write};
use std::net::TcpStream;

use modb_wal::codec::{put_u32, put_u64};
use modb_wal::{crc32, ByteReader, WalError};

/// Protocol version spoken by this build. Version 2 adds the `Blocks`
/// message (verbatim segment-frame shipping); a leader still accepts a
/// version-1 `Hello` and serves that follower decoded `Records`.
/// Version 3 adds the leadership epoch to `Hello` and the typed
/// `Diverged` refusal (the promotion divergence guard).
pub(crate) const PROTOCOL_VERSION: u32 = 3;

/// Oldest follower version the leader still serves (`Records` path).
pub(crate) const MIN_PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one message's payload: a bootstrap snapshot plus
/// headroom. Anything larger is treated as stream corruption.
pub(crate) const MAX_MESSAGE_BYTES: u32 = 64 * 1024 * 1024;

/// One protocol message (see the module table).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Message {
    /// Follower's opening line: who it is, where its log ends, and which
    /// leadership epoch it last lived under (0 = pre-v3 peer, epoch
    /// unknown).
    Hello {
        version: u32,
        next_lsn: u64,
        have_state: bool,
        epoch: u64,
    },
    /// A full bootstrap snapshot (the raw snapshot file, self-validating
    /// via its own magic/version/CRC).
    Snapshot { lsn: u64, bytes: Vec<u8> },
    /// `count` consecutive WAL frames starting at `start_lsn`.
    Records {
        start_lsn: u64,
        count: u32,
        frames: Vec<u8>,
    },
    /// Leader keepalive carrying its log frontier (lag = frontier −
    /// follower applied watermark).
    Heartbeat { leader_next_lsn: u64 },
    /// Follower's applied watermark; advances the leader's ship barrier.
    Ack { applied_lsn: u64 },
    /// `count` consecutive records starting at `start_lsn`, as verbatim
    /// segment frames from a segment of format `version` (v2 frames hold
    /// whole compressed blocks; protocol v2 only).
    Blocks {
        start_lsn: u64,
        count: u32,
        version: u32,
        frames: Vec<u8>,
    },
    /// Typed refusal of a follower whose log tail forked off this
    /// server's timeline: the follower holds records at or past
    /// `boundary_lsn` that were never written under `leader_epoch`'s
    /// history. The session closes after this; the follower must not
    /// retry (protocol v3 only).
    Diverged {
        leader_epoch: u64,
        boundary_lsn: u64,
    },
    /// The server's full leadership history (oldest span first), sent to
    /// an admitted v3 follower right after the handshake so it knows
    /// every timeline boundary, including those older than its bootstrap
    /// snapshot (protocol v3 only).
    Epochs { spans: Vec<modb_wal::EpochSpan> },
}

impl Message {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello {
                version,
                next_lsn,
                have_state,
                epoch,
            } => {
                out.push(1);
                put_u32(out, *version);
                put_u64(out, *next_lsn);
                out.push(u8::from(*have_state));
                put_u64(out, *epoch);
            }
            Message::Snapshot { lsn, bytes } => {
                out.push(2);
                put_u64(out, *lsn);
                out.extend_from_slice(bytes);
            }
            Message::Records {
                start_lsn,
                count,
                frames,
            } => {
                out.push(3);
                put_u64(out, *start_lsn);
                put_u32(out, *count);
                out.extend_from_slice(frames);
            }
            Message::Heartbeat { leader_next_lsn } => {
                out.push(4);
                put_u64(out, *leader_next_lsn);
            }
            Message::Ack { applied_lsn } => {
                out.push(5);
                put_u64(out, *applied_lsn);
            }
            Message::Blocks {
                start_lsn,
                count,
                version,
                frames,
            } => {
                out.push(6);
                put_u64(out, *start_lsn);
                put_u32(out, *count);
                put_u32(out, *version);
                out.extend_from_slice(frames);
            }
            Message::Diverged {
                leader_epoch,
                boundary_lsn,
            } => {
                out.push(7);
                put_u64(out, *leader_epoch);
                put_u64(out, *boundary_lsn);
            }
            Message::Epochs { spans } => {
                out.push(8);
                put_u32(out, spans.len() as u32);
                for span in spans {
                    put_u64(out, span.epoch);
                    put_u64(out, span.start_lsn);
                }
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, WalError> {
        let mut r = ByteReader::new(payload);
        let msg = match r.u8()? {
            1 => {
                let version = r.u32()?;
                let next_lsn = r.u64()?;
                let have_state = r.u8()? != 0;
                // A pre-v3 Hello ends here; epoch 0 marks it unknown
                // (the divergence check reads that as genesis).
                let epoch = if r.is_empty() { 0 } else { r.u64()? };
                Message::Hello {
                    version,
                    next_lsn,
                    have_state,
                    epoch,
                }
            }
            2 => {
                let lsn = r.u64()?;
                // The rest of the payload is the raw snapshot file.
                return Ok(Message::Snapshot {
                    lsn,
                    bytes: payload[payload.len() - r.remaining()..].to_vec(),
                });
            }
            3 => {
                let start_lsn = r.u64()?;
                let count = r.u32()?;
                // The rest of the payload is the concatenated WAL frames.
                return Ok(Message::Records {
                    start_lsn,
                    count,
                    frames: payload[payload.len() - r.remaining()..].to_vec(),
                });
            }
            4 => Message::Heartbeat {
                leader_next_lsn: r.u64()?,
            },
            5 => Message::Ack {
                applied_lsn: r.u64()?,
            },
            6 => {
                let start_lsn = r.u64()?;
                let count = r.u32()?;
                let version = r.u32()?;
                // The rest of the payload is the verbatim segment frames.
                return Ok(Message::Blocks {
                    start_lsn,
                    count,
                    version,
                    frames: payload[payload.len() - r.remaining()..].to_vec(),
                });
            }
            7 => Message::Diverged {
                leader_epoch: r.u64()?,
                boundary_lsn: r.u64()?,
            },
            8 => {
                let count = r.u32()? as usize;
                let mut spans = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    spans.push(modb_wal::EpochSpan {
                        epoch: r.u64()?,
                        start_lsn: r.u64()?,
                    });
                }
                Message::Epochs { spans }
            }
            _ => return Err(WalError::Decode("unknown replication message tag")),
        };
        if !r.is_empty() {
            return Err(WalError::Decode("trailing bytes in replication message"));
        }
        Ok(msg)
    }
}

/// Frames and sends one message (blocking, honoring the stream's write
/// timeout).
pub(crate) fn send_message(stream: &mut TcpStream, msg: &Message) -> Result<(), WalError> {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)?;
    Ok(())
}

/// What one [`FrameReader::poll`] observed.
#[derive(Debug)]
pub(crate) enum ReadEvent {
    /// A whole, CRC-valid message.
    Message(Message),
    /// No complete frame yet (read timed out or a frame is partially
    /// buffered).
    Idle,
    /// The peer closed the connection.
    Closed,
}

/// Accumulating frame decoder over a socket. Reads are bounded by the
/// stream's read timeout, so a poll returns [`ReadEvent::Idle`] rather
/// than blocking forever; bytes of a partial frame are buffered across
/// polls. A length or CRC violation is a hard [`WalError::Decode`] — the
/// stream cannot be re-synchronized after framing is lost.
#[derive(Debug)]
pub(crate) struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    pub(crate) fn new(stream: TcpStream) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads once and decodes if a whole frame is available.
    pub(crate) fn poll(&mut self) -> Result<ReadEvent, WalError> {
        if let Some(msg) = self.try_decode()? {
            return Ok(ReadEvent::Message(msg));
        }
        let mut tmp = [0u8; 64 * 1024];
        match self.stream.read(&mut tmp) {
            Ok(0) => Ok(ReadEvent::Closed),
            Ok(n) => {
                self.buf.extend_from_slice(&tmp[..n]);
                match self.try_decode()? {
                    Some(msg) => Ok(ReadEvent::Message(msg)),
                    None => Ok(ReadEvent::Idle),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                Ok(ReadEvent::Idle)
            }
            Err(e) => Err(WalError::Io(e)),
        }
    }

    fn try_decode(&mut self) -> Result<Option<Message>, WalError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 || len > MAX_MESSAGE_BYTES {
            return Err(WalError::Decode("implausible replication frame length"));
        }
        let crc = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        let total = 8 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = &self.buf[8..total];
        if crc32(payload) != crc {
            return Err(WalError::Decode("replication frame crc mismatch"));
        }
        let msg = Message::decode_payload(payload)?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
                next_lsn: 42,
                have_state: true,
                epoch: 3,
            },
            Message::Snapshot {
                lsn: 7,
                bytes: vec![1, 2, 3, 4, 5],
            },
            Message::Records {
                start_lsn: 9,
                count: 2,
                frames: vec![0xde, 0xad, 0xbe, 0xef],
            },
            Message::Heartbeat {
                leader_next_lsn: 11,
            },
            Message::Ack { applied_lsn: 10 },
            Message::Blocks {
                start_lsn: 13,
                count: 3,
                version: 2,
                frames: vec![0xca, 0xfe, 0xf0, 0x0d, 0x01],
            },
            Message::Diverged {
                leader_epoch: 4,
                boundary_lsn: 120,
            },
            Message::Epochs {
                spans: vec![
                    modb_wal::EpochSpan {
                        epoch: 1,
                        start_lsn: 0,
                    },
                    modb_wal::EpochSpan {
                        epoch: 2,
                        start_lsn: 57,
                    },
                ],
            },
        ]
    }

    #[test]
    fn pre_v3_hello_decodes_with_unknown_epoch() {
        // A v1/v2 peer's Hello stops after have_state; the decoder must
        // read it as epoch 0 rather than rejecting the frame.
        let mut payload = vec![1u8];
        put_u32(&mut payload, 2);
        put_u64(&mut payload, 42);
        payload.push(1);
        let msg = Message::decode_payload(&payload).unwrap();
        assert_eq!(
            msg,
            Message::Hello {
                version: 2,
                next_lsn: 42,
                have_state: true,
                epoch: 0,
            }
        );
    }

    #[test]
    fn round_trips_every_message() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut reader = FrameReader::new(rx);
        for msg in sample_messages() {
            send_message(&mut tx, &msg).unwrap();
            let got = loop {
                match reader.poll().unwrap() {
                    ReadEvent::Message(m) => break m,
                    ReadEvent::Idle => continue,
                    ReadEvent::Closed => panic!("peer closed"),
                }
            };
            assert_eq!(got, msg);
        }
        drop(tx);
        assert!(matches!(reader.poll().unwrap(), ReadEvent::Closed));
    }

    #[test]
    fn corrupt_crc_is_a_hard_error() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut payload = Vec::new();
        Message::Ack { applied_lsn: 3 }.encode_payload(&mut payload);
        let mut frame = Vec::new();
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload) ^ 1); // flipped
        frame.extend_from_slice(&payload);
        tx.write_all(&frame).unwrap();
        let mut reader = FrameReader::new(rx);
        let err = loop {
            match reader.poll() {
                Ok(ReadEvent::Idle) => continue,
                Ok(other) => panic!("{other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::Decode(_)), "{err}");
    }

    #[test]
    fn implausible_length_is_a_hard_error() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut frame = Vec::new();
        put_u32(&mut frame, MAX_MESSAGE_BYTES + 1);
        put_u32(&mut frame, 0);
        tx.write_all(&frame).unwrap();
        let mut reader = FrameReader::new(rx);
        let err = loop {
            match reader.poll() {
                Ok(ReadEvent::Idle) => continue,
                Ok(other) => panic!("{other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::Decode(_)), "{err}");
    }

    #[test]
    fn partial_frames_accumulate_across_polls() {
        let (mut tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let msg = Message::Records {
            start_lsn: 5,
            count: 1,
            frames: vec![9; 300],
        };
        let mut payload = Vec::new();
        msg.encode_payload(&mut payload);
        let mut frame = Vec::new();
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        let mut reader = FrameReader::new(rx);
        // Send in three slices with idle polls in between.
        let thirds = frame.len() / 3;
        tx.write_all(&frame[..thirds]).unwrap();
        tx.flush().unwrap();
        match reader.poll().unwrap() {
            ReadEvent::Idle => {}
            ReadEvent::Message(_) => panic!("frame not complete yet"),
            ReadEvent::Closed => panic!("closed"),
        }
        tx.write_all(&frame[thirds..2 * thirds]).unwrap();
        tx.write_all(&frame[2 * thirds..]).unwrap();
        let got = loop {
            match reader.poll().unwrap() {
                ReadEvent::Message(m) => break m,
                ReadEvent::Idle => continue,
                ReadEvent::Closed => panic!("closed"),
            }
        };
        assert_eq!(got, msg);
    }
}
