//! The scatter-gather query router: one logical database over N shards.
//!
//! A [`ClusterRouter`] owns one [`QueryClient`] per shard and a
//! [`ShardMap`] deciding object placement. Writes (updates) go to the
//! owning shard only; queries are routed per statement:
//!
//! - **Position by id** goes to the owning shard alone when the map can
//!   name it (hash maps always; spatial maps via the router's
//!   directory), otherwise it is broadcast and the one shard that knows
//!   the object answers.
//! - **Range / within-point** queries are broadcast and the per-shard
//!   may/must sets merged. Placement is only a locality *hint* (objects
//!   move after assignment), so the router never prunes the fan-out —
//!   pruning is what the [`crate::cluster::CostModel`] prices, not what
//!   the router risks correctness on.
//! - **k-nearest** is broadcast with the ranking widened to every
//!   object, the per-shard neighbour pools concatenated, and the final
//!   ranking recomputed router-side — bit-identical to a single node
//!   ranking the union fleet, because a neighbour's distance and
//!   deviation bound depend only on its own motion plan.
//! - **Within-object** (the trucking query) is decomposed exactly the
//!   way a single node evaluates it: resolve the anchor, fetch its
//!   position and bound, then run the inflated (may) and deflated
//!   (must) disc queries across the cluster and assemble, excluding the
//!   anchor.
//!
//! The merged verdicts match a single node holding the union fleet
//! **except** for the diagnostic traversal counters
//! ([`modb_index::SearchStats`] and `candidates`), which are summed
//! across shards — per-shard trees are shaped differently than one big
//! tree, so the counters are additive diagnostics, not part of the
//! answer.
//!
//! **Failures are typed, never silent.** A shard that dies mid-query
//! surfaces as [`ClusterError::ShardFailed`] naming the shard; the
//! router never returns a partial result as if it were total.
//!
//! **Read your writes.** Each underlying [`QueryClient`] tracks the WAL
//! frontier its own shard acknowledged and stamps it on that shard's
//! batches, so the guarantee holds per shard — which is exactly the
//! granularity at which an update lands.

use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;

use modb_core::{CoreError, NearestAnswer, ObjectId, RangeAnswer, UpdateMessage};
use modb_geom::Point;
use modb_query::{
    split_statements, ExecError, ObjectRef, ParseError, Query, QueryError, QueryResult,
};
use modb_wal::WalError;

use crate::cluster::ShardMap;
use crate::net::{QueryClient, RemoteUpdateVerdict, RemoteVerdict, ServerStatsSnapshot};

/// `k` used when widening a nearest query to every object on a shard:
/// 2⁵³, the largest integer the query language's f64 literals carry
/// exactly, and more objects than any fleet holds.
const ALL_OBJECTS_K: u64 = 1 << 53;

/// A cluster-level failure — distinct from a per-statement query error
/// (which travels inside the verdict like on a single node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A shard's connection failed mid-request (died, hung past the
    /// client deadline, or spoke garbage). The batch has no total
    /// answer; the error names the shard so an operator can look at it.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// The transport/protocol error, rendered.
        error: String,
    },
    /// An update for an object the router cannot place: the map needs a
    /// position-derived directory entry (spatial key) and none was
    /// recorded via [`ClusterRouter::route_registration`].
    UnroutableUpdate(ObjectId),
    /// The shard map and the client list disagree on the shard count.
    ShardCountMismatch {
        /// Shards in the map.
        map: usize,
        /// Connected clients.
        clients: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ShardFailed { shard, error } => {
                write!(f, "shard {shard} failed: {error}")
            }
            ClusterError::UnroutableUpdate(id) => write!(
                f,
                "no shard recorded for object {}: spatial maps route updates via the \
                 registration directory",
                id.0
            ),
            ClusterError::ShardCountMismatch { map, clients } => write!(
                f,
                "shard map covers {map} shards but {clients} clients are connected"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One logical moving-objects database over a fleet of shard servers.
/// See the module docs for the routing and merge rules.
#[derive(Debug)]
pub struct ClusterRouter {
    clients: Vec<QueryClient>,
    map: ShardMap,
    /// Home shard of each object routed through this router — required
    /// for spatial maps (placement depended on the start position),
    /// redundant-but-recorded for hash maps.
    homes: HashMap<ObjectId, usize>,
    /// Name → id, so the trucking query can resolve a named anchor and
    /// exclude it from its own answer.
    names: HashMap<String, ObjectId>,
}

impl ClusterRouter {
    /// Wraps already-connected shard clients (index = shard number).
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardCountMismatch`] when the map and client
    /// list disagree.
    pub fn new(clients: Vec<QueryClient>, map: ShardMap) -> Result<Self, ClusterError> {
        if clients.len() != map.shards() {
            return Err(ClusterError::ShardCountMismatch {
                map: map.shards(),
                clients: clients.len(),
            });
        }
        Ok(ClusterRouter {
            clients,
            map,
            homes: HashMap::new(),
            names: HashMap::new(),
        })
    }

    /// Connects to one server per shard (address index = shard number).
    ///
    /// # Errors
    ///
    /// Connection failures as [`ClusterError::ShardFailed`];
    /// [`ClusterError::ShardCountMismatch`] as [`ClusterRouter::new`].
    pub fn connect(addrs: &[SocketAddr], map: ShardMap) -> Result<Self, ClusterError> {
        let mut clients = Vec::with_capacity(addrs.len());
        for (shard, addr) in addrs.iter().enumerate() {
            clients.push(QueryClient::connect(addr).map_err(|e| shard_failed(shard, &e))?);
        }
        ClusterRouter::new(clients, map)
    }

    /// The shard map in force.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.clients.len()
    }

    /// Decides (and records) the home shard for a new object starting at
    /// `start`. The caller registers the object on the returned shard —
    /// fleet provisioning is an administrative operation on the shard
    /// itself; the router handles the data plane (updates and queries).
    pub fn route_registration(&mut self, id: ObjectId, name: &str, start: Point) -> usize {
        let shard = self.map.assign(id, start);
        self.homes.insert(id, shard);
        if !name.is_empty() {
            self.names.insert(name.to_string(), id);
        }
        shard
    }

    /// The home shard of `id`, from the map (hash) or the directory
    /// (spatial).
    pub fn home_shard(&self, id: ObjectId) -> Option<usize> {
        self.map
            .owner_by_id(id)
            .or_else(|| self.homes.get(&id).copied())
    }

    /// Sends one position update to the owning shard and returns its
    /// verdict. The shard's read-your-writes token advances on ack, so a
    /// following [`ClusterRouter::run_batch`] sees the write.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnroutableUpdate`] when no shard can be named,
    /// [`ClusterError::ShardFailed`] on transport failure.
    pub fn update(
        &mut self,
        id: ObjectId,
        msg: &UpdateMessage,
    ) -> Result<RemoteUpdateVerdict, ClusterError> {
        let shard = self
            .home_shard(id)
            .ok_or(ClusterError::UnroutableUpdate(id))?;
        self.clients[shard]
            .update(id, msg)
            .map_err(|e| shard_failed(shard, &e))
    }

    /// Routes a batch of updates: grouped by owning shard, one frame per
    /// shard (sent in parallel), verdicts returned in input order.
    ///
    /// # Errors
    ///
    /// As [`ClusterRouter::update`].
    pub fn update_batch(
        &mut self,
        updates: &[(ObjectId, UpdateMessage)],
    ) -> Result<Vec<RemoteUpdateVerdict>, ClusterError> {
        // Group input positions by shard, preserving input order within
        // each group (the ingest shards keep per-object FIFO; the router
        // must not reorder one object's updates).
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.clients.len()];
        for (i, (id, _)) in updates.iter().enumerate() {
            let shard = self
                .home_shard(*id)
                .ok_or(ClusterError::UnroutableUpdate(*id))?;
            groups[shard].push(i);
        }
        let mut verdicts: Vec<Option<RemoteUpdateVerdict>> = vec![None; updates.len()];
        let results: Vec<Option<Result<Vec<RemoteUpdateVerdict>, WalError>>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .clients
                    .iter_mut()
                    .zip(&groups)
                    .map(|(client, group)| {
                        if group.is_empty() {
                            None
                        } else {
                            let shard_updates: Vec<(ObjectId, UpdateMessage)> =
                                group.iter().map(|&i| updates[i]).collect();
                            Some(s.spawn(move || client.update_batch(&shard_updates)))
                        }
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("shard update thread panicked")))
                    .collect()
            });
        for (shard, result) in results.into_iter().enumerate() {
            let Some(result) = result else { continue };
            let shard_verdicts = result.map_err(|e| shard_failed(shard, &e))?;
            if shard_verdicts.len() != groups[shard].len() {
                return Err(ClusterError::ShardFailed {
                    shard,
                    error: "update verdict count mismatch".into(),
                });
            }
            for (&i, v) in groups[shard].iter().zip(shard_verdicts) {
                verdicts[i] = Some(v);
            }
        }
        Ok(verdicts
            .into_iter()
            .map(|v| v.expect("every update routed"))
            .collect())
    }

    /// Runs a `;`-script against the cluster, returning one verdict per
    /// statement — the vector a single node holding the union fleet
    /// would produce (modulo summed traversal counters; module docs).
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardFailed`] when any contacted shard fails
    /// mid-statement. Per-statement *query* errors (parse errors,
    /// unknown objects, bad radii) are verdicts, not `Err`s, exactly as
    /// on a single node.
    pub fn run_batch(&mut self, script: &str) -> Result<Vec<RemoteVerdict>, ClusterError> {
        let statements = match split_statements(script) {
            Ok(s) => s,
            // An unterminated literal poisons the whole script — same
            // single-verdict shape as `modb_query::run_batch`.
            Err(e) => return Ok(vec![Err(QueryError::Parse(ParseError::Lex(e)).to_string())]),
        };
        let mut verdicts = Vec::with_capacity(statements.len());
        for statement in statements {
            verdicts.push(self.run_statement(statement)?);
        }
        Ok(verdicts)
    }

    /// Scrapes every shard's stats frame (index = shard number).
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardFailed`] on the first failing scrape.
    pub fn stats(&mut self) -> Result<Vec<ServerStatsSnapshot>, ClusterError> {
        self.clients
            .iter_mut()
            .enumerate()
            .map(|(shard, c)| c.stats().map_err(|e| shard_failed(shard, &e)))
            .collect()
    }

    /// Repoints one shard at a new server — the write-path half of
    /// leader failover (DESIGN.md §16). After
    /// [`crate::FailoverCoordinator::fail_over`] promotes a shard's
    /// standby, point the router here at the promotee's query front-end
    /// and writes to that shard flow again.
    ///
    /// The old connection's read-your-writes token carries over to the
    /// new one: the promotee's log is a byte-identical prefix of the
    /// dead leader's plus its `LeaderEpoch` seal, so the LSN space is
    /// the same and an acked write's floor stays meaningful. (A token
    /// above the promotee's frontier names acked-but-unshipped writes
    /// the promotee never received; those are exactly the writes failover
    /// cannot save, and the floor makes the gap visible as a typed
    /// `Stale` instead of silently reading around it.)
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardFailed`] naming `shard` when it is out of
    /// range or the new address cannot be dialed; the old (dead)
    /// connection is kept in place on failure so a retry is possible.
    pub fn fail_over_shard(
        &mut self,
        shard: usize,
        addr: impl std::net::ToSocketAddrs,
    ) -> Result<(), ClusterError> {
        if shard >= self.clients.len() {
            return Err(ClusterError::ShardFailed {
                shard,
                error: format!("no such shard (cluster has {})", self.clients.len()),
            });
        }
        let mut client = QueryClient::connect(addr).map_err(|e| shard_failed(shard, &e))?;
        client.set_token(self.clients[shard].token());
        let old = std::mem::replace(&mut self.clients[shard], client);
        old.close();
        Ok(())
    }

    /// Closes every shard connection.
    pub fn close(self) {
        for client in self.clients {
            client.close();
        }
    }

    fn run_statement(&mut self, statement: &str) -> Result<RemoteVerdict, ClusterError> {
        let query = match modb_query::parse(statement) {
            Ok(q) => q,
            Err(e) => return Ok(Err(QueryError::Parse(e).to_string())),
        };
        match query {
            Query::Position {
                object: ObjectRef::Id(id),
                ..
            } => match self.home_shard(id) {
                Some(shard) => self.single(shard, statement),
                None => Ok(first_answer(self.broadcast(statement)?)),
            },
            // A named object lives on exactly one shard; the others
            // return the same unknown-name error a single node would.
            Query::Position { .. } => Ok(first_answer(self.broadcast(statement)?)),
            Query::Range { .. } | Query::WithinPoint { .. } => {
                Ok(merge_range(self.broadcast(statement)?))
            }
            Query::Nearest { k, center, at } => {
                // Widen each shard's ranking to its whole population,
                // then rank the pooled neighbours at the original k.
                let widened = format!(
                    "RETRIEVE {ALL_OBJECTS_K} NEAREST OBJECTS TO POINT ({}, {}) AT TIME {}",
                    center.x, center.y, at
                );
                Ok(merge_nearest(self.broadcast(&widened)?, k))
            }
            Query::WithinObject { object, radius, at } => self.within_object(object, radius, at),
        }
    }

    /// The trucking query, decomposed the way
    /// `Database::within_distance_of_object` evaluates it on one node —
    /// same steps, same error order, same exclusion of the anchor.
    fn within_object(
        &mut self,
        object: ObjectRef,
        radius: f64,
        at: f64,
    ) -> Result<RemoteVerdict, ClusterError> {
        // Resolve the anchor first (a single node's executor does too,
        // so an unknown name outranks a bad radius).
        let target = match object {
            ObjectRef::Id(id) => id,
            ObjectRef::Name(name) => match self.names.get(&name) {
                Some(&id) => id,
                None => {
                    return Ok(Err(
                        QueryError::Exec(ExecError::UnknownName(name)).to_string()
                    ))
                }
            },
        };
        if !radius.is_finite() || radius <= 0.0 {
            return Ok(Err(QueryError::Exec(ExecError::Core(
                CoreError::InvalidField("radius", radius),
            ))
            .to_string()));
        }
        // Phase 1: the anchor's reported position and deviation bound.
        let position_stmt = format!("RETRIEVE POSITION OF OBJECT {} AT TIME {}", target.0, at);
        let position = match self.home_shard(target) {
            Some(shard) => self.single(shard, &position_stmt)?,
            None => first_answer(self.broadcast(&position_stmt)?),
        };
        let anchor = match position {
            Ok(QueryResult::Position(p)) => p,
            // position_of failures render identically through the
            // position query, so the error string passes through.
            Err(e) => return Ok(Err(e)),
            Ok(_) => {
                return Err(ClusterError::ShardFailed {
                    shard: 0,
                    error: "position query answered with a non-position result".into(),
                })
            }
        };
        let (center, bound) = (anchor.position, anchor.bound);
        // Phase 2: inflated disc for the may side, deflated for must.
        let may_stmt = format!(
            "RETRIEVE OBJECTS WITHIN {} OF POINT ({}, {}) AT TIME {}",
            radius + bound,
            center.x,
            center.y,
            at
        );
        let mut may_side = match merge_range(self.broadcast(&may_stmt)?) {
            Ok(QueryResult::Range(a)) => a,
            Err(e) => return Ok(Err(e)),
            Ok(_) => unreachable!("merge_range yields range results"),
        };
        let must_radius = radius - bound;
        let must_ids = if must_radius > 0.0 {
            let must_stmt = format!(
                "RETRIEVE OBJECTS WITHIN {} OF POINT ({}, {}) AT TIME {}",
                must_radius, center.x, center.y, at
            );
            match merge_range(self.broadcast(&must_stmt)?) {
                Ok(QueryResult::Range(a)) => a.must,
                Err(e) => return Ok(Err(e)),
                Ok(_) => unreachable!("merge_range yields range results"),
            }
        } else {
            Vec::new()
        };
        // Assemble exactly like the single-node path: must from the
        // deflated disc, the rest of the inflated disc to may, anchor
        // excluded from both.
        let mut answer = RangeAnswer {
            candidates: may_side.candidates,
            stats: may_side.stats,
            ..RangeAnswer::default()
        };
        answer.must = must_ids.into_iter().filter(|&i| i != target).collect();
        may_side.normalize();
        for id in may_side.all() {
            if id != target && !answer.must.contains(&id) {
                answer.may.push(id);
            }
        }
        answer.normalize();
        Ok(Ok(QueryResult::Range(answer)))
    }

    /// One statement to one shard, expecting one verdict back.
    fn single(&mut self, shard: usize, statement: &str) -> Result<RemoteVerdict, ClusterError> {
        let mut verdicts = self.clients[shard]
            .batch(statement)
            .map_err(|e| shard_failed(shard, &e))?;
        if verdicts.len() != 1 {
            return Err(ClusterError::ShardFailed {
                shard,
                error: format!("expected 1 verdict, got {}", verdicts.len()),
            });
        }
        Ok(verdicts.remove(0))
    }

    /// One statement to every shard in parallel; element i is shard i's
    /// verdict.
    fn broadcast(&mut self, statement: &str) -> Result<Vec<RemoteVerdict>, ClusterError> {
        let results: Vec<Result<Vec<RemoteVerdict>, WalError>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .clients
                .iter_mut()
                .map(|client| s.spawn(move || client.batch(statement)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard query thread panicked"))
                .collect()
        });
        results
            .into_iter()
            .enumerate()
            .map(|(shard, result)| {
                let mut verdicts = result.map_err(|e| shard_failed(shard, &e))?;
                if verdicts.len() != 1 {
                    return Err(ClusterError::ShardFailed {
                        shard,
                        error: format!("expected 1 verdict, got {}", verdicts.len()),
                    });
                }
                Ok(verdicts.remove(0))
            })
            .collect()
    }
}

fn shard_failed(shard: usize, error: &dyn fmt::Display) -> ClusterError {
    ClusterError::ShardFailed {
        shard,
        error: error.to_string(),
    }
}

/// Merge for point lookups: the one shard that knows the object
/// answers; otherwise every shard failed identically (same error a
/// single node raises), so the first error stands.
fn first_answer(verdicts: Vec<RemoteVerdict>) -> RemoteVerdict {
    let mut first_err = None;
    for v in verdicts {
        match v {
            Ok(r) => return Ok(r),
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    Err(first_err.expect("broadcast reaches at least one shard"))
}

/// Merge for range queries: union the may/must sets, sum the traversal
/// diagnostics, renormalize. Any shard-side query error is the
/// statement's verdict (every shard evaluates the same region, so
/// region errors are identical across shards).
fn merge_range(verdicts: Vec<RemoteVerdict>) -> RemoteVerdict {
    let mut merged = RangeAnswer::default();
    for v in verdicts {
        match v {
            Ok(QueryResult::Range(a)) => {
                merged.must.extend(a.must);
                merged.may.extend(a.may);
                merged.candidates += a.candidates;
                merged.stats.nodes_visited += a.stats.nodes_visited;
                merged.stats.entries_tested += a.stats.entries_tested;
                merged.stats.matches += a.stats.matches;
            }
            Ok(_) => return Err("shard answered a range query with a non-range result".into()),
            Err(e) => return Err(e),
        }
    }
    merged.normalize();
    Ok(QueryResult::Range(merged))
}

/// Merge for k-nearest: pool every shard's (widened) ranking and rank
/// the union at the original k. Distances and bounds are per-object
/// facts, so the pooled ranking equals the single-node ranking.
fn merge_nearest(verdicts: Vec<RemoteVerdict>, k: usize) -> RemoteVerdict {
    let mut pool = Vec::new();
    for v in verdicts {
        match v {
            Ok(QueryResult::Nearest(a)) => {
                pool.extend(a.ranked);
                pool.extend(a.contenders);
            }
            Ok(_) => return Err("shard answered a nearest query with a non-nearest result".into()),
            Err(e) => return Err(e),
        }
    }
    Ok(QueryResult::Nearest(NearestAnswer::from_neighbours(
        pool, k,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_error_displays_name_the_shard() {
        let e = ClusterError::ShardFailed {
            shard: 2,
            error: "connection reset".into(),
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(ClusterError::UnroutableUpdate(ObjectId(7))
            .to_string()
            .contains('7'));
        let e = ClusterError::ShardCountMismatch { map: 3, clients: 2 };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn first_answer_prefers_the_knowing_shard() {
        let err: RemoteVerdict = Err("execution error: database error: x".into());
        let ok: RemoteVerdict = Ok(QueryResult::Range(RangeAnswer::default()));
        match first_answer(vec![err.clone(), ok, err.clone()]) {
            Ok(QueryResult::Range(_)) => {}
            other => panic!("{other:?}"),
        }
        assert!(first_answer(vec![err.clone(), err]).is_err());
    }

    #[test]
    fn merge_range_unions_and_renormalizes() {
        let a = RangeAnswer {
            must: vec![ObjectId(3)],
            may: vec![ObjectId(5)],
            candidates: 2,
            stats: Default::default(),
        };
        let b = RangeAnswer {
            must: vec![ObjectId(1)],
            may: vec![ObjectId(4)],
            candidates: 3,
            stats: Default::default(),
        };
        let merged =
            merge_range(vec![Ok(QueryResult::Range(a)), Ok(QueryResult::Range(b))]).unwrap();
        let r = merged.as_range().unwrap();
        assert_eq!(r.must, vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(r.may, vec![ObjectId(4), ObjectId(5)]);
        assert_eq!(r.candidates, 5);
    }

    #[test]
    fn merge_nearest_ranks_the_pool() {
        let mk = |id: u64, d: f64| modb_core::Neighbour {
            id: ObjectId(id),
            distance: d,
            bound: 0.1,
            certain: false,
        };
        let a = NearestAnswer {
            ranked: vec![mk(1, 5.0), mk(2, 9.0)],
            contenders: vec![],
        };
        let b = NearestAnswer {
            ranked: vec![mk(3, 1.0)],
            contenders: vec![],
        };
        let merged = merge_nearest(
            vec![Ok(QueryResult::Nearest(a)), Ok(QueryResult::Nearest(b))],
            2,
        )
        .unwrap();
        let n = merged.as_nearest().unwrap();
        assert_eq!(n.ranked.len(), 2);
        assert_eq!(n.ranked[0].id, ObjectId(3));
        assert_eq!(n.ranked[1].id, ObjectId(1));
    }
}
