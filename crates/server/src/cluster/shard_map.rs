//! Shard-key strategies: who owns which moving object.
//!
//! A cluster partitions the fleet across N `modb-server` processes. The
//! *shard key* decides the home shard of each object — and thereby the
//! network, disk, and skew profile of the whole deployment (scored by
//! [`crate::cluster::CostModel`]). Two strategies, per the mongodb-d4
//! tradition of evaluating candidate designs rather than decreeing one:
//!
//! - **Hash of object id**: placement is uniform and queryable from the
//!   id alone (point lookups touch one shard), but has no spatial
//!   locality — every range query fans out to all N shards.
//! - **Spatial regions**: each shard owns a rectangle; an object lands
//!   on the shard containing its position at assignment time. Range
//!   queries touching few rectangles can be answered by few shards, but
//!   objects *move* — placement is only a locality hint, and a fleet
//!   that drifts across region borders skews load toward the shards it
//!   drifts into.

use modb_core::ObjectId;
use modb_geom::{Point, Rect};

/// How objects map to shards. See the module docs for the tradeoff.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardKey {
    /// Mixed hash of the object id, modulo the shard count.
    HashById,
    /// One axis-aligned rectangle per shard; assignment by containment
    /// of the object's position at registration (first containing
    /// region wins; outside every region, the nearest region center).
    Spatial(Vec<Rect>),
}

/// A concrete assignment of objects to `shards()` shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    key: ShardKey,
    shards: usize,
}

/// Fibonacci-style mixer so consecutive vehicle ids don't all land on
/// consecutive shards (plain `id % n` would put a contiguously numbered
/// depot fleet on one shard for small fleets and stride patterns).
fn mix(id: u64) -> u64 {
    let x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^ (x >> 32)
}

impl ShardMap {
    /// A hash-of-id map over `shards` shards (clamped to ≥ 1).
    pub fn hash(shards: usize) -> Self {
        ShardMap {
            key: ShardKey::HashById,
            shards: shards.max(1),
        }
    }

    /// A spatial map: one region per shard, in shard order.
    ///
    /// # Panics
    ///
    /// Panics on an empty region list.
    pub fn spatial(regions: Vec<Rect>) -> Self {
        assert!(!regions.is_empty(), "spatial shard map needs ≥ 1 region");
        let shards = regions.len();
        ShardMap {
            key: ShardKey::Spatial(regions),
            shards,
        }
    }

    /// Number of shards this map spreads the fleet over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The key strategy.
    pub fn key(&self) -> &ShardKey {
        &self.key
    }

    /// The home shard for `id` starting at `start` — where the object
    /// is registered and where its updates are routed.
    pub fn assign(&self, id: ObjectId, start: Point) -> usize {
        match &self.key {
            ShardKey::HashById => (mix(id.0) % self.shards as u64) as usize,
            ShardKey::Spatial(regions) => {
                if let Some(i) = regions.iter().position(|r| r.contains_point(start)) {
                    return i;
                }
                // Outside every region: nearest region center, so the
                // map is total even for objects off the planned grid.
                regions
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.center()
                            .distance(start)
                            .partial_cmp(&b.center().distance(start))
                            .expect("finite region centers")
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        }
    }

    /// The shard an id-only lookup can be routed to without knowing the
    /// object's position: `Some` for hash maps (placement is a pure
    /// function of the id), `None` for spatial maps (placement depended
    /// on where the object was — a router needs a directory).
    pub fn owner_by_id(&self, id: ObjectId) -> Option<usize> {
        match &self.key {
            ShardKey::HashById => Some((mix(id.0) % self.shards as u64) as usize),
            ShardKey::Spatial(_) => None,
        }
    }

    /// Shards whose region intersects `rect`, for the cost model's
    /// fan-out estimate of a spatial range query (hash maps return all
    /// shards — ids carry no spatial information). Placement is a
    /// locality *hint*, not an invariant (objects move after
    /// assignment), so a correctness-preserving router still broadcasts;
    /// this prices the fan-out a drift-aware pruning router could reach.
    pub fn shards_for_rect(&self, rect: &Rect) -> Vec<usize> {
        match &self.key {
            ShardKey::HashById => (0..self.shards).collect(),
            ShardKey::Spatial(regions) => {
                let hit: Vec<usize> = regions
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.intersects(rect))
                    .map(|(i, _)| i)
                    .collect();
                if hit.is_empty() {
                    // A query off the grid still costs one shard's work.
                    vec![0]
                } else {
                    hit
                }
            }
        }
    }

    /// Splits `frame` into `n` equal vertical strips (left to right) —
    /// the standard spatial map for a corridor-shaped road network.
    pub fn vertical_strips(frame: Rect, n: usize) -> Self {
        let n = n.max(1);
        let w = frame.width() / n as f64;
        let regions = (0..n)
            .map(|i| {
                Rect::new(
                    Point::new(frame.min.x + i as f64 * w, frame.min.y),
                    Point::new(frame.min.x + (i + 1) as f64 * w, frame.max.y),
                )
            })
            .collect();
        ShardMap::spatial(regions)
    }

    /// Splits `frame` into `n` equal horizontal strips (bottom to top).
    pub fn horizontal_strips(frame: Rect, n: usize) -> Self {
        let n = n.max(1);
        let h = frame.height() / n as f64;
        let regions = (0..n)
            .map(|i| {
                Rect::new(
                    Point::new(frame.min.x, frame.min.y + i as f64 * h),
                    Point::new(frame.max.x, frame.min.y + (i + 1) as f64 * h),
                )
            })
            .collect();
        ShardMap::spatial(regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_covers_all_shards_and_is_stable() {
        let map = ShardMap::hash(4);
        assert_eq!(map.shards(), 4);
        let mut seen = [false; 4];
        for id in 0..64u64 {
            let s = map.assign(ObjectId(id), Point::new(0.0, 0.0));
            assert_eq!(Some(s), map.owner_by_id(ObjectId(id)));
            assert!(s < 4);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b), "64 ids should hit all 4 shards");
        // Position is irrelevant to a hash map.
        assert_eq!(
            map.assign(ObjectId(9), Point::new(0.0, 0.0)),
            map.assign(ObjectId(9), Point::new(500.0, 500.0)),
        );
    }

    #[test]
    fn spatial_map_assigns_by_containment_with_nearest_fallback() {
        let map =
            ShardMap::vertical_strips(Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 10.0)), 3);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.assign(ObjectId(1), Point::new(5.0, 5.0)), 0);
        assert_eq!(map.assign(ObjectId(1), Point::new(15.0, 5.0)), 1);
        assert_eq!(map.assign(ObjectId(1), Point::new(25.0, 5.0)), 2);
        // Off the grid entirely: nearest region center.
        assert_eq!(map.assign(ObjectId(1), Point::new(-100.0, 5.0)), 0);
        assert_eq!(map.assign(ObjectId(1), Point::new(999.0, 5.0)), 2);
        // Id-only routing is impossible.
        assert_eq!(map.owner_by_id(ObjectId(1)), None);
    }

    #[test]
    fn rect_fanout_prunes_spatial_but_not_hash() {
        let frame = Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 10.0));
        let spatial = ShardMap::vertical_strips(frame, 3);
        let hash = ShardMap::hash(3);
        let q = Rect::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0));
        assert_eq!(spatial.shards_for_rect(&q), vec![0]);
        assert_eq!(hash.shards_for_rect(&q), vec![0, 1, 2]);
        let wide = Rect::new(Point::new(5.0, 1.0), Point::new(25.0, 9.0));
        assert_eq!(spatial.shards_for_rect(&wide), vec![0, 1, 2]);
        // Off-grid queries still cost one shard.
        let off = Rect::new(Point::new(100.0, 100.0), Point::new(101.0, 101.0));
        assert_eq!(spatial.shards_for_rect(&off), vec![0]);
    }
}
