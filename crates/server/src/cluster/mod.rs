//! Sharded deployment: shard keys, a scatter-gather router, and a
//! cost-modeled shard-key evaluator.
//!
//! One `modb-server` node holds one fleet. Past that, the fleet is
//! *partitioned*: each of N shard servers owns a subset of the moving
//! objects (its own database, WAL, ingest shards, and query engine),
//! and three pieces make the partition look like one database:
//!
//! - [`ShardMap`] ([`ShardKey`]): who owns which object — hash of the
//!   object id (uniform, id-routable, no spatial locality) or spatial
//!   regions (local range queries stay local, but objects drift).
//! - [`ClusterRouter`]: the data plane. Updates go to the owning shard
//!   over the v2 remote-ingest protocol; `;`-batch queries are routed
//!   per statement and the per-shard verdicts merged so the cluster
//!   answers exactly like a single node holding the union fleet (see
//!   the `router` module docs for the merge rules and the one
//!   diagnostics-only exception). Shard failures surface as typed
//!   [`ClusterError`]s, never as silently partial answers.
//! - [`CostModel`]: the design plane. Scores a candidate map against a
//!   [`RecordedWorkload`] on normalized network / disk / temporal-skew
//!   axes (weighted `α`, `β`, `γ`), so "which key fits this fleet?"
//!   is answered by measurement — experiment W6 (`exp_sharding`) runs
//!   exactly that comparison.
//!
//! The paper's cost/imprecision tradeoff (§5) prices one vehicle's
//! radio messages against its deviation bound; a cluster adds a second
//! ledger — interconnect fan-out and per-shard WAL load against
//! placement quality — and this module makes both columns measurable.

mod cost;
mod router;
mod shard_map;

pub use cost::{CostBreakdown, CostModel, RecordedWorkload, WorkloadOp};
pub use router::{ClusterError, ClusterRouter};
pub use shard_map::{ShardKey, ShardMap};
