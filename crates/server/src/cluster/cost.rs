//! Cost-modeled shard-key evaluation.
//!
//! Choosing a shard key is a design problem, not a decree: the right
//! key depends on the workload. In the tradition of database-design
//! advisors (mongodb-d4 being the direct inspiration), a candidate
//! [`ShardMap`] is *scored against a recorded workload* along three
//! normalized axes, each in `[0, 1]` (lower is better):
//!
//! - **Network** — the scatter-gather fan-out: the mean fraction of the
//!   cluster each operation touches. An update or an id-routed position
//!   lookup touches one shard; a range query touches every shard whose
//!   region its rectangle intersects (all of them, under a hash key).
//!   This is the paper's §5 communication cost, lifted from one radio
//!   link to the cluster interconnect.
//! - **Disk** — WAL imbalance: how unevenly the update log lands
//!   across shards, as `(max − mean) / (total − mean)` of per-shard
//!   logged-update counts (0 = perfectly even, 1 = one shard takes
//!   everything). A skewed key turns one shard's WAL into the
//!   cluster's write bottleneck.
//! - **Skew** — temporal load imbalance: the same `(max − mean) /
//!   (total − mean)` statistic per time segment (the workload's span
//!   split into [`CostModel::segments`] slices), weighted by each
//!   segment's share of operations. A fleet that commutes east in the
//!   morning can be balanced *on average* while overloading one shard
//!   every rush hour; segmenting catches what the aggregate hides.
//!
//! The verdict is the weighted mean `(α·network + β·disk + γ·skew) /
//! (α + β + γ)`. Experiment W6 (`exp_sharding`) scores hash and
//! spatial keys against generated workloads and reports the breakdown.

use std::collections::HashMap;

use modb_core::ObjectId;
use modb_geom::{Point, Rect};

use crate::cluster::ShardMap;

/// One operation in a recorded workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// A position update from an object (routed to its home shard,
    /// appended to that shard's WAL).
    Update {
        /// The reporting object.
        id: ObjectId,
    },
    /// A position lookup (routed to the home shard).
    Position {
        /// The object queried.
        id: ObjectId,
    },
    /// A spatial range query over a rectangle (fans out to every shard
    /// whose region intersects it).
    Range {
        /// The query rectangle.
        rect: Rect,
    },
}

/// A workload trace to score shard maps against: object registrations
/// (with start positions, so spatial keys can place them) plus a
/// time-stamped operation stream.
#[derive(Debug, Clone, Default)]
pub struct RecordedWorkload {
    starts: HashMap<ObjectId, Point>,
    ops: Vec<(f64, WorkloadOp)>,
}

impl RecordedWorkload {
    /// An empty trace.
    pub fn new() -> Self {
        RecordedWorkload::default()
    }

    /// Records an object's start position — the input a spatial key
    /// assigns shards from.
    pub fn register(&mut self, id: ObjectId, start: Point) {
        self.starts.insert(id, start);
    }

    /// Appends one operation at time `at`.
    pub fn push(&mut self, at: f64, op: WorkloadOp) {
        self.ops.push((at, op));
    }

    /// The recorded operations, in recording order.
    pub fn ops(&self) -> &[(f64, WorkloadOp)] {
        &self.ops
    }

    /// Registered objects.
    pub fn objects(&self) -> usize {
        self.starts.len()
    }

    fn start_of(&self, id: ObjectId) -> Point {
        // Unregistered ids still cost something somewhere; the origin
        // is as good a deterministic guess as any.
        self.starts
            .get(&id)
            .copied()
            .unwrap_or(Point::new(0.0, 0.0))
    }
}

/// Weights for the three cost axes, plus the temporal resolution of the
/// skew term. All three components are normalized to `[0, 1]`, so the
/// weights express relative importance, not unit conversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Weight of the network (fan-out) term.
    pub alpha: f64,
    /// Weight of the disk (WAL imbalance) term.
    pub beta: f64,
    /// Weight of the temporal-skew term.
    pub gamma: f64,
    /// Time segments the workload span is split into for the skew term.
    pub segments: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            segments: 9,
        }
    }
}

/// A scored shard map: the three components and their weighted mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Mean fraction of the cluster touched per operation.
    pub network: f64,
    /// Imbalance of logged updates across shards.
    pub disk: f64,
    /// Op-weighted per-segment load imbalance.
    pub skew: f64,
    /// `(α·network + β·disk + γ·skew) / (α + β + γ)`.
    pub total: f64,
}

/// `(max − mean) / (total − mean)`: 0 when every shard carries the
/// same load, 1 when one shard carries all of it. Degenerate inputs
/// (no load, or a single shard) are perfectly balanced by definition.
fn imbalance(per_shard: &[f64]) -> f64 {
    let total: f64 = per_shard.iter().sum();
    if total <= 0.0 || per_shard.len() < 2 {
        return 0.0;
    }
    let mean = total / per_shard.len() as f64;
    let max = per_shard.iter().cloned().fold(0.0, f64::max);
    ((max - mean) / (total - mean)).clamp(0.0, 1.0)
}

impl CostModel {
    /// Scores `map` against `workload`. Deterministic: same inputs,
    /// same breakdown.
    pub fn score(&self, map: &ShardMap, workload: &RecordedWorkload) -> CostBreakdown {
        let shards = map.shards();
        let ops = workload.ops();
        // Time span for the skew segments.
        let (t0, t1) = ops
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(t, _)| {
                (lo.min(t), hi.max(t))
            });
        let segments = self.segments.max(1);
        let seg_of = |t: f64| -> usize {
            if t1 <= t0 {
                0
            } else {
                (((t - t0) / (t1 - t0) * segments as f64) as usize).min(segments - 1)
            }
        };

        let mut fanout_sum = 0.0;
        let mut wal_per_shard = vec![0.0; shards];
        let mut seg_loads = vec![vec![0.0; shards]; segments];
        for &(t, ref op) in ops {
            let touched: Vec<usize> = match op {
                WorkloadOp::Update { id } => {
                    let home = map.assign(*id, workload.start_of(*id));
                    wal_per_shard[home] += 1.0;
                    vec![home]
                }
                WorkloadOp::Position { id } => {
                    vec![map.assign(*id, workload.start_of(*id))]
                }
                WorkloadOp::Range { rect } => map.shards_for_rect(rect),
            };
            fanout_sum += touched.len() as f64 / shards as f64;
            let seg = seg_of(t);
            for &s in &touched {
                seg_loads[seg][s] += 1.0;
            }
        }

        let network = if ops.is_empty() {
            0.0
        } else {
            fanout_sum / ops.len() as f64
        };
        let disk = imbalance(&wal_per_shard);
        let total_load: f64 = ops.len() as f64;
        let skew = if total_load <= 0.0 {
            0.0
        } else {
            seg_loads
                .iter()
                .map(|loads| {
                    let seg_total: f64 = loads.iter().sum();
                    imbalance(loads) * seg_total
                })
                .sum::<f64>()
                / seg_loads
                    .iter()
                    .map(|loads| loads.iter().sum::<f64>())
                    .sum::<f64>()
                    .max(1.0)
        };

        let weight = self.alpha + self.beta + self.gamma;
        let total = if weight > 0.0 {
            (self.alpha * network + self.beta * disk + self.gamma * skew) / weight
        } else {
            0.0
        };
        CostBreakdown {
            network,
            disk,
            skew,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(90.0, 30.0))
    }

    /// Fleet spread evenly over three vertical strips, each object
    /// updating in place; local range queries in the left strip.
    fn local_workload() -> RecordedWorkload {
        let mut w = RecordedWorkload::new();
        for i in 0..300u64 {
            let x = (i % 3) as f64 * 30.0 + 15.0;
            w.register(ObjectId(i), Point::new(x, 15.0));
        }
        for t in 0..10 {
            for i in 0..300u64 {
                w.push(t as f64, WorkloadOp::Update { id: ObjectId(i) });
            }
            w.push(
                t as f64,
                WorkloadOp::Range {
                    rect: Rect::new(Point::new(1.0, 1.0), Point::new(20.0, 20.0)),
                },
            );
        }
        w
    }

    #[test]
    fn spatial_key_beats_hash_on_local_range_queries() {
        let w = local_workload();
        let model = CostModel::default();
        let hash = model.score(&ShardMap::hash(3), &w);
        let spatial = model.score(&ShardMap::vertical_strips(corridor(), 3), &w);
        // The spatial key answers the left-strip query from one shard.
        assert!(spatial.network < hash.network, "{spatial:?} vs {hash:?}");
        assert!(spatial.total < hash.total);
        // Both keys spread this even fleet's WAL roughly evenly (hash
        // placement is statistical, so its slack is wider).
        assert!(spatial.disk < 0.1, "{spatial:?}");
        assert!(hash.disk < 0.3, "{hash:?}");
    }

    #[test]
    fn skew_term_catches_a_clustered_fleet() {
        // Whole fleet in the left strip: a vertical spatial key piles
        // every update on shard 0.
        let mut w = RecordedWorkload::new();
        for i in 0..300u64 {
            w.register(ObjectId(i), Point::new(5.0, 15.0));
            w.push(0.0, WorkloadOp::Update { id: ObjectId(i) });
            w.push(1.0, WorkloadOp::Update { id: ObjectId(i) });
        }
        let model = CostModel::default();
        let spatial = model.score(&ShardMap::vertical_strips(corridor(), 3), &w);
        let hash = model.score(&ShardMap::hash(3), &w);
        assert!(spatial.disk > 0.9, "{spatial:?}");
        assert!(spatial.skew > 0.9, "{spatial:?}");
        assert!(hash.disk < 0.3, "{hash:?}");
        assert!(hash.total < spatial.total);
    }

    #[test]
    fn imbalance_is_normalized() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[10.0]), 0.0);
        assert_eq!(imbalance(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(imbalance(&[12.0, 0.0, 0.0]), 1.0);
        let mid = imbalance(&[8.0, 4.0, 0.0]);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn empty_workload_scores_zero() {
        let b = CostModel::default().score(&ShardMap::hash(3), &RecordedWorkload::new());
        assert_eq!(b.total, 0.0);
        assert_eq!(b.network, 0.0);
    }
}
