//! Epoch-based snapshot reads and a parallel query executor.
//!
//! Every query on [`crate::SharedDatabase`] holds the global read lock
//! for its whole filter + refine pass, so one writer stalls every reader
//! and readers serialize on lock traffic. This module changes the read
//! concurrency model: an **epoch publisher** maintains an immutable
//! [`Arc<Database>`] snapshot, and queries execute against the latest
//! published snapshot with **zero locks held during filter + refine**.
//! Grabbing a snapshot is one `Arc` clone behind a cell lock held for
//! nanoseconds; after that the query never contends with ingest or with
//! other readers.
//!
//! **Publication is O(changes), not O(fleet).** The publisher keeps a
//! double-buffered [`ShadowBuffer`]: the snapshot being retired comes
//! back as the next epoch's scratch copy, and under the brief read lock
//! only the objects named by the database's change log since the
//! previous publish are re-synced ([`modb_core::Database::sync_from`] —
//! per-object o-plane delete+insert, the paper's §4.2 index maintenance
//! operation, instead of rebuild-by-clone). A full clone happens only on
//! the first publish, when the change log was truncated past the
//! cursor, or when a straggling reader still pins the retired arc.
//! [`QueryEngineConfig::incremental_publish`] turns the delta path off
//! for A/B measurement (the `epoch_publish` bench).
//!
//! On top of the snapshot path sits a fixed worker pool:
//!
//! - [`QueryEngine::execute_batch`] fans a batch of requests
//!   ([`BatchRequest`]: typed `QueryRegion` / within-distance requests or
//!   `modb-query` text) across the workers, all reading one consistent
//!   snapshot.
//! - For a single large range query, the refine step itself is split:
//!   candidate slices go to the workers via [`Database::refine_slice`]
//!   while the calling thread refines its own share
//!   ([`QueryEngine::range_query`] with at least
//!   [`QueryEngineConfig::parallel_threshold`] candidates).
//!
//! Batch jobs always refine serially — parallel refinement is only
//! initiated from caller threads, never from inside a pool worker, so the
//! pool cannot deadlock on itself.
//!
//! **Staleness vs the paper's uncertainty bounds.** A snapshot is at most
//! one epoch interval Δt old. The paper's §3.3 deviation bound for a
//! position attribute grows at most linearly in elapsed time with slope
//! `D` (the speed bound used by the policy), so answering from a snapshot
//! taken Δt ago widens the deviation bound by at most `D·Δt` — the same
//! currency the update policies already trade in. With the default 50 ms
//! epoch interval and the paper's example figures (D ≈ 1 mile/minute),
//! that is under a thousandth of a mile of extra imprecision, bought in
//! exchange for reads that scale with cores. Callers that need
//! read-your-writes semantics call [`QueryEngine::publish_now`] first or
//! query the locked [`crate::SharedDatabase`] directly.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use modb_core::{
    ChangeCursor, CoreError, Database, ObjectId, PositionAnswer, RangeAnswer, SyncReport,
};
use modb_geom::Point;
use modb_index::QueryRegion;
use modb_query::{ExecError, QueryError, QueryResult};
use parking_lot::RwLock;

use crate::shadow::ShadowBuffer;
use crate::shared::SharedDatabase;

/// An immutable point-in-time view of the database, shared by every query
/// running against the same epoch.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    db: Arc<Database>,
    /// Change-log position the snapshot state corresponds to; when the
    /// snapshot is retired its arc + cursor seed the next delta publish.
    cursor: ChangeCursor,
    epoch: u64,
    published_at: Instant,
}

impl EpochSnapshot {
    /// The snapshot's database state. All of [`Database`]'s query API is
    /// available; nothing here takes a lock.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The shared handle to the snapshot state (for handing work to other
    /// threads).
    pub fn database_arc(&self) -> &Arc<Database> {
        &self.db
    }

    /// Monotone epoch number; 0 is the snapshot taken at engine start.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The source database's change-log cursor at publication time —
    /// everything recorded before it is reflected in this snapshot.
    pub fn cursor(&self) -> ChangeCursor {
        self.cursor
    }

    /// Wall-clock age of this snapshot — the staleness bound Δt in the
    /// `D·Δt` imprecision argument.
    pub fn age(&self) -> Duration {
        self.published_at.elapsed()
    }
}

/// Tuning knobs for [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEngineConfig {
    /// Worker threads in the query pool (clamped to ≥ 1).
    pub workers: usize,
    /// Republish interval for the epoch snapshot; `None` **or**
    /// `Some(Duration::ZERO)` disables the background publisher
    /// (snapshots advance only via [`QueryEngine::publish_now`], and
    /// [`EpochSnapshot::age`] keeps growing until the next manual
    /// publish).
    pub epoch_interval: Option<Duration>,
    /// Interval for the periodic stats reporter (prints a
    /// [`QueryStatsSnapshot`] line to stderr); `None` disables it.
    pub report_interval: Option<Duration>,
    /// Candidate-set size at which a single range query splits its refine
    /// step across the pool instead of refining on the calling thread.
    pub parallel_threshold: usize,
    /// Per-worker job-queue depth (back-pressure bound, clamped to ≥ 1).
    pub queue_depth: usize,
    /// Publish epochs by applying the change-log delta to a shadow copy
    /// (`true`, the default) instead of deep-cloning the database every
    /// time (`false` — kept for A/B benchmarking and as a belt-and-
    /// braces escape hatch).
    pub incremental_publish: bool,
}

impl Default for QueryEngineConfig {
    fn default() -> Self {
        QueryEngineConfig {
            workers: 4,
            epoch_interval: Some(Duration::from_millis(50)),
            report_interval: None,
            parallel_threshold: 512,
            queue_depth: 256,
            incremental_publish: true,
        }
    }
}

/// Latency histogram buckets: bucket `b` counts queries whose latency in
/// microseconds lies in `[2^(b-1), 2^b)`.
const LATENCY_BUCKETS: usize = 40;

/// Counters published by the query engine, mirroring
/// [`crate::IngestStats`] on the read side. All atomic; shared between
/// the engine, its publisher/reporter threads, and any observer.
pub struct QueryStats {
    epoch: AtomicU64,
    queries: AtomicU64,
    epoch_queries: AtomicU64,
    errors: AtomicU64,
    candidates: AtomicU64,
    matches: AtomicU64,
    parallel_refines: AtomicU64,
    batches: AtomicU64,
    delta_publishes: AtomicU64,
    full_publishes: AtomicU64,
    publish_ns: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            epoch: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            epoch_queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            matches: AtomicU64::new(0),
            parallel_refines: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            delta_publishes: AtomicU64::new(0),
            full_publishes: AtomicU64::new(0),
            publish_ns: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl fmt::Debug for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryStats")
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl QueryStats {
    fn record(&self, elapsed: Duration, candidates: usize, matches: usize, error: bool) {
        // Ceilings first, subordinates second, with release/acquire
        // pairing so `snapshot` (which reads in the opposite order) can
        // never observe a subordinate ahead of its ceiling.
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.epoch_queries.fetch_add(1, Ordering::Release);
        if error {
            self.errors.fetch_add(1, Ordering::Release);
        }
        self.candidates
            .fetch_add(candidates as u64, Ordering::Relaxed);
        self.matches.fetch_add(matches as u64, Ordering::Release);
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - (us | 1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The histogram value at quantile `q` (0 < q ≤ 1), as the upper
    /// bound of the bucket containing it — a conservative estimate with
    /// power-of-two resolution.
    fn percentile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (bucket, &count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return 1u64 << bucket;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }

    /// A plain-value copy of the counters; `snapshot_age` is supplied by
    /// the engine (it lives on the epoch cell, not in the counters).
    ///
    /// The copy is internally *consistent*: a scrape racing a
    /// mid-flight [`record`](Self::record) can never report
    /// `epoch_queries > queries`, `errors > queries`, or
    /// `matches > candidates`. Dependent counters are loaded in the
    /// opposite order to the writer (so the subordinate value is never
    /// newer than its ceiling) and clamped — the clamp also covers the
    /// epoch-reset race, where `epoch_queries` flies back to 0.
    pub fn snapshot(&self, snapshot_age: Duration) -> QueryStatsSnapshot {
        // Writer order in `record` is queries → epoch_queries → errors →
        // candidates → matches; read each subordinate before its ceiling.
        let epoch_queries = self.epoch_queries.load(Ordering::Acquire);
        let errors = self.errors.load(Ordering::Acquire);
        let matches = self.matches.load(Ordering::Acquire);
        let candidates = self.candidates.load(Ordering::Acquire);
        let queries = self.queries.load(Ordering::Acquire);
        QueryStatsSnapshot {
            epoch: self.epoch.load(Ordering::Relaxed),
            queries,
            epoch_queries: epoch_queries.min(queries),
            errors: errors.min(queries),
            candidates,
            matches: matches.min(candidates),
            parallel_refines: self.parallel_refines.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            delta_publishes: self.delta_publishes.load(Ordering::Relaxed),
            full_publishes: self.full_publishes.load(Ordering::Relaxed),
            publish_ns: self.publish_ns.load(Ordering::Relaxed),
            p50_us: self.percentile_us(0.50),
            p99_us: self.percentile_us(0.99),
            snapshot_age,
        }
    }
}

/// A plain-value copy of [`QueryStats`], printable for operator logs —
/// the read-side sibling of [`crate::IngestStatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStatsSnapshot {
    /// Current epoch number.
    pub epoch: u64,
    /// Queries answered since engine start.
    pub queries: u64,
    /// Queries answered against the current epoch's snapshot.
    pub epoch_queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Total filter-step candidates across all range queries.
    pub candidates: u64,
    /// Total refined matches (must + may) across all range queries.
    pub matches: u64,
    /// Range queries whose refine step ran on the worker pool.
    pub parallel_refines: u64,
    /// Batches executed via [`QueryEngine::execute_batch`].
    pub batches: u64,
    /// Epoch publications that applied a change-log delta to the shadow.
    pub delta_publishes: u64,
    /// Epoch publications that fell back to (or were configured for) a
    /// full clone — epoch 0, a truncated change log, a delta past the
    /// clone break-even point, or
    /// [`QueryEngineConfig::incremental_publish`]` = false`.
    pub full_publishes: u64,
    /// Total nanoseconds from publish start to snapshot swap, summed
    /// over every publication (epoch 0 included). This is the
    /// *visibility* latency — the time a caller waits for a fresh epoch;
    /// the shadow buffer's post-swap catch-up runs after the new epoch
    /// is already live and is deliberately excluded.
    pub publish_ns: u64,
    /// Median query latency (µs, bucketed upper bound).
    pub p50_us: u64,
    /// 99th-percentile query latency (µs, bucketed upper bound).
    pub p99_us: u64,
    /// Age of the currently published snapshot.
    pub snapshot_age: Duration,
}

impl QueryStatsSnapshot {
    /// Refine selectivity: matched / filtered candidates (0 when no
    /// candidates have been seen). Low values mean the filter step is
    /// doing its job.
    pub fn match_ratio(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.matches as f64 / self.candidates as f64
        }
    }

    /// Mean time to make an epoch visible (publish start → snapshot
    /// swap), in microseconds, across all publications so far.
    pub fn mean_publish_us(&self) -> f64 {
        let publishes = self.delta_publishes + self.full_publishes;
        if publishes == 0 {
            0.0
        } else {
            self.publish_ns as f64 / 1e3 / publishes as f64
        }
    }
}

impl fmt::Display for QueryStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} (age {} ms): {} queries ({} this epoch), p50 {} us, p99 {} us, \
             {} candidates -> {} matches ({:.2} ratio), {} parallel refines, {} batches, \
             {} delta / {} full publishes ({:.0} us mean), {} errors",
            self.epoch,
            self.snapshot_age.as_millis(),
            self.queries,
            self.epoch_queries,
            self.p50_us,
            self.p99_us,
            self.candidates,
            self.matches,
            self.match_ratio(),
            self.parallel_refines,
            self.batches,
            self.delta_publishes,
            self.full_publishes,
            self.mean_publish_us(),
            self.errors,
        )
    }
}

/// One request in a batch: a typed region query, the taxi-cab
/// within-distance query, or a `modb-query` statement.
#[derive(Debug, Clone)]
pub enum BatchRequest {
    /// A may/must range query over a region.
    Region(QueryRegion),
    /// "Objects within `radius` miles of `center` at time `t`".
    WithinPoint {
        /// Disc center.
        center: Point,
        /// Radius in miles.
        radius: f64,
        /// Query time.
        t: f64,
    },
    /// A `modb-query` language statement.
    Text(String),
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed pool of query workers. Each worker owns a bounded queue; jobs
/// are dispatched round-robin (the crossbeam receivers are single
/// consumer, matching the sharded ingest workers). Jobs never spawn
/// nested pool work.
struct WorkerPool {
    shards: Vec<Sender<Job>>,
    next: AtomicUsize,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let mut shards = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = bounded::<Job>(queue_depth.max(1));
            threads.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }));
            shards.push(tx);
        }
        WorkerPool {
            shards,
            next: AtomicUsize::new(0),
            threads,
        }
    }

    fn size(&self) -> usize {
        self.shards.len()
    }

    /// Dispatches a job; on a shut-down pool the job is handed back so
    /// the caller can run it inline.
    fn execute(&self, job: Job) -> Result<(), Job> {
        if self.shards.is_empty() {
            return Err(job);
        }
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].send(job).map_err(|e| e.0)
    }

    fn shutdown(&mut self) {
        self.shards.clear(); // closing the queues ends the workers
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The epoch/snapshot query engine over a [`SharedDatabase`]. See the
/// module docs for the concurrency model and the staleness argument.
#[derive(Debug)]
pub struct QueryEngine {
    db: SharedDatabase,
    cell: Arc<RwLock<Arc<EpochSnapshot>>>,
    stats: Arc<QueryStats>,
    shadow: Arc<Mutex<ShadowBuffer>>,
    incremental: bool,
    pool: WorkerPool,
    parallel_threshold: usize,
    publisher: Option<(Sender<()>, JoinHandle<()>)>,
    reporter: Option<(Sender<()>, JoinHandle<()>)>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .finish()
    }
}

/// Publishes the next epoch's snapshot. On the incremental path the
/// retired snapshot's arc is pulled forward by the change-log delta
/// under a brief read lock ([`ShadowBuffer::refresh`]) and the newly
/// retired one is stored back for the publish after that — O(changes)
/// per publication. The non-incremental path deep-clones every time
/// (benchmark baseline).
///
/// The swap is deliberately placed mid-function: everything before it
/// is the *visibility* latency (recorded in [`QueryStats`]), and once
/// the new epoch is live the just-retired buffer is caught up to the
/// source in a second, equally brief lock window
/// ([`ShadowBuffer::catch_up`]). With the catch-up, each buffer of the
/// double-buffered pair stays one inter-epoch round behind instead of
/// two, so the pre-swap delta — the part readers wait on — is half the
/// naive double-buffer cost.
fn publish(
    db: &SharedDatabase,
    cell: &RwLock<Arc<EpochSnapshot>>,
    stats: &QueryStats,
    shadow: &Mutex<ShadowBuffer>,
    incremental: bool,
) -> u64 {
    // Serializes concurrent publishers (manual publish_now racing the
    // background thread); queries never touch this mutex.
    let mut buf = shadow.lock().unwrap_or_else(|e| e.into_inner());
    let t0 = Instant::now();
    let (state, report) = if incremental {
        db.with_read(|src| buf.refresh(src))
    } else {
        db.with_read(|src| {
            let report = SyncReport {
                cursor: src.change_cursor(),
                full_resync: true,
                applied: 0,
            };
            (Arc::new(src.clone()), report)
        })
    };
    if report.full_resync {
        stats.full_publishes.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.delta_publishes.fetch_add(1, Ordering::Relaxed);
    }
    let epoch = stats.epoch.fetch_add(1, Ordering::Relaxed) + 1;
    stats.epoch_queries.store(0, Ordering::Relaxed);
    let snap = Arc::new(EpochSnapshot {
        db: state,
        cursor: report.cursor,
        epoch,
        published_at: Instant::now(),
    });
    let retired = std::mem::replace(&mut *cell.write(), snap);
    stats
        .publish_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    if incremental {
        buf.store(Arc::clone(&retired.db), retired.cursor);
        // Dropping our handle on the retired snapshot first gives the
        // buffer sole ownership whenever no query still reads that
        // epoch — the condition for an in-place catch-up.
        drop(retired);
        buf.reap(); // outside any lock: O(fleet) drops land here
        db.with_read(|src| buf.catch_up(src));
    }
    epoch
}

impl QueryEngine {
    /// Builds an engine over `db`: takes the epoch-0 snapshot, spawns the
    /// worker pool, and (per `config`) the background epoch publisher and
    /// stats reporter.
    pub fn new(db: SharedDatabase, config: QueryEngineConfig) -> Self {
        let stats = Arc::new(QueryStats::default());
        let shadow = Arc::new(Mutex::new(ShadowBuffer::new()));
        let t0 = Instant::now();
        let (state, cursor) =
            db.with_read(|inner| (Arc::new(inner.clone()), inner.change_cursor()));
        stats.full_publishes.fetch_add(1, Ordering::Relaxed);
        stats
            .publish_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let initial = Arc::new(EpochSnapshot {
            db: state,
            cursor,
            epoch: 0,
            published_at: Instant::now(),
        });
        let cell = Arc::new(RwLock::new(initial));
        let incremental = config.incremental_publish;
        // `Some(Duration::ZERO)` means "publisher off" just like `None`
        // (a 0 ms republish loop would only busy-spin).
        let publisher = config
            .epoch_interval
            .filter(|interval| !interval.is_zero())
            .map(|interval| {
                let (stop_tx, stop_rx) = bounded::<()>(1);
                let db = db.clone();
                let cell = Arc::clone(&cell);
                let stats = Arc::clone(&stats);
                let shadow = Arc::clone(&shadow);
                let handle = std::thread::spawn(move || {
                    while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                        publish(&db, &cell, &stats, &shadow, incremental);
                    }
                });
                (stop_tx, handle)
            });
        let reporter = config.report_interval.map(|interval| {
            let (stop_tx, stop_rx) = bounded::<()>(1);
            let cell = Arc::clone(&cell);
            let stats = Arc::clone(&stats);
            let handle = std::thread::spawn(move || {
                while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                    let age = cell.read().age();
                    eprintln!("[query-engine] {}", stats.snapshot(age));
                }
            });
            (stop_tx, handle)
        });
        QueryEngine {
            pool: WorkerPool::spawn(config.workers, config.queue_depth),
            parallel_threshold: config.parallel_threshold.max(2),
            db,
            cell,
            stats,
            shadow,
            incremental,
            publisher,
            reporter,
        }
    }

    /// The underlying locked handle (for read-your-writes queries and for
    /// mutations, which always go through the live database).
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The latest published snapshot: one `Arc` clone, no lock held
    /// afterwards.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.cell.read().clone()
    }

    /// Publishes a fresh epoch immediately (read-your-writes barrier) and
    /// returns its number.
    pub fn publish_now(&self) -> u64 {
        publish(
            &self.db,
            &self.cell,
            &self.stats,
            &self.shadow,
            self.incremental,
        )
    }

    /// Current counters plus the age of the published snapshot.
    pub fn stats(&self) -> QueryStatsSnapshot {
        let age = self.cell.read().age();
        self.stats.snapshot(age)
    }

    /// May/must range query against the latest snapshot. Lock-free after
    /// the snapshot grab; candidate sets of at least
    /// [`QueryEngineConfig::parallel_threshold`] split their refine step
    /// across the worker pool.
    ///
    /// # Errors
    ///
    /// See [`Database::range_query`].
    pub fn range_query(&self, region: &QueryRegion) -> Result<RangeAnswer, CoreError> {
        let t0 = Instant::now();
        let snap = self.snapshot();
        let result = self.range_on_snapshot(&snap, region);
        self.record_range(t0.elapsed(), &result);
        result
    }

    /// "Objects within `radius` miles of `center` at time `t`" against
    /// the latest snapshot.
    ///
    /// # Errors
    ///
    /// See [`Database::within_distance_of_point`].
    pub fn within_distance_of_point(
        &self,
        center: Point,
        radius: f64,
        t: f64,
    ) -> Result<RangeAnswer, CoreError> {
        let region = modb_index::within_radius(center, radius, t)
            .ok_or(CoreError::InvalidField("radius", radius))?;
        self.range_query(&region)
    }

    /// Position query against the latest snapshot (§3.3 bound included).
    ///
    /// # Errors
    ///
    /// See [`Database::position_of`].
    pub fn position_of(&self, id: ObjectId, t: f64) -> Result<PositionAnswer, CoreError> {
        let t0 = Instant::now();
        let snap = self.snapshot();
        let result = snap.database().position_of(id, t);
        self.stats.record(t0.elapsed(), 0, 0, result.is_err());
        result
    }

    /// Executes one `modb-query` statement against the latest snapshot.
    ///
    /// # Errors
    ///
    /// See [`modb_query::run`].
    pub fn run_query(&self, src: &str) -> Result<QueryResult, QueryError> {
        let t0 = Instant::now();
        let snap = self.snapshot();
        let result = modb_query::run(snap.database(), src);
        self.record_result(t0.elapsed(), &result);
        result
    }

    /// Fans a batch of requests across the worker pool, all against one
    /// consistent snapshot. Results come back in request order, each with
    /// its own verdict. Batch jobs refine serially on their worker (see
    /// the module docs' deadlock note).
    pub fn execute_batch(
        &self,
        requests: Vec<BatchRequest>,
    ) -> Vec<Result<QueryResult, QueryError>> {
        let snap = self.snapshot();
        let n = requests.len();
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded::<(usize, u64, Result<QueryResult, QueryError>)>(n.max(1));
        for (idx, request) in requests.into_iter().enumerate() {
            let db = Arc::clone(snap.database_arc());
            let tx = tx.clone();
            let job: Job = Box::new(move || {
                let t0 = Instant::now();
                let result = execute_request(&db, request);
                let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                let _ = tx.send((idx, us, result));
            });
            if let Err(job) = self.pool.execute(job) {
                job(); // pool shut down: run inline, the send still lands
            }
        }
        drop(tx);
        let mut results: Vec<Option<Result<QueryResult, QueryError>>> =
            (0..n).map(|_| None).collect();
        for _ in 0..n {
            match rx.recv() {
                Ok((idx, us, result)) => {
                    self.record_result(Duration::from_micros(us), &result);
                    results[idx] = Some(result);
                }
                Err(_) => break,
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(QueryError::Exec(ExecError::InvalidRegion(
                        "query worker dropped the request".into(),
                    )))
                })
            })
            .collect()
    }

    /// Parses a `;`-separated `modb-query` script and executes the
    /// statements as one batch (one snapshot, fanned across the pool).
    /// A script whose quoting never closes cannot be split; that comes
    /// back as a single parse-error verdict for the whole batch.
    pub fn run_batch(&self, src: &str) -> Vec<Result<QueryResult, QueryError>> {
        match modb_query::split_statements(src) {
            Ok(statements) => self.execute_batch(
                statements
                    .into_iter()
                    .map(|s| BatchRequest::Text(s.to_string()))
                    .collect(),
            ),
            Err(e) => vec![Err(QueryError::Parse(modb_query::ParseError::Lex(e)))],
        }
    }

    /// Stops the background threads and the pool, returning the final
    /// counters.
    pub fn shutdown(mut self) -> QueryStatsSnapshot {
        let snapshot = self.stats();
        self.stop_threads();
        snapshot
    }

    fn stop_threads(&mut self) {
        for (stop, handle) in self
            .publisher
            .take()
            .into_iter()
            .chain(self.reporter.take())
        {
            let _ = stop.send(());
            drop(stop);
            let _ = handle.join();
        }
        self.pool.shutdown();
    }

    fn range_on_snapshot(
        &self,
        snap: &EpochSnapshot,
        region: &QueryRegion,
    ) -> Result<RangeAnswer, CoreError> {
        let db = snap.database_arc();
        let (candidates, stats) = db.range_candidates(region);
        if candidates.len() >= self.parallel_threshold && self.pool.size() > 1 {
            self.stats.parallel_refines.fetch_add(1, Ordering::Relaxed);
            self.refine_parallel(db, candidates, region, stats)
        } else {
            let (must, may) = db.refine_slice(&candidates, region)?;
            let mut answer = RangeAnswer {
                must,
                may,
                candidates: candidates.len(),
                stats,
            };
            answer.normalize();
            Ok(answer)
        }
    }

    /// Splits the refine step across the pool: the candidate list is cut
    /// into `workers + 1` slices, the workers refine all but the first,
    /// and the calling thread refines its own share while they run.
    fn refine_parallel(
        &self,
        db: &Arc<Database>,
        candidates: Vec<ObjectId>,
        region: &QueryRegion,
        stats: modb_index::SearchStats,
    ) -> Result<RangeAnswer, CoreError> {
        type SliceResult = Result<(Vec<ObjectId>, Vec<ObjectId>), CoreError>;
        let slices = self.pool.size() + 1;
        let slice_len = candidates.len().div_ceil(slices).max(1);
        let mut chunks = candidates.chunks(slice_len);
        let own = chunks.next().unwrap_or(&[]);
        let (tx, rx) = bounded::<SliceResult>(slices);
        let mut dispatched = 0;
        for chunk in chunks {
            let db = Arc::clone(db);
            let region = region.clone();
            let tx = tx.clone();
            let chunk = chunk.to_vec();
            let job: Job = Box::new(move || {
                let _ = tx.send(db.refine_slice(&chunk, &region));
            });
            if let Err(job) = self.pool.execute(job) {
                job();
            }
            dispatched += 1;
        }
        drop(tx);
        // Refine our own slice while the workers chew on theirs.
        let mut outcomes: Vec<SliceResult> = vec![db.refine_slice(own, region)];
        for _ in 0..dispatched {
            match rx.recv() {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => break,
            }
        }
        let mut answer = RangeAnswer {
            candidates: candidates.len(),
            stats,
            ..RangeAnswer::default()
        };
        for outcome in outcomes {
            let (must, may) = outcome?;
            answer.must.extend(must);
            answer.may.extend(may);
        }
        answer.normalize();
        Ok(answer)
    }

    fn record_range(&self, elapsed: Duration, result: &Result<RangeAnswer, CoreError>) {
        match result {
            Ok(answer) => self.stats.record(
                elapsed,
                answer.candidates,
                answer.must.len() + answer.may.len(),
                false,
            ),
            Err(_) => self.stats.record(elapsed, 0, 0, true),
        }
    }

    fn record_result(&self, elapsed: Duration, result: &Result<QueryResult, QueryError>) {
        match result {
            Ok(QueryResult::Range(answer)) => self.stats.record(
                elapsed,
                answer.candidates,
                answer.must.len() + answer.may.len(),
                false,
            ),
            Ok(_) => self.stats.record(elapsed, 0, 0, false),
            Err(_) => self.stats.record(elapsed, 0, 0, true),
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Evaluates one batch request against a snapshot database (serial
/// refine; runs on a pool worker).
fn execute_request(db: &Database, request: BatchRequest) -> Result<QueryResult, QueryError> {
    let core = |e: CoreError| QueryError::Exec(ExecError::Core(e));
    match request {
        BatchRequest::Region(region) => db
            .range_query(&region)
            .map(QueryResult::Range)
            .map_err(core),
        BatchRequest::WithinPoint { center, radius, t } => db
            .within_distance_of_point(center, radius, t)
            .map(QueryResult::Range)
            .map_err(core),
        BatchRequest::Text(src) => modb_query::run(db, &src),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{
        DatabaseConfig, MovingObject, PolicyDescriptor, PositionAttribute, UpdateMessage,
        UpdatePosition,
    };
    use modb_geom::{Polygon, Rect};
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn shared(n_objects: u64) -> SharedDatabase {
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)],
        )
        .unwrap();
        let network = RouteNetwork::from_routes([route]).unwrap();
        let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));
        for i in 0..n_objects {
            db.register_moving(MovingObject {
                id: ObjectId(i),
                name: format!("veh-{i}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(i as f64, 0.0),
                    start_arc: i as f64,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: 1.5,
                trip_end: None,
            })
            .unwrap();
        }
        db
    }

    fn manual_config() -> QueryEngineConfig {
        QueryEngineConfig {
            epoch_interval: None,
            ..QueryEngineConfig::default()
        }
    }

    fn region(x0: f64, x1: f64, t: f64) -> QueryRegion {
        let g = Polygon::rectangle(&Rect::new(Point::new(x0, -1.0), Point::new(x1, 1.0))).unwrap();
        QueryRegion::at_instant(g, t)
    }

    #[test]
    fn snapshot_matches_locked_reads() {
        let db = shared(100);
        let engine = QueryEngine::new(db.clone(), manual_config());
        for (x0, x1, t) in [(0.0, 50.0, 0.0), (10.0, 400.0, 5.0), (0.0, 1000.0, 2.0)] {
            let r = region(x0, x1, t);
            let locked = db.range_query(&r).unwrap();
            let snap = engine.range_query(&r).unwrap();
            assert_eq!(locked, snap, "x=[{x0},{x1}] t={t}");
        }
        let locked = db
            .within_distance_of_point(Point::new(50.0, 0.0), 20.0, 1.0)
            .unwrap();
        let snap = engine
            .within_distance_of_point(Point::new(50.0, 0.0), 20.0, 1.0)
            .unwrap();
        assert_eq!(locked, snap);
        assert_eq!(
            engine.position_of(ObjectId(3), 2.0).unwrap(),
            db.position_of(ObjectId(3), 2.0).unwrap()
        );
    }

    #[test]
    fn parallel_refine_matches_serial() {
        let db = shared(500);
        let serial = QueryEngine::new(
            db.clone(),
            QueryEngineConfig {
                parallel_threshold: usize::MAX,
                ..manual_config()
            },
        );
        let parallel = QueryEngine::new(
            db.clone(),
            QueryEngineConfig {
                parallel_threshold: 2,
                workers: 4,
                ..manual_config()
            },
        );
        for (x0, x1, t) in [(0.0, 1000.0, 0.0), (100.0, 700.0, 3.0), (0.0, 20.0, 1.0)] {
            let r = region(x0, x1, t);
            assert_eq!(
                serial.range_query(&r).unwrap(),
                parallel.range_query(&r).unwrap(),
                "x=[{x0},{x1}] t={t}"
            );
        }
        assert!(parallel.stats().parallel_refines >= 2);
        assert_eq!(serial.stats().parallel_refines, 0);
    }

    #[test]
    fn staleness_is_bounded_by_publication() {
        let db = shared(10);
        let engine = QueryEngine::new(db.clone(), manual_config());
        let epoch0 = engine.snapshot().epoch();
        db.apply_update(
            ObjectId(0),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(500.0), 1.0),
        )
        .unwrap();
        // The snapshot still answers from the pre-update state…
        assert_eq!(
            engine.position_of(ObjectId(0), 5.0).unwrap().arc,
            5.0,
            "snapshot is stale until the next publish"
        );
        // …until a new epoch is published.
        let epoch1 = engine.publish_now();
        assert_eq!(epoch1, epoch0 + 1);
        assert_eq!(engine.position_of(ObjectId(0), 5.0).unwrap().arc, 500.0);
        assert_eq!(engine.snapshot().epoch(), epoch1);
    }

    #[test]
    fn background_publisher_advances_epochs() {
        let db = shared(5);
        let engine = QueryEngine::new(
            db.clone(),
            QueryEngineConfig {
                epoch_interval: Some(Duration::from_millis(2)),
                ..QueryEngineConfig::default()
            },
        );
        db.apply_update(
            ObjectId(0),
            &UpdateMessage::basic(1.0, UpdatePosition::Arc(123.0), 1.0),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.snapshot().epoch() < 2 {
            assert!(Instant::now() < deadline, "publisher never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The update became visible without any manual publish.
        assert_eq!(engine.position_of(ObjectId(0), 1.0).unwrap().arc, 123.0);
        let stats = engine.shutdown();
        assert!(stats.epoch >= 2);
    }

    #[test]
    fn batch_preserves_order_and_verdicts() {
        let db = shared(50);
        let engine = QueryEngine::new(db.clone(), manual_config());
        let results = engine.execute_batch(vec![
            BatchRequest::Region(region(0.0, 30.0, 0.0)),
            BatchRequest::Text("RETRIEVE POSITION OF OBJECT 7 AT TIME 2".into()),
            BatchRequest::Text("garbage".into()),
            BatchRequest::WithinPoint {
                center: Point::new(10.0, 0.0),
                radius: 5.0,
                t: 0.0,
            },
        ]);
        assert_eq!(results.len(), 4);
        let expected = db.range_query(&region(0.0, 30.0, 0.0)).unwrap();
        assert_eq!(results[0].as_ref().unwrap().as_range().unwrap(), &expected);
        assert_eq!(results[1].as_ref().unwrap().as_position().unwrap().arc, 9.0);
        assert!(matches!(results[2], Err(QueryError::Parse(_))));
        let expected = db
            .within_distance_of_point(Point::new(10.0, 0.0), 5.0, 0.0)
            .unwrap();
        assert_eq!(results[3].as_ref().unwrap().as_range().unwrap(), &expected);
        let stats = engine.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn run_batch_splits_statements() {
        let db = shared(20);
        let engine = QueryEngine::new(db, manual_config());
        let results = engine.run_batch(
            "RETRIEVE POSITION OF OBJECT 1 AT TIME 0;\n\
             RETRIEVE OBJECTS INSIDE RECT (0, -1, 10, 1) AT TIME 0;",
        );
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
    }

    #[test]
    fn stats_report_latency_and_ratio() {
        let db = shared(100);
        let engine = QueryEngine::new(db, manual_config());
        for _ in 0..20 {
            engine.range_query(&region(0.0, 200.0, 0.0)).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 20);
        assert_eq!(stats.epoch_queries, 20);
        assert!(stats.p50_us > 0);
        assert!(stats.p99_us >= stats.p50_us);
        assert!(stats.candidates > 0);
        assert!(stats.match_ratio() > 0.0 && stats.match_ratio() <= 1.0);
        let line = stats.to_string();
        assert!(line.contains("p99"), "{line}");
        assert!(line.contains("epoch 0"), "{line}");
        // Publishing resets the per-epoch counter but not totals.
        engine.publish_now();
        let stats = engine.stats();
        assert_eq!(stats.queries, 20);
        assert_eq!(stats.epoch_queries, 0);
    }

    #[test]
    fn run_batch_rejects_unterminated_literal_as_one_verdict() {
        let db = shared(5);
        let engine = QueryEngine::new(db, manual_config());
        let results = engine.run_batch(
            "RETRIEVE POSITION OF OBJECT 'veh-1 AT TIME 0; RETRIEVE POSITION OF OBJECT 2 AT TIME 0",
        );
        assert_eq!(results.len(), 1, "an unsplittable script is one verdict");
        assert!(matches!(results[0], Err(QueryError::Parse(_))));
        // Quoted `;` still splits correctly (two statements, not three).
        let engine2 = QueryEngine::new(shared(5), manual_config());
        let results = engine2.run_batch(
            "RETRIEVE POSITION OF OBJECT 'a;b' AT TIME 0; RETRIEVE POSITION OF OBJECT 1 AT TIME 0",
        );
        assert_eq!(results.len(), 2);
        assert!(results[1].is_ok());
    }

    #[test]
    fn percentile_edges() {
        // Empty histogram: every quantile is 0.
        let stats = QueryStats::default();
        assert_eq!(stats.percentile_us(0.5), 0);
        assert_eq!(stats.percentile_us(1.0), 0);
        // One sample at ~100 µs: every quantile is its bucket's upper
        // bound (128 = 2^7).
        stats.record(Duration::from_micros(100), 0, 0, false);
        assert_eq!(stats.percentile_us(0.001), 128);
        assert_eq!(stats.percentile_us(1.0), 128);
        // A latency beyond the top bucket saturates instead of indexing
        // out of bounds, and q = 1.0 lands on it.
        stats.record(Duration::from_secs(u64::MAX / 1_000_000_000), 0, 0, false);
        assert_eq!(stats.percentile_us(1.0), 1u64 << (LATENCY_BUCKETS - 1));
        // The median is still the small sample.
        assert_eq!(stats.percentile_us(0.5), 128);
    }

    #[test]
    fn snapshot_is_never_torn_under_concurrent_records() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let stats = Arc::new(QueryStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|_| {
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // matches < candidates per record, error on some.
                        stats.record(Duration::from_micros(7), 5, 2, n.is_multiple_of(4));
                        n += 1;
                    }
                })
            })
            .collect();
        for _ in 0..5_000 {
            let snap = stats.snapshot(Duration::ZERO);
            assert!(
                snap.epoch_queries <= snap.queries,
                "torn: epoch_queries {} > queries {}",
                snap.epoch_queries,
                snap.queries
            );
            assert!(
                snap.errors <= snap.queries,
                "torn: errors {} > queries {}",
                snap.errors,
                snap.queries
            );
            assert!(
                snap.matches <= snap.candidates,
                "torn: matches {} > candidates {}",
                snap.matches,
                snap.candidates
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn zero_interval_disables_publisher_and_age_tracks_last_publication() {
        let db = shared(5);
        let engine = QueryEngine::new(
            db.clone(),
            QueryEngineConfig {
                epoch_interval: Some(Duration::ZERO),
                ..QueryEngineConfig::default()
            },
        );
        // No background publisher: the epoch stays put…
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            engine.snapshot().epoch(),
            0,
            "a zero interval must not spawn a publisher"
        );
        // …and the reported age keeps accruing from the last *actual*
        // publication (engine start), not from some phantom refresh.
        let age = engine.stats().snapshot_age;
        assert!(
            age >= Duration::from_millis(30),
            "age {age:?} should grow while no publishes happen"
        );
        // A manual publish is a real publication: the age resets.
        engine.publish_now();
        assert!(engine.stats().snapshot_age < age);
        assert_eq!(engine.snapshot().epoch(), 1);
    }

    #[test]
    fn incremental_publish_applies_deltas_and_reuses_the_buffer() {
        let db = shared(50);
        let engine = QueryEngine::new(db.clone(), manual_config());
        // Epoch 0 and the first publish are both full (cold buffer);
        // afterwards every publish rides the change-log delta.
        engine.publish_now();
        for round in 1..=3u64 {
            db.apply_update(
                ObjectId(round),
                &UpdateMessage::basic(round as f64, UpdatePosition::Arc(500.0 + round as f64), 1.0),
            )
            .unwrap();
            engine.publish_now();
            assert_eq!(
                engine
                    .position_of(ObjectId(round), round as f64)
                    .unwrap()
                    .arc,
                500.0 + round as f64
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.full_publishes, 2);
        assert_eq!(stats.delta_publishes, 3);
        // The delta-published snapshot answers exactly like the locked DB
        // (its incrementally maintained index may differ in traversal
        // diagnostics, never in answers).
        let r = region(0.0, 1000.0, 2.0);
        let expected = db.range_query(&r).unwrap();
        let got = engine.range_query(&r).unwrap();
        assert_eq!(got.must, expected.must);
        assert_eq!(got.may, expected.may);
        assert_eq!(got.candidates, expected.candidates);
    }

    #[test]
    fn epoch_snapshots_preserve_band_partitions() {
        use modb_core::BandConfig;
        // Two speed bands; a mixed fleet of slow (city) and fast
        // (highway-capable) vehicles on one route.
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)],
        )
        .unwrap();
        let network = RouteNetwork::from_routes([route]).unwrap();
        let cfg = DatabaseConfig {
            bands: BandConfig::uniform(&[1.0], 5.0).unwrap(),
            ..DatabaseConfig::default()
        };
        let db = SharedDatabase::new(Database::new(network, cfg));
        for i in 0..40u64 {
            let fast = i % 4 == 0;
            db.register_moving(MovingObject {
                id: ObjectId(i),
                name: format!("veh-{i}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(i as f64, 0.0),
                    start_arc: i as f64,
                    direction: Direction::Forward,
                    speed: if fast { 1.8 } else { 0.5 },
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: if fast { 2.5 } else { 0.8 },
                trip_end: None,
            })
            .unwrap();
        }
        let engine = QueryEngine::new(db.clone(), manual_config());
        // Epoch 0 (full clone at engine start) already partitions.
        let live = db.with_read(|d| d.index_band_stats());
        assert_eq!(live.len(), 2);
        assert_eq!((live[0].entries, live[1].entries), (30, 10));
        let snap = engine.snapshot();
        assert_eq!(snap.database().index_band_stats(), live);

        // Delta publishes (shadow catch-up) keep partitions intact, and
        // snapshot answers keep matching locked reads.
        engine.publish_now();
        for round in 1..=3u64 {
            db.apply_update(
                ObjectId(round),
                &UpdateMessage::basic(round as f64, UpdatePosition::Arc(400.0 + round as f64), 0.5),
            )
            .unwrap();
            engine.publish_now();
            let snap = engine.snapshot();
            assert_eq!(
                snap.database().index_band_stats(),
                db.with_read(|d| d.index_band_stats()),
                "round {round}"
            );
            let r = region(0.0, 1000.0, round as f64);
            let expected = db.range_query(&r).unwrap();
            let got = engine.range_query(&r).unwrap();
            assert_eq!(got.must, expected.must);
            assert_eq!(got.may, expected.may);
        }
        assert!(engine.stats().delta_publishes >= 3, "delta path exercised");
    }

    #[test]
    fn full_clone_mode_never_takes_the_delta_path() {
        let db = shared(20);
        let engine = QueryEngine::new(
            db.clone(),
            QueryEngineConfig {
                incremental_publish: false,
                ..manual_config()
            },
        );
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(1.0, UpdatePosition::Arc(700.0), 1.0),
        )
        .unwrap();
        engine.publish_now();
        engine.publish_now();
        let stats = engine.stats();
        assert_eq!(stats.delta_publishes, 0);
        assert_eq!(stats.full_publishes, 3);
        assert_eq!(engine.position_of(ObjectId(1), 1.0).unwrap().arc, 700.0);
    }

    #[test]
    fn drop_with_background_threads_does_not_hang() {
        let db = shared(5);
        let engine = QueryEngine::new(
            db,
            QueryEngineConfig {
                epoch_interval: Some(Duration::from_millis(1)),
                report_interval: Some(Duration::from_millis(1)),
                ..QueryEngineConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(5));
        drop(engine); // must join publisher, reporter, and pool
    }

    #[test]
    fn concurrent_snapshot_queries_with_live_writers() {
        let db = shared(200);
        let engine = QueryEngine::new(
            db.clone(),
            QueryEngineConfig {
                epoch_interval: Some(Duration::from_millis(1)),
                parallel_threshold: 64,
                ..QueryEngineConfig::default()
            },
        );
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let db = db.clone();
                s.spawn(move || {
                    for round in 1..=100u64 {
                        for i in (w * 100)..(w * 100 + 100) {
                            db.apply_update(
                                ObjectId(i),
                                &UpdateMessage::basic(
                                    round as f64 * 0.05,
                                    UpdatePosition::Arc((i as f64 + round as f64).min(1000.0)),
                                    0.9,
                                ),
                            )
                            .unwrap();
                        }
                    }
                });
            }
            for _ in 0..4 {
                let engine = &engine;
                s.spawn(move || {
                    for _ in 0..100 {
                        let r = engine.range_query(&region(0.0, 1000.0, 5.0)).unwrap();
                        assert!(r.candidates <= 200);
                        // A snapshot is internally consistent: the scan
                        // baseline over the same snapshot agrees.
                        let snap = engine.snapshot();
                        let a = snap
                            .database()
                            .range_query(&region(0.0, 400.0, 5.0))
                            .unwrap();
                        let b = snap
                            .database()
                            .range_query_scan(&region(0.0, 400.0, 5.0))
                            .unwrap();
                        assert_eq!(a.must, b.must);
                        assert_eq!(a.may, b.may);
                    }
                });
            }
        });
        let stats = engine.shutdown();
        assert!(stats.queries >= 400);
    }
}
