//! A [`SharedDatabase`] paired with a write-ahead log and snapshots: the
//! durable deployment shape.
//!
//! [`DurableDatabase`] routes every mutation through both the in-memory
//! database and the log, so the state in `dir` can always be rebuilt by
//! [`DurableDatabase::open`] (or bare [`SharedDatabase::recover`]):
//!
//! - **Position updates** are applied first and logged immediately
//!   after, accepted or not — replay re-derives the same verdicts, and
//!   the log doubles as a complete update-stream trace. Apply-before-log
//!   is the **watermark invariant** that makes online snapshots sound:
//!   under the writer lock, every record with an assigned LSN is already
//!   reflected in the in-memory state.
//! - **Registrations, removals, and route insertions** are logged *after*
//!   they succeed, so the log carries only mutations that actually
//!   changed state.
//! - **Snapshots** ([`DurableDatabase::snapshot`]) bound replay work and
//!   are **pause-free**: the watermark LSN is read under the writer
//!   lock, the state is delta-synced into a private [`ShadowBuffer`]
//!   copy under a brief read lock (O(changes) since the last snapshot),
//!   and serialization runs with *no* database lock held — ingest and
//!   queries proceed throughout. Replay from the watermark re-applies
//!   any overlap idempotently (re-deliveries of an already-applied
//!   update are no-ops; duplicate registrations re-reject).

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use modb_core::{Database, MovingObject, ObjectId, StationaryObject, UpdateMessage};
use modb_routes::Route;
use modb_wal::{
    write_snapshot, EpochHistory, RecoveryReport, SharedWal, WalError, WalOptions, WalRecord,
    WalWriter,
};

use crate::ingest::IngestService;
use crate::replication::ShipHorizon;
use crate::shadow::ShadowBuffer;
use crate::shared::SharedDatabase;

/// A shared database whose mutations are persisted to a directory of
/// write-ahead-log segments and snapshots.
#[derive(Debug, Clone)]
pub struct DurableDatabase {
    db: SharedDatabase,
    wal: SharedWal,
    dir: PathBuf,
    /// Delta-maintained copy reused across snapshots; the mutex also
    /// serializes concurrent snapshot takers (clones share it).
    shadow: Arc<Mutex<ShadowBuffer>>,
    /// Per-follower acknowledged LSNs; their minimum is the ship barrier
    /// the post-snapshot compaction pass respects.
    horizon: Arc<ShipHorizon>,
    /// Leadership epochs of this log (the promotion divergence guard);
    /// shared with the replication listener's handshake gate.
    epochs: Arc<Mutex<EpochHistory>>,
}

impl DurableDatabase {
    /// Starts durability for a freshly built database: creates the log in
    /// `dir` and writes a genesis snapshot (which carries the route
    /// network and configuration — the log alone cannot seed those).
    ///
    /// # Errors
    ///
    /// [`WalError::AlreadyExists`] when `dir` already holds a log (use
    /// [`DurableDatabase::open`]); I/O failures.
    pub fn create(
        dir: impl Into<PathBuf>,
        db: Database,
        opts: WalOptions,
    ) -> Result<Self, WalError> {
        let dir = dir.into();
        let writer = WalWriter::create(&dir, opts)?;
        write_snapshot(&dir, &db, writer.next_lsn())?;
        let epochs = EpochHistory::load(&dir)?;
        Ok(DurableDatabase {
            db: SharedDatabase::new(db),
            wal: SharedWal::new(writer),
            dir,
            shadow: Arc::new(Mutex::new(ShadowBuffer::new())),
            horizon: Arc::new(ShipHorizon::new()),
            epochs: Arc::new(Mutex::new(epochs)),
        })
    }

    /// Reopens a durability directory: recovers the state (snapshot +
    /// replay + torn-tail truncation) and resumes the log where it left
    /// off. Returns the handle and the recovery report.
    ///
    /// # Errors
    ///
    /// See [`modb_wal::recover`] and [`WalWriter::resume`].
    pub fn open(
        dir: impl Into<PathBuf>,
        opts: WalOptions,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let dir = dir.into();
        let recovered = modb_wal::recover(&dir)?;
        let writer = WalWriter::resume(&dir, opts, recovered.report.next_lsn)?;
        let epochs = EpochHistory::load(&dir)?;
        Ok((
            DurableDatabase {
                db: SharedDatabase::new(recovered.database),
                wal: SharedWal::new(writer),
                dir,
                shadow: Arc::new(Mutex::new(ShadowBuffer::new())),
                horizon: Arc::new(ShipHorizon::new()),
                epochs: Arc::new(Mutex::new(epochs)),
            },
            recovered.report,
        ))
    }

    /// Wraps state a promotion produced: the standby's database, its
    /// sealed log, and — crucially — its live ship horizon and epoch
    /// history, so downstream acks registered before the switch keep
    /// pinning compaction and the replication gate sees the new epoch.
    pub(crate) fn from_parts(
        db: SharedDatabase,
        wal: SharedWal,
        dir: PathBuf,
        horizon: Arc<ShipHorizon>,
        epochs: Arc<Mutex<EpochHistory>>,
    ) -> Self {
        DurableDatabase {
            db,
            wal,
            dir,
            shadow: Arc::new(Mutex::new(ShadowBuffer::new())),
            horizon,
            epochs,
        }
    }

    /// The in-memory handle (queries go here; they never touch the log).
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The shared log writer.
    pub fn wal(&self) -> &SharedWal {
        &self.wal
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The replication horizon: connected followers' acknowledged LSNs,
    /// whose minimum caps how far compaction may delete log (see
    /// [`DurableDatabase::serve_replication`]).
    pub fn ship_horizon(&self) -> &Arc<ShipHorizon> {
        &self.horizon
    }

    /// The leadership-epoch history of this log, shared with the
    /// replication handshake gate.
    pub(crate) fn epochs(&self) -> &Arc<Mutex<EpochHistory>> {
        &self.epochs
    }

    /// The current leadership epoch (1 for a log that never lived
    /// through a promotion).
    pub fn epoch(&self) -> u64 {
        self.epochs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .current()
    }

    /// Spawns a WAL-backed ingest service over this database (see
    /// [`IngestService::spawn_with_wal`]).
    pub fn ingest_service(&self, n_workers: usize, queue_depth: usize) -> IngestService {
        IngestService::spawn_with_wal(self.db.clone(), self.wal.clone(), n_workers, queue_depth)
    }

    /// Spawns a [`crate::QueryEngine`] over the in-memory handle: queries
    /// run against epoch snapshots (never touching the log) while ingest
    /// proceeds on the live database.
    pub fn query_engine(&self, config: crate::QueryEngineConfig) -> crate::QueryEngine {
        crate::QueryEngine::new(self.db.clone(), config)
    }

    /// Registers a moving object, logging it on success.
    ///
    /// # Errors
    ///
    /// Database rejections ([`WalError::Core`]) and log I/O failures.
    pub fn register_moving(&self, obj: MovingObject) -> Result<(), WalError> {
        self.db.register_moving(obj.clone())?;
        self.wal.append(&WalRecord::RegisterMoving(obj))?;
        Ok(())
    }

    /// Registers a stationary landmark, logging it on success.
    ///
    /// # Errors
    ///
    /// Database rejections and log I/O failures.
    pub fn insert_stationary(&self, obj: StationaryObject) -> Result<(), WalError> {
        self.db.insert_stationary(obj.clone())?;
        self.wal.append(&WalRecord::InsertStationary(obj))?;
        Ok(())
    }

    /// Adds a route, logging it on success.
    ///
    /// # Errors
    ///
    /// Database rejections and log I/O failures.
    pub fn insert_route(&self, route: Route) -> Result<(), WalError> {
        self.db.insert_route(route.clone())?;
        self.wal.append(&WalRecord::InsertRoute(route))?;
        Ok(())
    }

    /// Removes a moving object, logging it on success.
    ///
    /// # Errors
    ///
    /// Database rejections and log I/O failures.
    pub fn remove_moving(&self, id: ObjectId) -> Result<MovingObject, WalError> {
        let obj = self.db.remove_moving(id)?;
        self.wal.append(&WalRecord::RemoveMoving(id))?;
        Ok(obj)
    }

    /// Applies a position update and logs the envelope immediately after
    /// (accepted or not — the log stays a complete update-stream trace,
    /// and replay re-derives the same verdicts). Apply-before-log keeps
    /// the watermark invariant the pause-free snapshot relies on: a
    /// record with an assigned LSN is never ahead of the in-memory
    /// state. For high-volume ingestion use
    /// [`DurableDatabase::ingest_service`], which batches log writes per
    /// worker instead of locking the writer per update.
    ///
    /// # Errors
    ///
    /// Log I/O failures ([`WalError::Io`] — the update was applied but
    /// not logged, like an ingest-service `wal_error`); database
    /// rejections ([`WalError::Core`] — the envelope is still logged,
    /// mirroring replay semantics).
    pub fn apply_update(&self, id: ObjectId, msg: &UpdateMessage) -> Result<(), WalError> {
        let verdict = self.db.apply_update(id, msg);
        self.wal.append(&WalRecord::Update { id, msg: *msg })?;
        verdict?;
        Ok(())
    }

    /// Takes a pause-free point-in-time snapshot: fsyncs the log and
    /// reads the watermark LSN under the writer lock, delta-syncs a
    /// private shadow copy under a brief read lock (O(changes) since the
    /// last snapshot), serializes it with **no database lock held**, then
    /// compacts the directory down to
    /// [`modb_wal::DEFAULT_SNAPSHOT_RETENTION`] snapshots (deleting log
    /// segments every retained snapshot covers). Returns the snapshot
    /// path.
    ///
    /// Safe while ingest is live: apply-before-log means every record
    /// below the watermark is already in the state the shadow captures;
    /// mutations racing past the watermark may also be captured, and
    /// replay re-applies that overlap idempotently.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn snapshot(&self) -> Result<PathBuf, WalError> {
        self.snapshot_with_retention(modb_wal::DEFAULT_SNAPSHOT_RETENTION)
    }

    /// [`DurableDatabase::snapshot`] with an explicit snapshot retention
    /// count (clamped to ≥ 1) for the post-snapshot compaction pass.
    /// Compaction runs under the writer lock, so it cannot race a segment
    /// rotation.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn snapshot_with_retention(&self, retention: usize) -> Result<PathBuf, WalError> {
        // One snapshot at a time; queries and ingest never touch this
        // mutex.
        let mut shadow = self.shadow.lock().unwrap_or_else(|e| e.into_inner());
        // Watermark: under the writer lock every assigned LSN is already
        // applied (apply-before-log everywhere), so state captured after
        // this point reflects at least every record below `lsn`.
        let lsn = self.wal.with_writer(|w| -> Result<u64, WalError> {
            w.sync()?;
            Ok(w.next_lsn())
        })?;
        // Brief read lock: pull the shadow copy forward by the change
        // log. Ingest blocks only for this O(changes) sync.
        let (state, report) = self.db.with_read(|src| shadow.refresh(src));
        shadow.reap(); // any buffer the refresh retired drops lock-free
                       // Serialization runs unlocked — ingest and queries proceed.
        let path = write_snapshot(&self.dir, &state, lsn)?;
        shadow.store(state, report.cursor);
        // Compaction under the writer lock so it cannot race a segment
        // rotation. The ship barrier (minimum acknowledged LSN across
        // connected replication followers) caps segment deletion so a
        // slow-but-live follower is never orphaned mid-stream.
        self.wal.with_writer(|_writer| {
            modb_wal::compact_with_barrier(&self.dir, retention, self.horizon.min())
        })?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{DatabaseConfig, PolicyDescriptor, PositionAttribute, UpdatePosition};
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, RouteId, RouteNetwork};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("modb-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_db() -> Database {
        let route = Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap();
        Database::new(
            RouteNetwork::from_routes([route]).unwrap(),
            DatabaseConfig::default(),
        )
    }

    fn vehicle(id: u64, arc: f64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(arc, 0.0),
                start_arc: arc,
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        }
    }

    #[test]
    fn create_mutate_reopen_preserves_state() {
        let dir = tmp("reopen");
        let durable = DurableDatabase::create(&dir, fresh_db(), WalOptions::default()).unwrap();
        durable.register_moving(vehicle(1, 10.0)).unwrap();
        durable.register_moving(vehicle(2, 40.0)).unwrap();
        durable
            .insert_stationary(StationaryObject::new(
                ObjectId(100),
                "depot",
                Point::new(12.0, 0.0),
            ))
            .unwrap();
        durable
            .apply_update(
                ObjectId(1),
                &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
            )
            .unwrap();
        // A rejected update is logged and the rejection surfaces.
        assert!(matches!(
            durable.apply_update(
                ObjectId(1),
                &UpdateMessage::basic(4.0, UpdatePosition::Arc(15.0), 0.5),
            ),
            Err(WalError::Core(_))
        ));
        durable.remove_moving(ObjectId(2)).unwrap();
        let expected = durable.database().with_read(|db| db.clone());
        drop(durable);

        let (reopened, report) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 0, "only the genesis snapshot exists");
        assert_eq!(report.rejected, 1, "the stale update re-rejects on replay");
        reopened.database().with_read(|db| {
            assert_eq!(db.moving_count(), expected.moving_count());
            assert_eq!(db.stationary_count(), expected.stationary_count());
            assert_eq!(
                db.moving(ObjectId(1)).unwrap(),
                expected.moving(ObjectId(1)).unwrap()
            );
            assert_eq!(db.history_of(ObjectId(1)), expected.history_of(ObjectId(1)));
        });
        // The reopened handle keeps logging at the right LSN.
        reopened.register_moving(vehicle(3, 70.0)).unwrap();
        drop(reopened);
        let (again, report) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        assert!(again
            .database()
            .with_read(|db| db.moving(ObjectId(3)).is_ok()));
        assert_eq!(report.next_lsn, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bounds_replay() {
        let dir = tmp("snapshot");
        let durable = DurableDatabase::create(&dir, fresh_db(), WalOptions::default()).unwrap();
        for i in 1..=5u64 {
            durable
                .register_moving(vehicle(i, 10.0 * i as f64))
                .unwrap();
        }
        let path = durable.snapshot().unwrap();
        assert!(path.exists());
        durable
            .apply_update(
                ObjectId(1),
                &UpdateMessage::basic(2.0, UpdatePosition::Arc(11.0), 1.0),
            )
            .unwrap();
        drop(durable);
        let (reopened, report) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.snapshot_lsn, 5);
        assert_eq!(report.replayed, 1, "only the post-snapshot update replays");
        assert_eq!(report.skipped_records, 5);
        reopened.database().with_read(|db| {
            assert_eq!(db.moving_count(), 5);
            assert_eq!(db.moving(ObjectId(1)).unwrap().attr.start_arc, 11.0);
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_old_snapshots_and_covered_segments() {
        let dir = tmp("compact");
        let opts = WalOptions {
            max_segment_bytes: 256, // force frequent rotation
            ..WalOptions::default()
        };
        let durable = DurableDatabase::create(&dir, fresh_db(), opts).unwrap();
        durable.register_moving(vehicle(1, 10.0)).unwrap();
        for round in 1..=6u64 {
            for step in 0..10u64 {
                durable
                    .apply_update(
                        ObjectId(1),
                        &UpdateMessage::basic(
                            round as f64 + step as f64 * 0.01,
                            UpdatePosition::Arc(10.0 + step as f64),
                            0.9,
                        ),
                    )
                    .unwrap();
            }
            durable.snapshot().unwrap();
        }
        // Genesis + 6 snapshots taken, but retention keeps only the
        // newest DEFAULT_SNAPSHOT_RETENTION; covered segments are gone.
        let snaps = modb_wal::list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), modb_wal::DEFAULT_SNAPSHOT_RETENTION);
        let segs = modb_wal::list_segments(&dir).unwrap();
        for pair in segs.windows(2) {
            assert!(pair[1].0 > snaps[0].0, "covered segment survived");
        }
        // Reopening still recovers the exact final state.
        let expected = durable.database().with_read(|db| db.clone());
        drop(durable);
        let (reopened, report) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.replayed, 0, "snapshot is current");
        reopened.database().with_read(|db| {
            assert_eq!(
                db.moving(ObjectId(1)).unwrap(),
                expected.moving(ObjectId(1)).unwrap()
            );
        });
        // Tight retention through the explicit knob.
        reopened.snapshot_with_retention(1).unwrap();
        assert_eq!(modb_wal::list_snapshots(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_dir_and_open_needs_snapshot() {
        let dir = tmp("guards");
        let durable = DurableDatabase::create(&dir, fresh_db(), WalOptions::default()).unwrap();
        drop(durable);
        assert!(matches!(
            DurableDatabase::create(&dir, fresh_db(), WalOptions::default()),
            Err(WalError::AlreadyExists(_))
        ));
        // A directory with no snapshot cannot be opened.
        let empty = tmp("guards-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            DurableDatabase::open(&empty, WalOptions::default()),
            Err(WalError::NoSnapshot(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn wal_backed_ingest_round_trips_through_recovery() {
        let dir = tmp("ingest");
        let durable = DurableDatabase::create(&dir, fresh_db(), WalOptions::default()).unwrap();
        for i in 0..20u64 {
            durable.register_moving(vehicle(i, i as f64)).unwrap();
        }
        let service = durable.ingest_service(4, 64);
        let handle = service.handle();
        for round in 1..=10u64 {
            for i in 0..20u64 {
                handle
                    .send(crate::ingest::UpdateEnvelope {
                        id: ObjectId(i),
                        msg: UpdateMessage::basic(
                            round as f64,
                            UpdatePosition::Arc(i as f64 + round as f64 * 0.1),
                            0.9,
                        ),
                    })
                    .unwrap();
            }
        }
        drop(handle);
        let stats = service.shutdown();
        assert_eq!(stats.accepted, 200);
        assert_eq!(stats.wal_errors, 0);
        let expected = durable.database().with_read(|db| db.clone());
        drop(durable);
        let (reopened, report) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.replayed, 220, "20 registrations + 200 updates");
        reopened.database().with_read(|db| {
            for i in 0..20u64 {
                assert_eq!(
                    db.moving(ObjectId(i)).unwrap(),
                    expected.moving(ObjectId(i)).unwrap()
                );
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_proceeds_during_an_in_flight_snapshot() {
        use modb_wal::FsyncPolicy;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = tmp("online-snap");
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            ..WalOptions::default()
        };
        let durable = DurableDatabase::create(&dir, fresh_db(), opts).unwrap();
        for i in 1..=4000u64 {
            durable
                .register_moving(vehicle(i, (i % 90) as f64))
                .unwrap();
        }
        // Warm-up snapshot so the in-flight one below also exercises the
        // delta-synced shadow path.
        durable.snapshot().unwrap();

        // Serializing 4000 objects holds no database lock, so the writer
        // loop below must land updates strictly inside the snapshot
        // window. The outer loop re-takes the snapshot in the (unlikely)
        // event the scheduler never interleaved the two threads.
        let in_flight = Arc::new(AtomicBool::new(false));
        let mut updates_during_snapshot = 0u64;
        let mut t = 1.0f64;
        for _attempt in 0..20 {
            std::thread::scope(|s| {
                let snapper = {
                    let durable = durable.clone();
                    let in_flight = Arc::clone(&in_flight);
                    s.spawn(move || {
                        in_flight.store(true, Ordering::SeqCst);
                        let path = durable.snapshot().unwrap();
                        in_flight.store(false, Ordering::SeqCst);
                        path
                    })
                };
                while !in_flight.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                while in_flight.load(Ordering::SeqCst) {
                    t += 0.001;
                    durable
                        .apply_update(
                            ObjectId(1),
                            &UpdateMessage::basic(t, UpdatePosition::Arc(20.0 + (t % 50.0)), 0.9),
                        )
                        .unwrap();
                    updates_during_snapshot += 1;
                }
                assert!(snapper.join().unwrap().exists());
            });
            if updates_during_snapshot > 0 {
                break;
            }
        }
        assert!(
            updates_during_snapshot > 0,
            "ingest never progressed while a snapshot was in flight"
        );

        // Crash (drop) and recover: replay resumes from the watermark and
        // converges with the live state, including updates that raced the
        // serialization (the overlap re-applies idempotently).
        let expected = durable.database().with_read(|db| db.clone());
        drop(durable);
        let (reopened, report) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        assert!(report.snapshot_lsn > 0, "recovery starts from a snapshot");
        reopened.database().with_read(|db| {
            assert_eq!(db.moving_count(), expected.moving_count());
            assert_eq!(
                db.moving(ObjectId(1)).unwrap(),
                expected.moving(ObjectId(1)).unwrap()
            );
            assert_eq!(db.history_of(ObjectId(1)), expected.history_of(ObjectId(1)));
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_durable_writes_interleave_with_shared_queries() {
        let dir = tmp("queries");
        let durable = DurableDatabase::create(&dir, fresh_db(), WalOptions::default()).unwrap();
        durable.register_moving(vehicle(1, 10.0)).unwrap();
        let db = durable.database().clone();
        let p = db.position_of(ObjectId(1), 2.0).unwrap();
        assert_eq!(p.arc, 12.0);
        durable
            .insert_route(
                Route::from_vertices(
                    RouteId(2),
                    "spur",
                    vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)],
                )
                .unwrap(),
            )
            .unwrap();
        durable
            .apply_update(
                ObjectId(1),
                &UpdateMessage::route_change(
                    3.0,
                    RouteId(2),
                    UpdatePosition::Arc(50.0),
                    Direction::Forward,
                    1.0,
                ),
            )
            .unwrap();
        drop(durable);
        let (reopened, _) = DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        reopened.database().with_read(|db| {
            assert_eq!(db.moving(ObjectId(1)).unwrap().attr.route, RouteId(2));
            assert!(db.network().get(RouteId(2)).is_ok());
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
