//! Follower-served reads: a standby answers the query protocol itself.
//! The contract under test:
//!
//! - at equal applied LSN (quiescent chain, zero lag clock) a follower's
//!   verdicts are **bit-identical** to the leader's;
//! - a read-your-writes floor the follower cannot reach within its wait
//!   deadline comes back as the typed `Stale { applied, required }`
//!   refusal — bounded, never a hang — and the session survives it;
//! - a chained follower (leader → f1 → f2) keeps converging and serving
//!   after the leader restarts mid-stream;
//! - byte-level faults on the follower's *serving* socket end the
//!   offending session without wedging the front-end.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::replica_harness::{
    assert_closed, batch_payload, frame, raw_handshake, wait_until, Fault, FaultProxy, Scenario,
    WAIT,
};
use common::*;
use modb_server::{
    BatchOutcome, DurableDatabase, QueryClient, QueryEngine, QueryEngineConfig, QueryServer,
    QueryServerConfig, ReplicationServer, StandbyReplica,
};

/// A script touching every query kind plus an error statement (error
/// strings must match too — parity covers the failure side).
const SCRIPT: &str = "RETRIEVE POSITION OF OBJECT 1 AT TIME 20; \
     RETRIEVE OBJECTS INSIDE RECT (0, -1, 1000, 1) AT TIME 20; \
     RETRIEVE 3 NEAREST OBJECTS TO POINT (30, 0) AT TIME 20; \
     RETRIEVE POSITION OF OBJECT 99 AT TIME 20";

/// An engine without background publishing: the serve path republishes
/// on demand when a floor requires it, so parity runs are deterministic.
fn manual_engine(db: &modb_server::SharedDatabase) -> Arc<QueryEngine> {
    Arc::new(db.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }))
}

/// Starts a query front-end on the replica with the given config.
fn follower_front_end(replica: &StandbyReplica, config: QueryServerConfig) -> QueryServer {
    replica
        .serve_queries(manual_engine(replica.database()), "127.0.0.1:0", config)
        .unwrap()
}

/// Leader-side reference verdicts for `script`, from a fresh snapshot.
fn leader_verdicts(
    leader: &DurableDatabase,
    script: &str,
) -> Vec<Result<modb_query::QueryResult, String>> {
    let engine = manual_engine(leader.database());
    engine.publish_now();
    engine
        .run_batch(script)
        .into_iter()
        .map(|v| v.map_err(|e| e.to_string()))
        .collect()
}

/// Statement-for-statement equality, errors compared by display string.
fn assert_bit_identical(
    remote: &[Result<modb_query::QueryResult, String>],
    local: &[Result<modb_query::QueryResult, String>],
    who: &str,
) {
    assert_eq!(remote.len(), local.len(), "{who}: verdict count");
    for (i, (r, l)) in remote.iter().zip(local).enumerate() {
        assert_eq!(r, l, "{who}: statement {i} diverged");
    }
}

#[test]
fn follower_verdicts_are_bit_identical_at_equal_applied_lsn() {
    let s = Scenario::start("reads-parity", 4);
    let replica = s.follower();
    s.churn(1..=30, 4);

    let frontier = s.leader.wal().next_lsn();
    assert!(
        replica.wait_for_lsn(frontier, WAIT),
        "follower never drained"
    );

    let server = follower_front_end(&replica, QueryServerConfig::default());
    let mut client = QueryClient::connect(server.local_addr()).unwrap();
    // Floored at the frontier the follower has applied: the server must
    // republish to cover it and answer; quiescent and caught up, the
    // lag clock is zero, no widening applies, and every verdict — the
    // error string included — is the leader's, bit for bit.
    let remote = match client.batch_attempt(SCRIPT, frontier).unwrap() {
        BatchOutcome::Done(verdicts) => verdicts,
        BatchOutcome::Stale { applied, required } => {
            panic!("reachable floor refused: applied {applied}, required {required}")
        }
    };
    assert_bit_identical(&remote, &leader_verdicts(&s.leader, SCRIPT), "follower");

    client.close();
    server.shutdown();
    s.finish(replica);
}

#[test]
fn unreachable_floor_is_a_typed_stale_refusal_not_a_hang() {
    let s = Scenario::start("reads-stale", 4);
    let replica = s.follower();
    s.churn(1..=10, 4);
    let frontier = s.leader.wal().next_lsn();
    assert!(
        replica.wait_for_lsn(frontier, WAIT),
        "follower never drained"
    );

    let server = follower_front_end(
        &replica,
        QueryServerConfig {
            stale_deadline: Duration::from_millis(100),
            ..QueryServerConfig::default()
        },
    );
    let mut client = QueryClient::connect(server.local_addr()).unwrap();

    // A floor past anything the leader has written: the follower must
    // wait out its deadline and refuse with the typed Stale — carrying
    // its applied watermark and echoing the floor — instead of hanging
    // or answering stale data as if it were fresh.
    let floor = frontier + 50;
    let t0 = Instant::now();
    match client.batch_attempt(SCRIPT, floor).unwrap() {
        BatchOutcome::Stale { applied, required } => {
            assert_eq!(required, floor, "refusal must echo the floor");
            assert!(
                applied >= frontier && applied < floor,
                "refusal watermark {applied} out of range [{frontier}, {floor})"
            );
        }
        BatchOutcome::Done(_) => panic!("unreachable floor was answered"),
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(80),
        "refused before the wait deadline ({elapsed:?}) — floors must get their grace period"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "refusal took {elapsed:?} — Stale must be bounded"
    );

    // The session survives the refusal: the same connection answers a
    // satisfiable floor immediately...
    match client.batch_attempt(SCRIPT, frontier).unwrap() {
        BatchOutcome::Done(verdicts) => assert_eq!(verdicts.len(), 4),
        BatchOutcome::Stale { .. } => panic!("satisfiable floor refused after a Stale"),
    }
    // ...and once the leader crosses the old floor, the very floor that
    // was refused gets answered.
    s.churn(11..=30, 4);
    assert!(
        replica.wait_for_lsn(floor, WAIT),
        "follower never crossed the refused floor"
    );
    match client.batch_attempt(SCRIPT, floor).unwrap() {
        BatchOutcome::Done(verdicts) => assert_eq!(verdicts.len(), 4),
        BatchOutcome::Stale { applied, required } => {
            panic!("crossed floor still refused: applied {applied}, required {required}")
        }
    }

    client.close();
    server.shutdown();
    s.finish(replica);
}

/// Rebinds a replication server on a fixed address, retrying while the
/// OS releases the old listener's port.
fn rebind_replication(leader: &DurableDatabase, addr: &str) -> ReplicationServer {
    let deadline = Instant::now() + WAIT;
    loop {
        match leader.serve_replication(addr, test_replication_config()) {
            Ok(server) => return server,
            Err(e) => {
                assert!(Instant::now() < deadline, "rebind on {addr} failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[test]
fn chained_follower_serves_after_midstream_leader_restart() {
    let ldir = tmp("reads-chain-leader");
    let f1dir = tmp("reads-chain-f1");
    let f2dir = tmp("reads-chain-f2");
    let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
    for i in 1..=4u64 {
        leader.register_moving(vehicle(i, 10.0 * i as f64)).unwrap();
    }
    let server = leader
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let leader_addr = server.local_addr().to_string();

    // The chain: f1 follows the leader and re-ships its log; f2 follows
    // f1 and serves queries.
    let f1 = StandbyReplica::open(&f1dir, &leader_addr, test_replica_config()).unwrap();
    let f1_ship = f1
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let f2 = StandbyReplica::open(
        &f2dir,
        f1_ship.local_addr().to_string(),
        test_replica_config(),
    )
    .unwrap();
    let front = follower_front_end(&f2, QueryServerConfig::default());

    // Phase 1: churn, then kill the leader mid-stream — without waiting
    // for the chain to drain first.
    for round in 1..=20u64 {
        for i in 1..=4u64 {
            leader
                .apply_update(
                    modb_core::ObjectId(i),
                    &update(round as f64, 10.0 * i as f64 + round as f64 * 0.1),
                )
                .unwrap();
        }
    }
    server.shutdown();
    drop(leader);

    // Restart on the same address: both follower sessions reconnect and
    // resume from their watermarks against the recovered log.
    let (leader, _report) = DurableDatabase::open(&ldir, test_wal_options()).unwrap();
    let server = rebind_replication(&leader, &leader_addr);

    // Phase 2: more churn through the restarted leader.
    for round in 21..=40u64 {
        for i in 1..=4u64 {
            leader
                .apply_update(
                    modb_core::ObjectId(i),
                    &update(round as f64, 10.0 * i as f64 + round as f64 * 0.1),
                )
                .unwrap();
        }
    }

    // The whole chain converges on the restarted leader's frontier...
    let frontier = leader.wal().next_lsn();
    assert!(
        f1.wait_for_lsn(frontier, WAIT),
        "f1 never converged: {}",
        f1.stats()
    );
    assert!(
        f2.wait_for_lsn(frontier, WAIT),
        "f2 never converged: {}",
        f2.stats()
    );
    leader
        .database()
        .with_read(|ldb| f2.database().with_read(|fdb| assert_converged(ldb, fdb)));

    // ...and the chain tail serves the leader's verdicts, bit for bit.
    let mut client = QueryClient::connect(front.local_addr()).unwrap();
    let remote = match client.batch_attempt(SCRIPT, frontier).unwrap() {
        BatchOutcome::Done(verdicts) => verdicts,
        BatchOutcome::Stale { applied, required } => {
            panic!("converged chain refused: applied {applied}, required {required}")
        }
    };
    assert_bit_identical(&remote, &leader_verdicts(&leader, SCRIPT), "chain tail");

    client.close();
    front.shutdown();
    f2.shutdown();
    f1_ship.shutdown();
    f1.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&f1dir).unwrap();
    std::fs::remove_dir_all(&f2dir).unwrap();
}

#[test]
fn byte_faults_on_the_serving_socket_do_not_wedge_the_follower() {
    let s = Scenario::start("reads-faults", 4);
    let replica = s.follower();
    s.churn(1..=10, 4);
    let frontier = s.leader.wal().next_lsn();
    assert!(
        replica.wait_for_lsn(frontier, WAIT),
        "follower never drained"
    );

    let server = follower_front_end(
        &replica,
        QueryServerConfig {
            request_deadline: Duration::from_millis(200),
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // The server still answers a healthy floored batch — the wedge
    // check, re-run after every fault below.
    let healthy = |what: &str| {
        let mut client = QueryClient::connect(addr).unwrap();
        match client.batch_attempt(SCRIPT, frontier).unwrap() {
            BatchOutcome::Done(verdicts) => {
                assert_eq!(verdicts.len(), 4, "{what}");
                assert!(verdicts[0].is_ok(), "{what}: {:?}", verdicts[0]);
            }
            BatchOutcome::Stale { .. } => panic!("{what}: healthy floor refused"),
        }
        client.close();
    };
    healthy("before any fault");

    // Garbage header: framing is unrecoverable, the session must end.
    let mut vandal = TcpStream::connect(addr).unwrap();
    vandal
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    vandal.write_all(&[0xffu8; 16]).unwrap();
    assert_closed(&mut vandal);
    wait_until("garbage slot released", || server.active_connections() == 0);
    healthy("after garbage header");

    // Half a frame, then silence: reaped at the request deadline.
    let mut staller = raw_handshake(addr);
    let full = frame(&batch_payload(SCRIPT));
    staller.write_all(&full[..full.len() / 2]).unwrap();
    assert_closed(&mut staller);
    wait_until("staller slot released", || server.active_connections() == 0);
    healthy("after stalled half-frame");

    // A proxy corrupting server→client bytes: the client sees a CRC
    // mismatch and fails, the server sees a dead peer and cleans up.
    let proxy = FaultProxy::start(addr);
    proxy.push(Fault::CorruptByteAt(12));
    // Corruption may hit the HelloAck itself (refused at connect) or
    // land past the handshake — then the batch must still return (with
    // whatever error), never hang.
    if let Ok(mut through_proxy) = QueryClient::connect(proxy.socket_addr()) {
        let _ = through_proxy.batch_attempt(SCRIPT, frontier);
    }
    drop(proxy);
    wait_until("proxied slot released", || server.active_connections() == 0);
    healthy("after corrupted reply stream");

    server.shutdown();
    s.finish(replica);
}
