//! Read-your-writes property through a leader → f1 → f2 chain: under a
//! random fleet and a random interleaving of write bursts, floored
//! reads, and quiescent checkpoints,
//!
//! - every read floored at the writer's acked frontier (the session
//!   token) observes the writer's own updates — the served position is
//!   the leader's position, never a pre-write state;
//! - every served answer's uncertainty *contains* the leader's: bounds
//!   and intervals only ever widen (by the lag clock's `2·v_max·Δ`),
//!   `must` only ever drains into `may`, and a `certain` neighbour is
//!   certain on the leader too;
//! - at quiescent checkpoints the whole chain converges and both
//!   followers' floored verdicts match the leader's.
//!
//! A typed `Stale` refusal is a legal transient (the chain may be
//! behind); the property retries it — what it must never see is a
//! pre-write answer, a dropped session, or a hang.

mod common;

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use common::replica_harness::WAIT;
use common::*;
use modb_core::ObjectId;
use modb_query::QueryResult;
use modb_server::{
    BatchOutcome, DurableDatabase, QueryClient, QueryEngine, QueryEngineConfig, QueryServerConfig,
    StandbyReplica,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// One step of the workload.
#[derive(Debug, Clone)]
enum Op {
    /// A write burst through the leader: every object gets one update,
    /// advancing the shared clock. The burst's acked frontier becomes
    /// the session token for the reads that follow.
    Write,
    /// A floored read on follower `which % 2`, querying object
    /// `id_hint % fleet`: must observe the latest write burst.
    Read(u8, u8),
    /// Quiesce the chain and compare both followers' verdicts with the
    /// leader's.
    Checkpoint,
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted prop_oneof; duplicate
    // entries weight reads over writes over checkpoints.
    prop_oneof![
        Just(Op::Write),
        Just(Op::Write),
        (any::<u8>(), any::<u8>()).prop_map(|(w, id)| Op::Read(w, id)),
        (any::<u8>(), any::<u8>()).prop_map(|(w, id)| Op::Read(w, id)),
        (any::<u8>(), any::<u8>()).prop_map(|(w, id)| Op::Read(w, id)),
        Just(Op::Checkpoint),
    ]
}

/// Served uncertainty must contain the leader's. Equality is the
/// quiescent case (zero slack); a nonzero lag clock only ever widens.
fn contains_widened(remote: &QueryResult, local: &QueryResult) -> Result<(), String> {
    match (remote, local) {
        (QueryResult::Position(r), QueryResult::Position(l)) => {
            if r.position != l.position || r.arc != l.arc {
                return Err(format!(
                    "position moved: served {:?}/{} vs leader {:?}/{}",
                    r.position, r.arc, l.position, l.arc
                ));
            }
            if r.bound + EPS < l.bound
                || r.interval.0 > l.interval.0 + EPS
                || r.interval.1 + EPS < l.interval.1
            {
                return Err(format!(
                    "uncertainty shrank: served ±{} {:?} vs leader ±{} {:?}",
                    r.bound, r.interval, l.bound, l.interval
                ));
            }
            Ok(())
        }
        (QueryResult::Range(r), QueryResult::Range(l)) => {
            let (rm, rmay): (BTreeSet<ObjectId>, BTreeSet<ObjectId>) = (
                r.must.iter().copied().collect(),
                r.may.iter().copied().collect(),
            );
            let (lm, lmay): (BTreeSet<ObjectId>, BTreeSet<ObjectId>) = (
                l.must.iter().copied().collect(),
                l.may.iter().copied().collect(),
            );
            if !rm.is_subset(&lm) {
                return Err(format!("served must {rm:?} not within leader must {lm:?}"));
            }
            let rall: BTreeSet<ObjectId> = rm.union(&rmay).copied().collect();
            let lall: BTreeSet<ObjectId> = lm.union(&lmay).copied().collect();
            if rall != lall {
                return Err(format!(
                    "answer set changed: served {rall:?} vs leader {lall:?}"
                ));
            }
            Ok(())
        }
        (QueryResult::Nearest(r), QueryResult::Nearest(l)) => {
            if r.ranked.len() != l.ranked.len() {
                return Err(format!(
                    "ranking length changed: {} vs {}",
                    r.ranked.len(),
                    l.ranked.len()
                ));
            }
            for (rn, ln) in r.ranked.iter().zip(&l.ranked) {
                if rn.id != ln.id || (rn.distance - ln.distance).abs() > EPS {
                    return Err(format!("ranking changed: {rn:?} vs {ln:?}"));
                }
                if rn.bound + EPS < ln.bound {
                    return Err(format!("neighbour bound shrank: {rn:?} vs {ln:?}"));
                }
                if rn.certain && !ln.certain {
                    return Err(format!(
                        "served claims certainty the leader does not have: {rn:?}"
                    ));
                }
            }
            Ok(())
        }
        _ => Err("verdict kind changed".to_string()),
    }
}

/// Retries a floored batch through transient `Stale` refusals until the
/// follower answers (bounded by [`WAIT`]). Refusing is legal while the
/// chain catches up; hanging or erroring is not.
fn floored_read(
    client: &mut QueryClient,
    script: &str,
    floor: u64,
    who: &str,
) -> Vec<Result<QueryResult, String>> {
    let deadline = Instant::now() + WAIT;
    loop {
        match client.batch_attempt(script, floor).unwrap() {
            BatchOutcome::Done(verdicts) => return verdicts,
            BatchOutcome::Stale { applied, required } => {
                assert_eq!(required, floor, "{who}: refusal must echo the floor");
                assert!(
                    Instant::now() < deadline,
                    "{who}: still stale after {WAIT:?} (applied {applied}, floor {floor})"
                );
            }
        }
    }
}

fn manual_engine(db: &modb_server::SharedDatabase) -> std::sync::Arc<QueryEngine> {
    std::sync::Arc::new(db.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }))
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn session_token_reads_observe_own_writes_through_the_chain(
        fleet in 2u64..6,
        ops in proptest::collection::vec(op(), 10..50),
    ) {
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let ldir = tmp(&format!("rprop-{case}-leader"));
        let f1dir = tmp(&format!("rprop-{case}-f1"));
        let f2dir = tmp(&format!("rprop-{case}-f2"));
        let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
        for i in 1..=fleet {
            leader.register_moving(vehicle(i, 10.0 * i as f64)).unwrap();
        }
        let leader_engine = manual_engine(leader.database());

        let server = leader
            .serve_replication("127.0.0.1:0", test_replication_config())
            .unwrap();
        let f1 = StandbyReplica::open(
            &f1dir,
            server.local_addr().to_string(),
            test_replica_config(),
        )
        .unwrap();
        let f1_ship = f1
            .serve_replication("127.0.0.1:0", test_replication_config())
            .unwrap();
        let f2 = StandbyReplica::open(
            &f2dir,
            f1_ship.local_addr().to_string(),
            test_replica_config(),
        )
        .unwrap();
        let fronts = [
            f1.serve_queries(
                manual_engine(f1.database()),
                "127.0.0.1:0",
                QueryServerConfig {
                    stale_deadline: Duration::from_millis(50),
                    ..QueryServerConfig::default()
                },
            )
            .unwrap(),
            f2.serve_queries(
                manual_engine(f2.database()),
                "127.0.0.1:0",
                QueryServerConfig {
                    stale_deadline: Duration::from_millis(50),
                    ..QueryServerConfig::default()
                },
            )
            .unwrap(),
        ];
        let mut clients = [
            QueryClient::connect(fronts[0].local_addr()).unwrap(),
            QueryClient::connect(fronts[1].local_addr()).unwrap(),
        ];

        let mut clock = 0.0f64;
        let mut token = leader.wal().next_lsn();
        for op in &ops {
            match *op {
                Op::Write => {
                    clock += 1.0;
                    for i in 1..=fleet {
                        let _ = leader.apply_update(
                            ObjectId(i),
                            &update(clock, 10.0 * i as f64 + clock * 0.5),
                        );
                    }
                    // The writer's session token: its acked frontier.
                    token = leader.wal().next_lsn();
                }
                Op::Read(which, id_hint) => {
                    let id = 1 + u64::from(id_hint) % fleet;
                    let script = format!(
                        "RETRIEVE POSITION OF OBJECT {id} AT TIME {clock}; \
                         RETRIEVE OBJECTS INSIDE RECT (0, -1, 1000, 1) AT TIME {clock}; \
                         RETRIEVE 2 NEAREST OBJECTS TO POINT (20, 0) AT TIME {clock}"
                    );
                    let who = format!("case {case}: follower {}", which % 2);
                    let remote = floored_read(
                        &mut clients[(which % 2) as usize],
                        &script,
                        token,
                        &who,
                    );
                    // The leader is quiescent between ops, so its local
                    // verdicts at this instant are what the writer's
                    // session must observe.
                    leader_engine.publish_now();
                    let local: Vec<Result<QueryResult, String>> = leader_engine
                        .run_batch(&script)
                        .into_iter()
                        .map(|v| v.map_err(|e| e.to_string()))
                        .collect();
                    prop_assert_eq!(remote.len(), local.len());
                    for (i, (r, l)) in remote.iter().zip(&local).enumerate() {
                        match (r, l) {
                            (Ok(r), Ok(l)) => {
                                if let Err(why) = contains_widened(r, l) {
                                    prop_assert!(
                                        false,
                                        "{} statement {}: {}", who, i, why
                                    );
                                }
                            }
                            (Err(r), Err(l)) => prop_assert_eq!(r, l),
                            other => prop_assert!(false, "{} statement {}: {:?}", who, i, other),
                        }
                    }
                }
                Op::Checkpoint => {
                    let w = leader.wal().next_lsn();
                    prop_assert!(f1.wait_for_lsn(w, WAIT), "case {case}: f1 stuck");
                    prop_assert!(f2.wait_for_lsn(w, WAIT), "case {case}: f2 stuck");
                    let expected = leader.database().with_read(|db| db.clone());
                    f1.database().with_read(|db| assert_converged(&expected, db));
                    f2.database().with_read(|db| assert_converged(&expected, db));
                }
            }
        }

        // Closing checkpoint: the chain always ends converged.
        let w = leader.wal().next_lsn();
        prop_assert!(f1.wait_for_lsn(w, WAIT), "case {case}: f1 never drained");
        prop_assert!(f2.wait_for_lsn(w, WAIT), "case {case}: f2 never drained");
        let expected = leader.database().with_read(|db| db.clone());
        f1.database().with_read(|db| assert_converged(&expected, db));
        f2.database().with_read(|db| assert_converged(&expected, db));

        let [c1, c2] = clients;
        c1.close();
        c2.close();
        let [q1, q2] = fronts;
        q1.shutdown();
        q2.shutdown();
        f2.shutdown();
        f1_ship.shutdown();
        f1.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&ldir).unwrap();
        std::fs::remove_dir_all(&f1dir).unwrap();
        std::fs::remove_dir_all(&f2dir).unwrap();
    }
}
