//! Crash-recovery property tests for the pause-free snapshot path.
//!
//! Contract under test: a snapshot taken at watermark `L` bounds replay
//! exactly — recovery loads it, replays only records with `lsn >= L`,
//! and converges with the live (locked) state at crash time, whatever
//! the workload and wherever the snapshots landed. The second snapshot
//! in each case is delta-synced from the first through the shadow
//! buffer, so the property also pins the incremental capture path
//! against the full-clone baseline recovery compares to.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::DurableDatabase;
use modb_wal::{FsyncPolicy, WalOptions};
use proptest::prelude::*;

const ROUTE_LEN: f64 = 100.0;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("modb-durable-snap-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: 1.5,
        trip_end: None,
    }
}

fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .unwrap();
    Database::new(
        RouteNetwork::from_routes([route]).unwrap(),
        DatabaseConfig::default(),
    )
}

fn update() -> impl Strategy<Value = (u64, f64, f64, f64)> {
    // Ids past the fleet size are legitimate unknown-object rejections;
    // they are logged and must re-reject identically on replay.
    (0u64..32, 0.0f64..30.0, 0.0f64..1.0, 0.1f64..1.4)
}

fn apply_stream(durable: &DurableDatabase, batch: &[(u64, f64, f64, f64)]) {
    for &(id, t, frac, speed) in batch {
        let _ = durable.apply_update(
            ObjectId(id),
            &UpdateMessage::basic(t, UpdatePosition::Arc(frac * ROUTE_LEN), speed),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_at_watermark_bounds_replay_and_recovery_converges(
        n_objects in 1u64..25,
        pre in proptest::collection::vec(update(), 0..40),
        mid in proptest::collection::vec(update(), 0..40),
        post in proptest::collection::vec(update(), 0..40),
    ) {
        let dir = tmp();
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            ..WalOptions::default()
        };
        let durable = DurableDatabase::create(&dir, fresh_db(), opts).unwrap();
        for i in 0..n_objects {
            durable
                .register_moving(vehicle(i, (i as f64 * 7.3) % ROUTE_LEN))
                .unwrap();
        }
        apply_stream(&durable, &pre);
        durable.snapshot().unwrap(); // cold shadow: full capture
        apply_stream(&durable, &mid);
        let watermark = durable.wal().next_lsn();
        durable.snapshot().unwrap(); // warm shadow: delta-synced capture
        apply_stream(&durable, &post);

        // "Crash": drop the handles with the log trailing the last
        // snapshot by exactly the `post` records.
        let expected = durable.database().with_read(|db| db.clone());
        drop(durable);

        let (recovered, report) =
            DurableDatabase::open(&dir, WalOptions::default()).unwrap();
        // Replay resumed from the watermark of the latest snapshot and
        // touched exactly the records logged after it.
        prop_assert_eq!(report.snapshot_lsn, watermark);
        prop_assert_eq!(
            (report.replayed + report.rejected) as usize,
            post.len(),
            "replay must cover exactly the post-snapshot records"
        );

        // Recovery converges with the locked live state at crash time.
        let got = recovered.database().with_read(|db| db.clone());
        prop_assert_eq!(got.moving_count(), expected.moving_count());
        for id in 0..32u64 {
            prop_assert_eq!(got.moving(ObjectId(id)).ok(), expected.moving(ObjectId(id)).ok());
            prop_assert_eq!(got.history_of(ObjectId(id)), expected.history_of(ObjectId(id)));
            prop_assert_eq!(
                got.position_of(ObjectId(id), 20.0).ok(),
                expected.position_of(ObjectId(id), 20.0).ok()
            );
        }
        // Query answers agree too (must/may; traversal diagnostics may
        // differ between a rebuilt and an incrementally maintained
        // index).
        let a = got
            .within_distance_of_point(Point::new(ROUTE_LEN / 2.0, 0.0), 30.0, 10.0)
            .unwrap();
        let b = expected
            .within_distance_of_point(Point::new(ROUTE_LEN / 2.0, 0.0), 30.0, 10.0)
            .unwrap();
        prop_assert_eq!(a.must, b.must);
        prop_assert_eq!(a.may, b.may);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
