//! Property tests for the epoch-snapshot query engine.
//!
//! The contract under test: a query answered by [`QueryEngine`] equals
//! the answer the locked [`SharedDatabase`] path would have given **at
//! the moment the snapshot was published** — staleness-adjusted
//! equivalence. Updates applied after a publish must not leak into
//! snapshot answers until the next publish, and the parallel refine
//! split must be answer-for-answer identical to the serial path.

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::{Point, Polygon, Rect};
use modb_index::QueryRegion;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{QueryEngineConfig, SharedDatabase};
use proptest::prelude::*;

const ROUTE_LEN: f64 = 100.0;

fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: 1.5,
        trip_end: None,
    }
}

fn shared(n_objects: u64) -> SharedDatabase {
    let network = RouteNetwork::from_routes([Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .unwrap()])
    .unwrap();
    let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));
    for i in 0..n_objects {
        db.register_moving(vehicle(i, (i as f64 * 7.3) % ROUTE_LEN))
            .unwrap();
    }
    db
}

fn apply_stream(db: &SharedDatabase, updates: &[(u64, f64, f64, f64)]) {
    for &(id, time, arc_frac, speed) in updates {
        // Stale / unknown-object updates are legitimate rejections; the
        // equivalence property only needs both sides to see the same
        // final state, which "apply and ignore the verdict" gives us.
        let _ = db.apply_update(
            ObjectId(id),
            &UpdateMessage::basic(time, UpdatePosition::Arc(arc_frac * ROUTE_LEN), speed),
        );
    }
}

fn region(x0: f64, x1: f64, t: f64) -> QueryRegion {
    let (lo, hi) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
    let g =
        Polygon::rectangle(&Rect::new(Point::new(lo, -2.0), Point::new(hi + 0.5, 2.0))).unwrap();
    QueryRegion::at_instant(g, t)
}

#[derive(Debug, Clone)]
struct Spec {
    n_objects: u64,
    before: Vec<(u64, f64, f64, f64)>,
    after: Vec<(u64, f64, f64, f64)>,
    regions: Vec<(f64, f64, f64)>,
}

fn update() -> impl Strategy<Value = (u64, f64, f64, f64)> {
    (0u64..48, 0.0f64..30.0, 0.0f64..1.0, 0.1f64..1.4)
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        1u64..40,
        proptest::collection::vec(update(), 0..60),
        proptest::collection::vec(update(), 1..60),
        proptest::collection::vec((0.0f64..ROUTE_LEN, 0.0f64..ROUTE_LEN, 0.0f64..40.0), 1..6),
    )
        .prop_map(|(n_objects, before, after, regions)| Spec {
            n_objects,
            before,
            after,
            regions,
        })
}

/// One step of an interleaved workload for the shadow-equivalence
/// property. Rejected operations (duplicate register, unknown remove,
/// stale update) are part of the point: they must not desynchronize the
/// shadow.
#[derive(Debug, Clone)]
enum Op {
    Register(u64, f64),
    Update(u64, f64, f64, f64),
    Remove(u64),
    /// Pull the shadow forward mid-stream (partial drains must compose).
    Sync,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..48, 0.0f64..1.0).prop_map(|(id, frac)| Op::Register(id, frac)),
        update().prop_map(|(id, t, frac, speed)| Op::Update(id, t, frac, speed)),
        (0u64..48).prop_map(Op::Remove),
        Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A delta-applied shadow is observably identical to a fresh full
    /// clone after an arbitrary interleaving of register / update /
    /// remove, no matter where the intermediate syncs landed — including
    /// with a tiny change log that forces full resyncs.
    #[test]
    fn shadow_after_deltas_equals_full_clone(
        ops in proptest::collection::vec(op(), 1..80),
        small_log in any::<bool>(),
    ) {
        let network = RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
        )
        .unwrap()])
        .unwrap();
        let cfg = DatabaseConfig {
            // The tiny log makes cursors fall off constantly, forcing
            // the full-resync fallback to carry its weight too.
            change_log_capacity: if small_log { 3 } else { 4096 },
            ..DatabaseConfig::default()
        };
        let mut live = Database::new(network, cfg);
        for i in 0..8u64 {
            live.register_moving(vehicle(i, (i as f64 * 11.9) % ROUTE_LEN)).unwrap();
        }
        let mut shadow = live.clone();
        let mut cursor = live.change_cursor();

        for op in &ops {
            match *op {
                Op::Register(id, frac) => {
                    let _ = live.register_moving(vehicle(id, frac * ROUTE_LEN * 0.99));
                }
                Op::Update(id, t, frac, speed) => {
                    let _ = live.apply_update(
                        ObjectId(id),
                        &UpdateMessage::basic(
                            t,
                            UpdatePosition::Arc(frac * ROUTE_LEN),
                            speed,
                        ),
                    );
                }
                Op::Remove(id) => {
                    let _ = live.remove_moving(ObjectId(id));
                }
                Op::Sync => {
                    cursor = shadow.sync_from(&live, cursor).cursor;
                }
            }
        }
        shadow.sync_from(&live, cursor);
        let clone = live.clone();

        // Observably identical: object state, history, and queries (the
        // shadow's incrementally-maintained index must agree with both
        // the cloned index and the exhaustive scan).
        prop_assert_eq!(shadow.moving_count(), clone.moving_count());
        for id in 0..48u64 {
            prop_assert_eq!(shadow.moving(ObjectId(id)).ok(), clone.moving(ObjectId(id)).ok());
            prop_assert_eq!(shadow.history_of(ObjectId(id)), clone.history_of(ObjectId(id)));
            prop_assert_eq!(
                shadow.position_of(ObjectId(id), 15.0).ok(),
                clone.position_of(ObjectId(id), 15.0).ok()
            );
        }
        for &(x0, x1, t) in &[(0.0, 50.0, 10.0), (20.0, 90.0, 5.0), (0.0, ROUTE_LEN, 25.0)] {
            let r = region(x0, x1, t);
            let via_shadow = shadow.range_query(&r).unwrap();
            let via_clone = clone.range_query(&r).unwrap();
            prop_assert_eq!(&via_shadow.must, &via_clone.must, "must x=[{},{}] t={}", x0, x1, t);
            prop_assert_eq!(&via_shadow.may, &via_clone.may, "may x=[{},{}] t={}", x0, x1, t);
            let scanned = shadow.range_query_scan(&r).unwrap();
            prop_assert_eq!(&via_shadow.must, &scanned.must, "scan must x=[{},{}] t={}", x0, x1, t);
            prop_assert_eq!(&via_shadow.may, &scanned.may, "scan may x=[{},{}] t={}", x0, x1, t);
        }
    }

    /// Snapshot answers equal the locked answers as of publication time,
    /// no matter what happens to the live database afterwards — and the
    /// parallel refine split changes nothing about the answers.
    #[test]
    fn snapshot_reads_equal_locked_reads_at_publication(
        spec in spec(),
        force_parallel in any::<bool>(),
    ) {
        let db = shared(spec.n_objects);
        apply_stream(&db, &spec.before);
        let engine = db.query_engine(QueryEngineConfig {
            epoch_interval: None,
            workers: 3,
            parallel_threshold: if force_parallel { 2 } else { usize::MAX },
            ..QueryEngineConfig::default()
        });
        // The reference is the locked view frozen at publication time.
        let frozen = db.with_read(|inner| inner.clone());
        engine.publish_now();
        // Updates after the publish must NOT appear in snapshot answers.
        apply_stream(&db, &spec.after);

        for &(x0, x1, t) in &spec.regions {
            let r = region(x0, x1, t);
            let expected = frozen.range_query(&r).unwrap();
            let got = engine.range_query(&r).unwrap();
            prop_assert_eq!(&got, &expected, "region x=[{x0},{x1}] t={t}");

            let expected = frozen
                .within_distance_of_point(Point::new(x0, 0.0), 5.0, t)
                .unwrap();
            let got = engine
                .within_distance_of_point(Point::new(x0, 0.0), 5.0, t)
                .unwrap();
            prop_assert_eq!(&got, &expected, "within x={x0} t={t}");
        }
        for id in 0..spec.n_objects {
            prop_assert_eq!(
                engine.position_of(ObjectId(id), 12.0).unwrap(),
                frozen.position_of(ObjectId(id), 12.0).unwrap()
            );
        }
        // Republishing catches the engine up to the live state. This
        // publish rides the change-log delta, so the snapshot's index
        // was maintained by per-object delete+insert rather than cloned
        // — traversal diagnostics (SearchStats) may differ, but the
        // answers must not.
        engine.publish_now();
        for &(x0, x1, t) in &spec.regions {
            let r = region(x0, x1, t);
            let got = engine.range_query(&r).unwrap();
            let expected = db.range_query(&r).unwrap();
            prop_assert_eq!(&got.must, &expected.must);
            prop_assert_eq!(&got.may, &expected.may);
            prop_assert_eq!(got.candidates, expected.candidates);
        }
    }

    /// A text batch through the engine gives the same per-statement
    /// verdicts as running each statement serially on the frozen view.
    #[test]
    fn batched_statements_match_serial_execution(
        spec in spec(),
        t in 0.0f64..40.0,
    ) {
        let db = shared(spec.n_objects);
        apply_stream(&db, &spec.before);
        let engine = db.query_engine(QueryEngineConfig {
            epoch_interval: None,
            workers: 3,
            ..QueryEngineConfig::default()
        });
        let frozen = db.with_read(|inner| inner.clone());
        engine.publish_now();
        apply_stream(&db, &spec.after);

        let script = format!(
            "RETRIEVE OBJECTS INSIDE RECT (0, -2, 50, 2) AT TIME {t};\n\
             RETRIEVE POSITION OF OBJECT 0 AT TIME {t};\n\
             RETRIEVE OBJECTS WITHIN 10 OF POINT (50, 0) AT TIME {t};\n\
             RETRIEVE POSITION OF OBJECT 99999 AT TIME {t}"
        );
        let batched = engine.run_batch(&script);
        let serial = modb_query::run_batch(&frozen, &script);
        prop_assert_eq!(batched.len(), serial.len());
        for (i, (b, s)) in batched.iter().zip(serial.iter()).enumerate() {
            prop_assert_eq!(b, s, "statement {}", i + 1);
        }
    }
}
