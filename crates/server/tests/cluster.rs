//! Cluster integration tests: a sharded deployment must be
//! *observationally equivalent* to one node holding the union fleet —
//! same verdicts, same error strings, statement by statement — with
//! typed failures when a shard dies and per-shard read-your-writes.

mod common;

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::*;
use modb_core::ObjectId;
use modb_geom::{Point, Rect};
use modb_query::QueryResult;
use modb_server::{
    ClusterError, ClusterRouter, DurableDatabase, IngestService, QueryEngine, QueryEngineConfig,
    QueryServer, QueryServerConfig, RemoteUpdateVerdict, RemoteVerdict, ShardMap,
};
use proptest::prelude::*;

/// One shard server: durable database, manual-epoch query engine, ingest
/// service, and a listening front-end.
struct Shard {
    durable: DurableDatabase,
    engine: Arc<QueryEngine>,
    service: IngestService,
    server: QueryServer,
}

impl Shard {
    fn spawn(name: &str, shard_no: u64) -> Shard {
        let durable = DurableDatabase::create(tmp(name), fresh_db(), test_wal_options()).unwrap();
        let engine = Arc::new(durable.query_engine(QueryEngineConfig {
            epoch_interval: None,
            report_interval: None,
            ..QueryEngineConfig::default()
        }));
        let service = durable.ingest_service(2, 64);
        let server = durable
            .serve_queries(
                Arc::clone(&engine),
                Some(service.frontend()),
                "127.0.0.1:0",
                QueryServerConfig {
                    shard: Some(shard_no),
                    ..QueryServerConfig::default()
                },
            )
            .unwrap();
        Shard {
            durable,
            engine,
            service,
            server,
        }
    }

    fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    fn shutdown(self) {
        self.server.shutdown();
        self.service.shutdown();
        drop(self.durable);
    }
}

/// A running cluster plus the single-node oracle holding the union
/// fleet.
struct Fixture {
    shards: Vec<Shard>,
    router: ClusterRouter,
    union_durable: DurableDatabase,
    union_engine: Arc<QueryEngine>,
}

impl Fixture {
    /// Spawns `map.shards()` shard servers and the union oracle, then
    /// registers `vehicles` (id, start arc) through the router's
    /// placement on the owning shard and on the oracle.
    fn new(name: &str, map: ShardMap, vehicles: &[(u64, f64)]) -> Fixture {
        let shards: Vec<Shard> = (0..map.shards())
            .map(|i| Shard::spawn(&format!("{name}-s{i}"), i as u64))
            .collect();
        let addrs: Vec<SocketAddr> = shards.iter().map(Shard::addr).collect();
        let mut router = ClusterRouter::connect(&addrs, map).unwrap();

        let union_durable = DurableDatabase::create(
            tmp(&format!("{name}-union")),
            fresh_db(),
            test_wal_options(),
        )
        .unwrap();
        let union_engine = Arc::new(union_durable.query_engine(QueryEngineConfig {
            epoch_interval: None,
            report_interval: None,
            ..QueryEngineConfig::default()
        }));

        for &(id, arc) in vehicles {
            let v = vehicle(id, arc);
            let home = router.route_registration(v.id, &v.name, Point::new(arc, 0.0));
            shards[home].durable.register_moving(v.clone()).unwrap();
            union_durable.register_moving(v).unwrap();
        }
        for shard in &shards {
            shard.engine.publish_now();
        }
        union_engine.publish_now();
        Fixture {
            shards,
            router,
            union_durable,
            union_engine,
        }
    }

    /// Applies the same update through the router (remote ingest) and on
    /// the oracle.
    fn update_everywhere(&mut self, id: u64, t: f64, arc: f64) {
        let verdict = self.router.update(ObjectId(id), &update(t, arc)).unwrap();
        assert_eq!(verdict, RemoteUpdateVerdict::Accepted);
        self.union_durable
            .apply_update(ObjectId(id), &update(t, arc))
            .unwrap();
    }

    /// Runs `script` on the cluster and the oracle and asserts verdict
    /// equivalence.
    fn assert_script_equivalent(&mut self, script: &str) {
        let remote = self.router.run_batch(script).unwrap();
        self.union_engine.publish_now();
        let local = self.union_engine.run_batch(script);
        assert_eq!(remote.len(), local.len(), "verdict count for {script:?}");
        for (i, (r, l)) in remote.iter().zip(&local).enumerate() {
            assert_equivalent(r, l, &format!("statement {i} of {script:?}"));
        }
    }

    fn shutdown(self) {
        // Close the router before the servers so session threads see a
        // clean EOF rather than a reset.
        self.router.close();
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

/// Equivalence modulo traversal diagnostics: range answers compare
/// may/must only (per-shard trees are shaped differently than the union
/// tree, so `candidates`/`stats` are additive diagnostics); position and
/// nearest answers, and error strings, must match exactly.
fn assert_equivalent(
    remote: &RemoteVerdict,
    local: &Result<QueryResult, modb_query::QueryError>,
    what: &str,
) {
    match (remote, local) {
        (Ok(QueryResult::Range(r)), Ok(QueryResult::Range(l))) => {
            assert_eq!(r.must, l.must, "{what}: must sets");
            assert_eq!(r.may, l.may, "{what}: may sets");
        }
        (Ok(r), Ok(l)) => assert_eq!(r, l, "{what}"),
        (Err(r), Err(l)) => assert_eq!(r, &l.to_string(), "{what}"),
        other => panic!("{what}: verdict kinds diverge: {other:?}"),
    }
}

fn corridor() -> Rect {
    Rect::new(Point::new(0.0, -5.0), Point::new(1000.0, 5.0))
}

/// Every query form plus every error shape the language can produce.
const FULL_SCRIPT: &str = "\
    RETRIEVE POSITION OF OBJECT 3 AT TIME 6; \
    RETRIEVE POSITION OF OBJECT 'veh-5' AT TIME 6; \
    RETRIEVE POSITION OF OBJECT 'no-such-vehicle' AT TIME 6; \
    RETRIEVE POSITION OF OBJECT 99 AT TIME 6; \
    RETRIEVE OBJECTS INSIDE RECT (0, -1, 450, 1) AT TIME 6; \
    RETRIEVE OBJECTS INSIDE RECT (100, -1, 300, 1) DURING 2 TO 9; \
    RETRIEVE OBJECTS INSIDE POLYGON ((50,-2), (600,-2), (600,2), (50,2)) AT TIME 6; \
    RETRIEVE OBJECTS INSIDE RECT (5, 5, 5, 9) AT TIME 6; \
    RETRIEVE OBJECTS WITHIN 120 OF POINT (200, 0) AT TIME 6; \
    RETRIEVE OBJECTS WITHIN -3 OF POINT (200, 0) AT TIME 6; \
    RETRIEVE OBJECTS WITHIN 150 OF OBJECT 2 AT TIME 6; \
    RETRIEVE OBJECTS WITHIN 150 OF OBJECT 'veh-4' AT TIME 6; \
    RETRIEVE OBJECTS WITHIN 0 OF OBJECT 2 AT TIME 6; \
    RETRIEVE OBJECTS WITHIN 150 OF OBJECT 'no-such-vehicle' AT TIME 6; \
    RETRIEVE 3 NEAREST OBJECTS TO POINT (300, 0) AT TIME 6; \
    RETRIEVE 50 NEAREST OBJECTS TO POINT (300, 0) AT TIME 6; \
    RETRIEVE NONSENSE";

fn fleet() -> Vec<(u64, f64)> {
    (0..12u64).map(|i| (i, 75.0 * i as f64 + 10.0)).collect()
}

fn run_full_equivalence(name: &str, map: ShardMap) {
    let mut fx = Fixture::new(name, map, &fleet());
    // Move some of the fleet through the remote-ingest path (the rest
    // keep their registration motion plans).
    for id in [0u64, 2, 3, 5, 7, 11] {
        let arc = 75.0 * id as f64 + 25.0;
        fx.update_everywhere(id, 5.0, arc);
    }
    fx.assert_script_equivalent(FULL_SCRIPT);
    // The whole-script lex failure keeps its single-verdict shape.
    fx.assert_script_equivalent("RETRIEVE POSITION OF OBJECT 'oops AT TIME 1; next");
    // Empty script, empty verdicts.
    fx.assert_script_equivalent("  ;; ");
    fx.shutdown();
}

#[test]
fn hash_cluster_matches_union_node() {
    run_full_equivalence("cluster-hash", ShardMap::hash(3));
}

#[test]
fn spatial_cluster_matches_union_node() {
    run_full_equivalence("cluster-spatial", ShardMap::vertical_strips(corridor(), 3));
}

#[test]
fn update_batch_routes_verdicts_in_input_order() {
    let mut fx = Fixture::new("cluster-batch", ShardMap::hash(3), &fleet());
    let updates = vec![
        (ObjectId(1), update(4.0, 100.0)),
        (ObjectId(2), update(4.0, 180.0)),
        // Stale: earlier than the registration start time.
        (ObjectId(3), update(-1.0, 240.0)),
        // Non-finite speed: refused at the protocol boundary.
        (
            ObjectId(4),
            modb_core::UpdateMessage::basic(5.0, modb_core::UpdatePosition::Arc(310.0), f64::NAN),
        ),
        (ObjectId(5), update(4.0, 400.0)),
    ];
    let verdicts = fx.router.update_batch(&updates).unwrap();
    assert_eq!(verdicts.len(), 5);
    assert_eq!(verdicts[0], RemoteUpdateVerdict::Accepted);
    assert_eq!(verdicts[1], RemoteUpdateVerdict::Accepted);
    assert!(
        matches!(&verdicts[2], RemoteUpdateVerdict::Rejected(m) if m.contains("stale")),
        "{:?}",
        verdicts[2]
    );
    assert!(
        matches!(&verdicts[3], RemoteUpdateVerdict::Invalid(_)),
        "{:?}",
        verdicts[3]
    );
    assert_eq!(verdicts[4], RemoteUpdateVerdict::Accepted);
    fx.shutdown();
}

#[test]
fn read_your_writes_holds_through_the_router() {
    // Engines never publish on their own (epoch_interval: None), so only
    // the read-your-writes token can make an update visible: if the
    // router's query sees the new position, the token machinery carried
    // it there.
    let mut fx = Fixture::new("cluster-ryw", ShardMap::hash(3), &fleet());
    for round in 1..=5u64 {
        let t = 5.0 + round as f64;
        let arc = 10.0 + 3.0 * round as f64;
        let verdict = fx.router.update(ObjectId(0), &update(t, arc)).unwrap();
        assert_eq!(verdict, RemoteUpdateVerdict::Accepted);
        let script = format!("RETRIEVE POSITION OF OBJECT 0 AT TIME {t}");
        let verdicts = fx.router.run_batch(&script).unwrap();
        let position = verdicts[0].as_ref().unwrap().as_position().unwrap().clone();
        assert_eq!(
            position.arc, arc,
            "round {round}: query must see the acknowledged update"
        );
    }
    fx.shutdown();
}

#[test]
fn dead_shard_is_a_typed_error_not_a_hang() {
    let map = ShardMap::hash(3);
    let shards: Vec<Shard> = (0..3)
        .map(|i| Shard::spawn(&format!("cluster-death-s{i}"), i))
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(Shard::addr).collect();
    let mut router = ClusterRouter::connect(&addrs, map).unwrap();
    // One registered vehicle per shard, so statements can target live
    // shards after the kill.
    let mut per_shard_id = [None::<u64>; 3];
    for id in 0..64u64 {
        let home = ShardMap::hash(3).owner_by_id(ObjectId(id)).unwrap();
        if per_shard_id[home].is_none() {
            per_shard_id[home] = Some(id);
            let arc = 10.0 + id as f64;
            let v = vehicle(id, arc);
            let routed = router.route_registration(v.id, &v.name, Point::new(arc, 0.0));
            assert_eq!(routed, home);
            shards[home].durable.register_moving(v).unwrap();
        }
        if per_shard_id.iter().all(Option::is_some) {
            break;
        }
    }
    for shard in &shards {
        shard.engine.publish_now();
    }

    // Kill shard 1 and broadcast: the router must fail fast and name it.
    let dead = 1usize;
    let mut survivors = Vec::new();
    let mut victim = None;
    for (i, shard) in shards.into_iter().enumerate() {
        if i == dead {
            shard.shutdown();
            victim = Some(());
        } else {
            survivors.push((i, shard));
        }
    }
    assert!(victim.is_some());

    let started = Instant::now();
    let err = router
        .run_batch("RETRIEVE OBJECTS INSIDE RECT (0, -1, 900, 1) AT TIME 3")
        .expect_err("a dead shard must surface as an error");
    assert!(
        matches!(err, ClusterError::ShardFailed { shard, .. } if shard == dead),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the router hung on a dead shard"
    );

    // Statements routed only to live shards still answer.
    for (i, _) in &survivors {
        let id = per_shard_id[*i].unwrap();
        let verdicts = router
            .run_batch(&format!("RETRIEVE POSITION OF OBJECT {id} AT TIME 3"))
            .unwrap();
        assert!(verdicts[0].is_ok(), "shard {i}: {:?}", verdicts[0]);
    }
    router.close();
    for (_, shard) in survivors {
        shard.shutdown();
    }
}

#[test]
fn shard_count_mismatch_is_rejected() {
    let err = ClusterRouter::new(Vec::new(), ShardMap::hash(3)).unwrap_err();
    assert!(matches!(
        err,
        ClusterError::ShardCountMismatch { map: 3, clients: 0 }
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized fleets, updates, and query mixes: the cluster answers
    /// exactly like the union node under both shard keys.
    #[test]
    fn cluster_equals_union_node(
        seed in 0u64..1000,
        arcs in proptest::collection::vec(5.0f64..950.0, 6..14),
        moved in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 14),
        spatial in proptest::arbitrary::any::<bool>(),
        rect_lo in 0.0f64..400.0,
        rect_w in 50.0f64..500.0,
        center in 0.0f64..900.0,
        radius in 10.0f64..300.0,
        k in 1usize..8,
        t in 4.0f64..12.0,
    ) {
        let map = if spatial {
            ShardMap::vertical_strips(corridor(), 3)
        } else {
            ShardMap::hash(3)
        };
        let vehicles: Vec<(u64, f64)> =
            arcs.iter().enumerate().map(|(i, &a)| (i as u64, a)).collect();
        let mut fx = Fixture::new(
            &format!("cluster-prop-{seed}-{spatial}"),
            map,
            &vehicles,
        );
        for (i, &(id, arc)) in vehicles.iter().enumerate() {
            if *moved.get(i).unwrap_or(&false) {
                fx.update_everywhere(id, 3.0, (arc + 40.0).min(990.0));
            }
        }
        let anchor = vehicles[0].0;
        let script = format!(
            "RETRIEVE POSITION OF OBJECT {anchor} AT TIME {t}; \
             RETRIEVE OBJECTS INSIDE RECT ({rect_lo}, -1, {}, 1) AT TIME {t}; \
             RETRIEVE OBJECTS WITHIN {radius} OF POINT ({center}, 0) AT TIME {t}; \
             RETRIEVE OBJECTS WITHIN {radius} OF OBJECT {anchor} AT TIME {t}; \
             RETRIEVE {k} NEAREST OBJECTS TO POINT ({center}, 0) AT TIME {t}",
            rect_lo + rect_w,
        );
        fx.assert_script_equivalent(&script);
        fx.shutdown();
    }
}
