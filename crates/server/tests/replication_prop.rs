//! Convergence property for WAL-shipping replication: under an arbitrary
//! interleaving of registers / updates / removes — with random
//! disconnects and leader-side snapshot+compaction passes thrown in —
//! the follower's state at watermark W is logically identical to a
//! leader clone taken at W. Checkpoints quiesce the leader, wait the
//! follower to the frontier, and compare the full object state and
//! transaction-time history.
//!
//! Setup rides on `common::replica_harness::Scenario` (the follower
//! connects through the byte proxy, here always clean — the faulty
//! variants live in `replication_faults`).

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use common::replica_harness::Scenario;
use common::*;
use modb_core::ObjectId;
use modb_server::StandbyReplica;
use proptest::prelude::*;

const WAIT: Duration = Duration::from_secs(30);

/// One step of the replicated workload. Rejected operations (duplicate
/// register, unknown remove, stale update) are part of the property:
/// whatever the leader's verdict, the follower must land on the same
/// state.
#[derive(Debug, Clone)]
enum Op {
    Register(u64, f64),
    Update(u64, f64, f64),
    Remove(u64),
    /// Drop the session mid-stream; the follower reconnects and resumes
    /// (or re-bootstraps) from its watermark.
    Disconnect,
    /// Leader-side snapshot + compaction (retention 2) — the ship
    /// barrier and the resume/bootstrap decision both get exercised.
    Compact,
    /// Quiesce and compare: follower at watermark W vs leader clone at W.
    Checkpoint,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..10, 0.0f64..1.0).prop_map(|(id, frac)| Op::Register(id, frac)),
        (1u64..10, 0.0f64..60.0, 0.0f64..1.0).prop_map(|(id, t, frac)| Op::Update(id, t, frac)),
        (1u64..10, 0.0f64..60.0, 0.0f64..1.0).prop_map(|(id, t, frac)| Op::Update(id, t, frac)),
        (1u64..10, 0.0f64..60.0, 0.0f64..1.0).prop_map(|(id, t, frac)| Op::Update(id, t, frac)),
        (1u64..10).prop_map(Op::Remove),
        Just(Op::Disconnect),
        Just(Op::Compact),
        Just(Op::Checkpoint),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn follower_at_watermark_equals_leader_clone(
        ops in proptest::collection::vec(op(), 10..80),
    ) {
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let s = Scenario::start(&format!("prop-{case}"), 0);
        let mut config = test_replica_config();
        config.snapshot_every = 16;
        let replica = StandbyReplica::open(&s.fdir, s.proxy.addr(), config).unwrap();

        let mut checkpoints = 0u32;
        for op in &ops {
            match *op {
                Op::Register(id, frac) => {
                    let _ = s.leader.register_moving(vehicle(id, frac * 900.0));
                }
                Op::Update(id, t, frac) => {
                    let _ = s.leader.apply_update(ObjectId(id), &update(t, frac * 900.0));
                }
                Op::Remove(id) => {
                    let _ = s.leader.remove_moving(ObjectId(id));
                }
                Op::Disconnect => replica.force_reconnect(),
                Op::Compact => {
                    s.leader.snapshot_with_retention(2).unwrap();
                }
                Op::Checkpoint => {
                    checkpoints += 1;
                    let w = s.leader.wal().next_lsn();
                    let at_w = s.leader.database().with_read(|db| db.clone());
                    prop_assert!(
                        replica.wait_for_lsn(w, WAIT),
                        "case {}: checkpoint at W={} timed out: {}",
                        case, w, replica.stats()
                    );
                    // The leader is quiescent and the follower cannot run
                    // past the leader's log, so applied == W exactly.
                    prop_assert_eq!(replica.applied_lsn(), w);
                    replica.database().with_read(|db| assert_converged(&at_w, db));
                }
            }
        }

        // Always close with a checkpoint so every interleaving is judged.
        let w = s.leader.wal().next_lsn();
        let at_w = s.leader.database().with_read(|db| db.clone());
        prop_assert!(
            replica.wait_for_lsn(w, WAIT),
            "case {}: final checkpoint at W={} timed out: {}",
            case, w, replica.stats()
        );
        prop_assert_eq!(replica.applied_lsn(), w);
        replica.database().with_read(|db| assert_converged(&at_w, db));
        let _ = checkpoints;

        s.finish(replica);
    }
}
