//! Follower crash-restart: a standby that goes down mid-replay restarts
//! from its *local* snapshot + cursor and resumes incrementally — no
//! re-bootstrap, idempotent watermark-overlap replay. The follower-side
//! mirror of `durable_snapshot_prop.rs`.

mod common;

use std::time::Duration;

use common::*;
use modb_core::ObjectId;
use modb_server::{DurableDatabase, ReplicaPhase, StandbyReplica};

const WAIT: Duration = Duration::from_secs(30);

#[test]
fn restart_resumes_from_local_snapshot_without_rebootstrap() {
    let ldir = tmp("restart-leader");
    let fdir = tmp("restart-follower");
    let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
    for i in 1..=10u64 {
        leader.register_moving(vehicle(i, 10.0 * i as f64)).unwrap();
    }
    let server = leader
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let addr = server.local_addr().to_string();

    // ---- Session 1: bootstrap, stream, snapshot locally, then "crash".
    let mut config = test_replica_config();
    config.snapshot_every = 16; // local snapshots during catch-up
    let replica = StandbyReplica::open(&fdir, &addr, config.clone()).unwrap();
    for round in 1..=60u64 {
        for i in 1..=10u64 {
            leader
                .apply_update(
                    ObjectId(i),
                    &update(round as f64, 10.0 * i as f64 + round as f64),
                )
                .unwrap();
        }
    }
    let frontier = leader.wal().next_lsn();
    assert!(replica.wait_for_lsn(frontier, WAIT), "catch-up timed out");
    let stats = replica.shutdown(); // down — but its directory survives
    assert_eq!(stats.bootstraps, 1, "first contact bootstraps");
    assert!(stats.snapshots_taken >= 1, "local snapshots were taken");
    assert_eq!(stats.applied_lsn, frontier);

    // ---- Leader keeps moving while the follower is down.
    for round in 61..=90u64 {
        for i in 1..=10u64 {
            leader
                .apply_update(
                    ObjectId(i),
                    &update(round as f64, 10.0 * i as f64 + round as f64),
                )
                .unwrap();
        }
    }

    // ---- Session 2: restart from the local directory.
    let replica = StandbyReplica::open(&fdir, &addr, config.clone()).unwrap();
    assert!(
        replica.applied_lsn() >= stats.applied_lsn.saturating_sub(1),
        "local recovery restored the cursor (got {}, had {})",
        replica.applied_lsn(),
        stats.applied_lsn,
    );
    let frontier = leader.wal().next_lsn();
    assert!(replica.wait_for_lsn(frontier, WAIT), "resume timed out");
    assert_eq!(
        replica.stats().bootstraps,
        0,
        "restart must not re-bootstrap"
    );
    // Steady is declared on the next heartbeat after catch-up.
    let deadline = std::time::Instant::now() + WAIT;
    while replica.phase() != ReplicaPhase::Steady {
        assert!(std::time::Instant::now() < deadline, "never went steady");
        std::thread::sleep(Duration::from_millis(2));
    }

    let expected = leader.database().with_read(|db| db.clone());
    replica
        .database()
        .with_read(|db| assert_converged(&expected, db));
    replica.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&fdir).unwrap();
}

#[test]
fn restart_mid_catchup_replays_watermark_overlap_idempotently() {
    let ldir = tmp("overlap-leader");
    let fdir = tmp("overlap-follower");
    let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
    for i in 1..=5u64 {
        leader.register_moving(vehicle(i, 50.0 * i as f64)).unwrap();
    }
    let server = leader
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let addr = server.local_addr().to_string();

    let mut config = test_replica_config();
    config.snapshot_every = 8;
    let replica = StandbyReplica::open(&fdir, &addr, config.clone()).unwrap();
    for round in 1..=40u64 {
        for i in 1..=5u64 {
            leader
                .apply_update(
                    ObjectId(i),
                    &update(round as f64, 50.0 * i as f64 + round as f64 * 0.5),
                )
                .unwrap();
        }
    }
    // Cut the session somewhere mid-catch-up: wait only for a prefix,
    // then go down immediately. The local log ends at an arbitrary
    // watermark W strictly between snapshot and frontier.
    assert!(replica.wait_for_lsn(20, WAIT), "prefix timed out");
    let stats = replica.shutdown();
    let w = stats.applied_lsn;
    assert!(w >= 20, "follower applied a prefix");

    // Restart: local recovery replays [local snapshot, W), the leader
    // re-ships from W. Every record is applied exactly once in effect —
    // re-deliveries of already-applied updates are no-ops.
    let replica = StandbyReplica::open(&fdir, &addr, config).unwrap();
    let frontier = leader.wal().next_lsn();
    assert!(replica.wait_for_lsn(frontier, WAIT), "resume timed out");
    assert_eq!(replica.stats().bootstraps, 0, "no re-bootstrap");
    let expected = leader.database().with_read(|db| db.clone());
    replica
        .database()
        .with_read(|db| assert_converged(&expected, db));

    // A third open with nothing new to fetch is also clean.
    replica.shutdown();
    let replica = StandbyReplica::open(&fdir, &addr, test_replica_config()).unwrap();
    assert!(replica.wait_for_lsn(frontier, WAIT));
    let expected = leader.database().with_read(|db| db.clone());
    replica
        .database()
        .with_read(|db| assert_converged(&expected, db));
    replica.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&fdir).unwrap();
}
