//! Fault injection for the replication stream: a byte-level proxy sits
//! between leader and follower and truncates frames mid-byte, corrupts
//! CRCs, duplicates whole messages, stalls the stream, and drops the
//! connection at every protocol state. The invariant under every fault:
//! the follower either rejects cleanly and re-syncs or converges — it
//! **never** applies a torn record and never ends in a diverged state.

mod common;

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use common::*;
use modb_core::ObjectId;
use modb_server::{DurableDatabase, StandbyReplica};

const WAIT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------
// The fault proxy
// ---------------------------------------------------------------------

/// One fault applied to the leader→follower byte stream of a single
/// proxied connection (follower→leader bytes always pass through).
#[derive(Clone)]
enum Fault {
    /// Pass everything through unchanged.
    None,
    /// Forward exactly `n` downstream bytes, then sever the connection —
    /// the follower sees a frame truncated mid-byte.
    CutAfterBytes(usize),
    /// Flip one bit of downstream byte `n` (0-based), then keep going —
    /// a CRC mismatch the follower must reject.
    CorruptByteAt(usize),
    /// Parse downstream framing and send every complete message twice —
    /// duplicate delivery the watermark must absorb.
    DuplicateMessages,
    /// Forward freely while `hold` is false; while true, stop moving
    /// bytes (backpressure reaches the leader). Used to pin a live,
    /// silent follower while the leader compacts.
    Stall { hold: Arc<AtomicBool> },
}

/// TCP proxy that pops one [`Fault`] per accepted connection (empty
/// queue = `Fault::None`).
struct FaultProxy {
    addr: SocketAddr,
    faults: Arc<Mutex<VecDeque<Fault>>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    fn start(leader: SocketAddr) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let faults: Arc<Mutex<VecDeque<Fault>>> = Arc::new(Mutex::new(VecDeque::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let faults = Arc::clone(&faults);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let Ok(upstream) = TcpStream::connect(leader) else {
                                let _ = client.shutdown(Shutdown::Both);
                                continue;
                            };
                            let fault = faults.lock().unwrap().pop_front().unwrap_or(Fault::None);
                            let stop = Arc::clone(&stop);
                            pumps.push(std::thread::spawn(move || {
                                run_connection(client, upstream, fault, stop)
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    pumps.retain(|h| !h.is_finished());
                }
                for h in pumps {
                    let _ = h.join();
                }
            })
        };
        FaultProxy {
            addr,
            faults,
            stop,
            accept: Some(accept),
        }
    }

    fn addr(&self) -> String {
        self.addr.to_string()
    }

    fn push(&self, fault: Fault) {
        self.faults.lock().unwrap().push_back(fault);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Pumps one proxied connection: follower→leader verbatim on a side
/// thread, leader→follower through the fault.
fn run_connection(client: TcpStream, upstream: TcpStream, fault: Fault, stop: Arc<AtomicBool>) {
    client
        .set_read_timeout(Some(Duration::from_millis(5)))
        .unwrap();
    upstream
        .set_read_timeout(Some(Duration::from_millis(5)))
        .unwrap();
    let dead = Arc::new(AtomicBool::new(false));
    let up = {
        // follower → leader: always clean.
        let mut from = client.try_clone().unwrap();
        let mut to = upstream.try_clone().unwrap();
        let stop = Arc::clone(&stop);
        let dead = Arc::clone(&dead);
        std::thread::spawn(move || {
            pump_clean(&mut from, &mut to, &stop, &dead);
        })
    };
    let mut from = upstream.try_clone().unwrap();
    let mut to = client.try_clone().unwrap();
    pump_faulty(&mut from, &mut to, fault, &stop, &dead);
    dead.store(true, Ordering::SeqCst);
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = up.join();
}

fn read_some(from: &mut TcpStream, buf: &mut [u8]) -> Option<usize> {
    match from.read(buf) {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::Interrupted =>
        {
            Some(0)
        }
        Err(_) => None,
    }
}

fn pump_clean(from: &mut TcpStream, to: &mut TcpStream, stop: &AtomicBool, dead: &AtomicBool) {
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::SeqCst) && !dead.load(Ordering::SeqCst) {
        match read_some(from, &mut buf) {
            Some(0) => continue,
            Some(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            None => break,
        }
    }
    dead.store(true, Ordering::SeqCst);
}

fn pump_faulty(
    from: &mut TcpStream,
    to: &mut TcpStream,
    fault: Fault,
    stop: &AtomicBool,
    dead: &AtomicBool,
) {
    let mut buf = [0u8; 16 * 1024];
    let mut forwarded = 0usize; // downstream bytes already sent
    let mut frame_buf: Vec<u8> = Vec::new(); // DuplicateMessages reassembly
    while !stop.load(Ordering::SeqCst) && !dead.load(Ordering::SeqCst) {
        if let Fault::Stall { hold } = &fault {
            if hold.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
                continue; // no reads: backpressure reaches the leader
            }
        }
        let n = match read_some(from, &mut buf) {
            Some(0) => continue,
            Some(n) => n,
            None => break,
        };
        let chunk = &mut buf[..n];
        match &fault {
            Fault::None | Fault::Stall { .. } => {
                if to.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::CutAfterBytes(limit) => {
                let keep = limit.saturating_sub(forwarded).min(chunk.len());
                if keep > 0 && to.write_all(&chunk[..keep]).is_err() {
                    break;
                }
                forwarded += keep;
                if forwarded >= *limit {
                    break; // sever mid-frame
                }
            }
            Fault::CorruptByteAt(target) => {
                if (forwarded..forwarded + chunk.len()).contains(target) {
                    chunk[*target - forwarded] ^= 0x40;
                }
                forwarded += chunk.len();
                if to.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::DuplicateMessages => {
                frame_buf.extend_from_slice(chunk);
                // Forward each complete outer frame twice; keep partial
                // tails buffered so duplication is always frame-aligned.
                loop {
                    if frame_buf.len() < 8 {
                        break;
                    }
                    let len = u32::from_le_bytes([
                        frame_buf[0],
                        frame_buf[1],
                        frame_buf[2],
                        frame_buf[3],
                    ]) as usize;
                    let total = 8 + len;
                    if frame_buf.len() < total {
                        break;
                    }
                    let frame: Vec<u8> = frame_buf.drain(..total).collect();
                    if to.write_all(&frame).is_err() || to.write_all(&frame).is_err() {
                        return;
                    }
                }
            }
        }
    }
    dead.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Scenario plumbing
// ---------------------------------------------------------------------

struct Scenario {
    leader: DurableDatabase,
    server: modb_server::ReplicationServer,
    proxy: FaultProxy,
    ldir: std::path::PathBuf,
    fdir: std::path::PathBuf,
}

impl Scenario {
    fn start(name: &str, vehicles: u64) -> Scenario {
        let ldir = tmp(&format!("faults-{name}-leader"));
        let fdir = tmp(&format!("faults-{name}-follower"));
        let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
        for i in 1..=vehicles {
            leader.register_moving(vehicle(i, 10.0 * i as f64)).unwrap();
        }
        let server = leader
            .serve_replication("127.0.0.1:0", test_replication_config())
            .unwrap();
        let proxy = FaultProxy::start(server.local_addr());
        Scenario {
            leader,
            server,
            proxy,
            ldir,
            fdir,
        }
    }

    fn churn(&self, rounds: std::ops::RangeInclusive<u64>, vehicles: u64) {
        for round in rounds {
            for i in 1..=vehicles {
                self.leader
                    .apply_update(
                        ObjectId(i),
                        &update(round as f64, 10.0 * i as f64 + round as f64 * 0.1),
                    )
                    .unwrap();
            }
        }
    }

    /// Waits for the follower to reach the leader frontier, then checks
    /// exact logical equality — the "never diverged" post-condition of
    /// every fault scenario.
    fn assert_converges(&self, replica: &StandbyReplica) {
        let frontier = self.leader.wal().next_lsn();
        assert!(
            replica.wait_for_lsn(frontier, WAIT),
            "follower never converged: {}",
            replica.stats()
        );
        let expected = self.leader.database().with_read(|db| db.clone());
        replica
            .database()
            .with_read(|db| assert_converged(&expected, db));
    }

    fn finish(self, replica: StandbyReplica) {
        replica.shutdown();
        drop(self.proxy);
        self.server.shutdown();
        std::fs::remove_dir_all(&self.ldir).unwrap();
        std::fs::remove_dir_all(&self.fdir).unwrap();
    }
}

// ---------------------------------------------------------------------
// The fault suite
// ---------------------------------------------------------------------

/// Frames truncated mid-byte at a spread of offsets — through the
/// handshake, mid-snapshot, and mid-records. Each cut drops the
/// connection with a partial frame on the wire; the follower must
/// discard the partial bytes, reconnect, and converge without ever
/// applying a torn record.
#[test]
fn truncated_frames_at_every_offset_never_apply_torn_records() {
    let s = Scenario::start("cut", 5);
    // Offsets chosen to land in every protocol state: inside the first
    // frame header (1, 7), on the header boundary (8), inside the
    // bootstrap snapshot payload (9, 64, 300), and inside later Records
    // frames (1000, 3000).
    for cut in [1usize, 7, 8, 9, 64, 300, 1000, 3000] {
        s.proxy.push(Fault::CutAfterBytes(cut));
    }
    s.proxy.push(Fault::None); // final clean session
    let replica = StandbyReplica::open(&s.fdir, s.proxy.addr(), test_replica_config()).unwrap();
    s.churn(1..=60, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(stats.connects >= 9, "every cut forced a reconnect: {stats}");
    s.finish(replica);
}

/// A flipped bit inside a frame: the outer CRC (or the per-record inner
/// CRC) must catch it, the session must end in a re-sync, and the
/// follower must converge on the retry — rejected cleanly, never
/// applied.
#[test]
fn corrupted_bytes_are_rejected_and_resynced() {
    let s = Scenario::start("corrupt", 5);
    // Corruption landing in the outer CRC field (4) and at several
    // depths of the bootstrap snapshot payload. (Offsets are chosen to
    // miss the 4-byte length prefix: a corrupted *length* doesn't fail
    // fast, it makes the reader wait for phantom bytes — a different
    // hazard, covered by the cut tests when the stream then dies.)
    for target in [4usize, 9, 64, 200] {
        s.proxy.push(Fault::CorruptByteAt(target));
    }
    s.proxy.push(Fault::None);
    let replica = StandbyReplica::open(&s.fdir, s.proxy.addr(), test_replica_config()).unwrap();
    s.churn(1..=60, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(
        stats.resyncs + stats.rejected_messages >= 1,
        "corruption must surface as a clean reject: {stats}"
    );
    s.finish(replica);
}

/// Every message delivered twice (frame-aligned). Duplicate `Records`
/// runs land below the applied watermark and are skipped idempotently;
/// a duplicate bootstrap snapshot re-installs the same state. The
/// follower converges with no double-applied update.
#[test]
fn duplicated_messages_are_absorbed_by_the_watermark() {
    let s = Scenario::start("dup", 5);
    s.proxy.push(Fault::DuplicateMessages);
    let replica = StandbyReplica::open(&s.fdir, s.proxy.addr(), test_replica_config()).unwrap();
    s.churn(1..=60, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(
        stats.records_skipped > 0 || stats.bootstraps > 1,
        "duplicates must have been delivered and absorbed: {stats}"
    );
    s.finish(replica);
}

/// Connection dropped at every protocol state, including before a
/// single byte flows (cut at 0: the follower's Hello gets no answer).
/// Reconnect-and-resume must hold the watermark monotonic throughout.
#[test]
fn disconnects_at_every_protocol_state_resume_incrementally() {
    let s = Scenario::start("drop", 5);
    s.proxy.push(Fault::CutAfterBytes(0)); // before the handshake answer
    s.proxy.push(Fault::None); // bootstrap succeeds
    let replica = StandbyReplica::open(&s.fdir, s.proxy.addr(), test_replica_config()).unwrap();
    s.churn(1..=20, 5);
    s.assert_converges(&replica);
    let after_bootstrap = replica.applied_lsn();
    let bootstraps = replica.stats().bootstraps;

    // Now drop repeatedly mid-stream: each session forwards a little
    // further, then dies; the follower must resume from its watermark
    // (no re-bootstrap — its log position is still on the leader's
    // disk, pinned by the barrier while connected and by retention
    // while briefly between sessions).
    for cut in [200usize, 500, 900] {
        s.proxy.push(Fault::CutAfterBytes(cut));
    }
    s.proxy.push(Fault::None);
    // Leave the live clean session so the queued faults get their turn.
    replica.force_reconnect();
    s.churn(21..=80, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(stats.applied_lsn > after_bootstrap);
    assert_eq!(
        stats.bootstraps, bootstraps,
        "mid-stream drops must resume, not re-bootstrap: {stats}"
    );
    s.finish(replica);
}

/// A live-but-stalled follower pins compaction: while the stream is
/// held, the leader churns and aggressively compacts (retention 1).
/// The ship barrier must keep every segment past the follower's
/// acknowledged watermark, so when the stall lifts the session simply
/// continues — no orphaning, no re-bootstrap. (Without
/// `compact_with_barrier` the leader would delete those segments; see
/// the regression test in `modb-wal`.)
#[test]
fn stalled_follower_is_not_orphaned_by_compaction() {
    let s = Scenario::start("stall", 5);
    let hold = Arc::new(AtomicBool::new(false));
    // Several identical stall faults: if anything drops the session, the
    // reconnect lands on a stalled stream too instead of a clean one.
    for _ in 0..4 {
        s.proxy.push(Fault::Stall {
            hold: Arc::clone(&hold),
        });
    }
    let replica = StandbyReplica::open(&s.fdir, s.proxy.addr(), test_replica_config()).unwrap();
    // Catch up first so the follower's watermark is meaningful.
    s.churn(1..=10, 5);
    s.assert_converges(&replica);
    assert_eq!(replica.stats().bootstraps, 1);

    // Stall the stream and let in-flight chunks (and their acks) drain,
    // freezing the follower's watermark at W.
    hold.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(50));
    let w = replica.applied_lsn();

    // Churn enough to rotate many segments and compact with retention 1
    // several times while the follower is silent-but-live.
    for batch in 0..4u64 {
        s.churn(11 + batch * 20..=30 + batch * 20, 5);
        assert!(
            s.server.stats().followers >= 1,
            "stalled session must stay registered: {}",
            s.server.stats()
        );
        s.leader.snapshot_with_retention(1).unwrap();
    }
    // The barrier pinned the log at (or below) the follower's ack.
    let oldest = modb_wal::list_segments(s.leader.dir()).unwrap()[0].0;
    assert!(
        oldest <= w,
        "compaction deleted log the stalled follower still needs \
         (oldest surviving segment starts at {oldest}, follower acked {w})"
    );

    // Lift the stall: the same session drains the backlog.
    hold.store(false, Ordering::SeqCst);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert_eq!(stats.bootstraps, 1, "never re-bootstrapped: {stats}");
    s.finish(replica);
}
