//! Fault injection for the replication stream: a byte-level proxy sits
//! between leader and follower and truncates frames mid-byte, corrupts
//! CRCs, duplicates whole messages, stalls the stream, and drops the
//! connection at every protocol state. The invariant under every fault:
//! the follower either rejects cleanly and re-syncs or converges — it
//! **never** applies a torn record and never ends in a diverged state.
//!
//! The proxy and scenario plumbing live in
//! `common::replica_harness`, shared with the front-end and
//! follower-read fault suites.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::replica_harness::{Fault, Scenario};

#[test]
fn truncated_frames_at_every_offset_never_apply_torn_records() {
    let s = Scenario::start("cut", 5);
    // Offsets chosen to land in every protocol state: inside the first
    // frame header (1, 7), on the header boundary (8), inside the
    // bootstrap snapshot payload (9, 64, 300), and inside later Records
    // frames (1000, 3000). Each cut drops the connection with a partial
    // frame on the wire; the follower must discard the partial bytes,
    // reconnect, and converge without ever applying a torn record.
    for cut in [1usize, 7, 8, 9, 64, 300, 1000, 3000] {
        s.proxy.push(Fault::CutAfterBytes(cut));
    }
    s.proxy.push(Fault::None); // final clean session
    let replica = s.follower();
    s.churn(1..=60, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(stats.connects >= 9, "every cut forced a reconnect: {stats}");
    s.finish(replica);
}

/// A flipped bit inside a frame: the outer CRC (or the per-record inner
/// CRC) must catch it, the session must end in a re-sync, and the
/// follower must converge on the retry — rejected cleanly, never
/// applied.
#[test]
fn corrupted_bytes_are_rejected_and_resynced() {
    let s = Scenario::start("corrupt", 5);
    // Corruption landing in the outer CRC field (4) and at several
    // depths of the bootstrap snapshot payload. (Offsets are chosen to
    // miss the 4-byte length prefix: a corrupted *length* doesn't fail
    // fast, it makes the reader wait for phantom bytes — a different
    // hazard, covered by the cut tests when the stream then dies.)
    for target in [4usize, 9, 64, 200] {
        s.proxy.push(Fault::CorruptByteAt(target));
    }
    s.proxy.push(Fault::None);
    let replica = s.follower();
    s.churn(1..=60, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(
        stats.resyncs + stats.rejected_messages >= 1,
        "corruption must surface as a clean reject: {stats}"
    );
    s.finish(replica);
}

/// Every message delivered twice (frame-aligned). Duplicate `Records`
/// runs land below the applied watermark and are skipped idempotently;
/// a duplicate bootstrap snapshot re-installs the same state. The
/// follower converges with no double-applied update.
#[test]
fn duplicated_messages_are_absorbed_by_the_watermark() {
    let s = Scenario::start("dup", 5);
    s.proxy.push(Fault::DuplicateMessages);
    let replica = s.follower();
    s.churn(1..=60, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(
        stats.records_skipped > 0 || stats.bootstraps > 1,
        "duplicates must have been delivered and absorbed: {stats}"
    );
    s.finish(replica);
}

/// Connection dropped at every protocol state, including before a
/// single byte flows (cut at 0: the follower's Hello gets no answer).
/// Reconnect-and-resume must hold the watermark monotonic throughout.
#[test]
fn disconnects_at_every_protocol_state_resume_incrementally() {
    let s = Scenario::start("drop", 5);
    s.proxy.push(Fault::CutAfterBytes(0)); // before the handshake answer
    s.proxy.push(Fault::None); // bootstrap succeeds
    let replica = s.follower();
    s.churn(1..=20, 5);
    s.assert_converges(&replica);
    let after_bootstrap = replica.applied_lsn();
    let bootstraps = replica.stats().bootstraps;

    // Now drop repeatedly mid-stream: each session forwards a little
    // further, then dies; the follower must resume from its watermark
    // (no re-bootstrap — its log position is still on the leader's
    // disk, pinned by the barrier while connected and by retention
    // while briefly between sessions).
    for cut in [200usize, 500, 900] {
        s.proxy.push(Fault::CutAfterBytes(cut));
    }
    s.proxy.push(Fault::None);
    // Leave the live clean session so the queued faults get their turn.
    replica.force_reconnect();
    s.churn(21..=80, 5);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert!(stats.applied_lsn > after_bootstrap);
    assert_eq!(
        stats.bootstraps, bootstraps,
        "mid-stream drops must resume, not re-bootstrap: {stats}"
    );
    s.finish(replica);
}

/// A live-but-stalled follower pins compaction: while the stream is
/// held, the leader churns and aggressively compacts (retention 1).
/// The ship barrier must keep every segment past the follower's
/// acknowledged watermark, so when the stall lifts the session simply
/// continues — no orphaning, no re-bootstrap. (Without
/// `compact_with_barrier` the leader would delete those segments; see
/// the regression test in `modb-wal`.)
#[test]
fn stalled_follower_is_not_orphaned_by_compaction() {
    let s = Scenario::start("stall", 5);
    let hold = Arc::new(AtomicBool::new(false));
    // Several identical stall faults: if anything drops the session, the
    // reconnect lands on a stalled stream too instead of a clean one.
    for _ in 0..4 {
        s.proxy.push(Fault::Stall {
            hold: Arc::clone(&hold),
        });
    }
    let replica = s.follower();
    // Catch up first so the follower's watermark is meaningful.
    s.churn(1..=10, 5);
    s.assert_converges(&replica);
    assert_eq!(replica.stats().bootstraps, 1);

    // Stall the stream and let in-flight chunks (and their acks) drain,
    // freezing the follower's watermark at W.
    hold.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(50));
    let w = replica.applied_lsn();

    // Churn enough to rotate many segments and compact with retention 1
    // several times while the follower is silent-but-live.
    for batch in 0..4u64 {
        s.churn(11 + batch * 20..=30 + batch * 20, 5);
        assert!(
            s.server.stats().followers >= 1,
            "stalled session must stay registered: {}",
            s.server.stats()
        );
        s.leader.snapshot_with_retention(1).unwrap();
    }
    // The barrier pinned the log at (or below) the follower's ack.
    let oldest = modb_wal::list_segments(s.leader.dir()).unwrap()[0].0;
    assert!(
        oldest <= w,
        "compaction deleted log the stalled follower still needs \
         (oldest surviving segment starts at {oldest}, follower acked {w})"
    );

    // Lift the stall: the same session drains the backlog.
    hold.store(false, Ordering::SeqCst);
    s.assert_converges(&replica);
    let stats = replica.stats();
    assert_eq!(stats.bootstraps, 1, "never re-bootstrapped: {stats}");
    s.finish(replica);
}
