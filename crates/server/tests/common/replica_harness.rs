//! Shared fault-injection plumbing for the replication and front-end
//! integration suites: the byte-level [`FaultProxy`], the
//! leader-behind-proxy [`Scenario`], and raw-wire helpers for hitting a
//! query server below the client library.
//!
//! Anything that proxies a TCP stream is topology-agnostic: the same
//! [`FaultProxy`] sits in front of a leader's replication server, a
//! follower's re-shipping server, or a query front-end (leader- or
//! follower-served).
#![allow(dead_code)]

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modb_core::ObjectId;
use modb_server::{
    DurableDatabase, QueryClient, QueryEngineConfig, QueryServer, QueryServerConfig, StandbyReplica,
};
use modb_wal::crc32;

use super::{
    assert_converged, fresh_db, test_replica_config, test_replication_config, test_wal_options,
    tmp, update, vehicle,
};

/// Outer wait bound for convergence and socket-close assertions.
pub const WAIT: Duration = Duration::from_secs(30);

/// The query protocol version the raw-wire helpers handshake with (keep
/// in sync with `NET_PROTOCOL_VERSION` — the handshake is exact-match).
pub const RAW_NET_VERSION: u32 = 5;

/// Polls `cond` until it holds or [`WAIT`] elapses.
pub fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// The fault proxy
// ---------------------------------------------------------------------

/// One fault applied to the upstream→client byte stream of a single
/// proxied connection (client→upstream bytes always pass through).
#[derive(Clone)]
pub enum Fault {
    /// Pass everything through unchanged.
    None,
    /// Forward exactly `n` downstream bytes, then sever the connection —
    /// the receiver sees a frame truncated mid-byte.
    CutAfterBytes(usize),
    /// Flip one bit of downstream byte `n` (0-based), then keep going —
    /// a CRC mismatch the receiver must reject.
    CorruptByteAt(usize),
    /// Parse downstream framing and send every complete message twice —
    /// duplicate delivery the watermark must absorb.
    DuplicateMessages,
    /// Forward freely while `hold` is false; while true, stop moving
    /// bytes (backpressure reaches the upstream). Used to pin a live,
    /// silent receiver while the upstream compacts.
    Stall {
        /// Flip to `true` to freeze the stream, back to `false` to
        /// resume it.
        hold: Arc<AtomicBool>,
    },
}

/// TCP proxy that pops one [`Fault`] per accepted connection (empty
/// queue = [`Fault::None`]).
pub struct FaultProxy {
    addr: SocketAddr,
    faults: Arc<Mutex<VecDeque<Fault>>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy in front of `upstream`; connect to
    /// [`FaultProxy::addr`] instead.
    pub fn start(upstream: SocketAddr) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let faults: Arc<Mutex<VecDeque<Fault>>> = Arc::new(Mutex::new(VecDeque::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let faults = Arc::clone(&faults);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let Ok(up) = TcpStream::connect(upstream) else {
                                let _ = client.shutdown(Shutdown::Both);
                                continue;
                            };
                            let fault = faults.lock().unwrap().pop_front().unwrap_or(Fault::None);
                            let stop = Arc::clone(&stop);
                            pumps.push(std::thread::spawn(move || {
                                run_connection(client, up, fault, stop)
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    pumps.retain(|h| !h.is_finished());
                }
                for h in pumps {
                    let _ = h.join();
                }
            })
        };
        FaultProxy {
            addr,
            faults,
            stop,
            accept: Some(accept),
        }
    }

    /// The proxy's listening address, as a connect string.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The proxy's listening address, as a socket address.
    pub fn socket_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queues a fault for the next accepted connection.
    pub fn push(&self, fault: Fault) {
        self.faults.lock().unwrap().push_back(fault);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Pumps one proxied connection: client→upstream verbatim on a side
/// thread, upstream→client through the fault.
fn run_connection(client: TcpStream, upstream: TcpStream, fault: Fault, stop: Arc<AtomicBool>) {
    client
        .set_read_timeout(Some(Duration::from_millis(5)))
        .unwrap();
    upstream
        .set_read_timeout(Some(Duration::from_millis(5)))
        .unwrap();
    let dead = Arc::new(AtomicBool::new(false));
    let up = {
        // client → upstream: always clean.
        let mut from = client.try_clone().unwrap();
        let mut to = upstream.try_clone().unwrap();
        let stop = Arc::clone(&stop);
        let dead = Arc::clone(&dead);
        std::thread::spawn(move || {
            pump_clean(&mut from, &mut to, &stop, &dead);
        })
    };
    let mut from = upstream.try_clone().unwrap();
    let mut to = client.try_clone().unwrap();
    pump_faulty(&mut from, &mut to, fault, &stop, &dead);
    dead.store(true, Ordering::SeqCst);
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = up.join();
}

fn read_some(from: &mut TcpStream, buf: &mut [u8]) -> Option<usize> {
    match from.read(buf) {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::Interrupted =>
        {
            Some(0)
        }
        Err(_) => None,
    }
}

fn pump_clean(from: &mut TcpStream, to: &mut TcpStream, stop: &AtomicBool, dead: &AtomicBool) {
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::SeqCst) && !dead.load(Ordering::SeqCst) {
        match read_some(from, &mut buf) {
            Some(0) => continue,
            Some(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            None => break,
        }
    }
    dead.store(true, Ordering::SeqCst);
}

fn pump_faulty(
    from: &mut TcpStream,
    to: &mut TcpStream,
    fault: Fault,
    stop: &AtomicBool,
    dead: &AtomicBool,
) {
    let mut buf = [0u8; 16 * 1024];
    let mut forwarded = 0usize; // downstream bytes already sent
    let mut frame_buf: Vec<u8> = Vec::new(); // DuplicateMessages reassembly
    while !stop.load(Ordering::SeqCst) && !dead.load(Ordering::SeqCst) {
        if let Fault::Stall { hold } = &fault {
            if hold.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
                continue; // no reads: backpressure reaches the upstream
            }
        }
        let n = match read_some(from, &mut buf) {
            Some(0) => continue,
            Some(n) => n,
            None => break,
        };
        let chunk = &mut buf[..n];
        match &fault {
            Fault::None | Fault::Stall { .. } => {
                if to.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::CutAfterBytes(limit) => {
                let keep = limit.saturating_sub(forwarded).min(chunk.len());
                if keep > 0 && to.write_all(&chunk[..keep]).is_err() {
                    break;
                }
                forwarded += keep;
                if forwarded >= *limit {
                    break; // sever mid-frame
                }
            }
            Fault::CorruptByteAt(target) => {
                if (forwarded..forwarded + chunk.len()).contains(target) {
                    chunk[*target - forwarded] ^= 0x40;
                }
                forwarded += chunk.len();
                if to.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::DuplicateMessages => {
                frame_buf.extend_from_slice(chunk);
                // Forward each complete outer frame twice; keep partial
                // tails buffered so duplication is always frame-aligned.
                loop {
                    if frame_buf.len() < 8 {
                        break;
                    }
                    let len = u32::from_le_bytes([
                        frame_buf[0],
                        frame_buf[1],
                        frame_buf[2],
                        frame_buf[3],
                    ]) as usize;
                    let total = 8 + len;
                    if frame_buf.len() < total {
                        break;
                    }
                    let frame: Vec<u8> = frame_buf.drain(..total).collect();
                    if to.write_all(&frame).is_err() || to.write_all(&frame).is_err() {
                        return;
                    }
                }
            }
        }
    }
    dead.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Scenario plumbing: a leader behind a fault proxy
// ---------------------------------------------------------------------

/// A leader with a registered fleet, its replication server, and a
/// [`FaultProxy`] in front of it — followers connect through the proxy.
pub struct Scenario {
    /// The leader database.
    pub leader: DurableDatabase,
    /// The leader's replication server.
    pub server: modb_server::ReplicationServer,
    /// The proxy between follower and leader.
    pub proxy: FaultProxy,
    /// The leader's durability directory.
    pub ldir: std::path::PathBuf,
    /// A scratch directory for the follower.
    pub fdir: std::path::PathBuf,
}

impl Scenario {
    /// Creates a leader with `vehicles` registered objects (ids
    /// `1..=vehicles` at arcs `10·i`), serving replication behind a
    /// fresh proxy.
    pub fn start(name: &str, vehicles: u64) -> Scenario {
        let ldir = tmp(&format!("faults-{name}-leader"));
        let fdir = tmp(&format!("faults-{name}-follower"));
        let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
        for i in 1..=vehicles {
            leader.register_moving(vehicle(i, 10.0 * i as f64)).unwrap();
        }
        let server = leader
            .serve_replication("127.0.0.1:0", test_replication_config())
            .unwrap();
        let proxy = FaultProxy::start(server.local_addr());
        Scenario {
            leader,
            server,
            proxy,
            ldir,
            fdir,
        }
    }

    /// Applies one update per vehicle per round (time = round, arc
    /// drifting by 0.1 per round).
    pub fn churn(&self, rounds: std::ops::RangeInclusive<u64>, vehicles: u64) {
        for round in rounds {
            for i in 1..=vehicles {
                self.leader
                    .apply_update(
                        ObjectId(i),
                        &update(round as f64, 10.0 * i as f64 + round as f64 * 0.1),
                    )
                    .unwrap();
            }
        }
    }

    /// Waits for the follower to reach the leader frontier, then checks
    /// exact logical equality — the "never diverged" post-condition of
    /// every fault scenario.
    pub fn assert_converges(&self, replica: &StandbyReplica) {
        let frontier = self.leader.wal().next_lsn();
        assert!(
            replica.wait_for_lsn(frontier, WAIT),
            "follower never converged: {}",
            replica.stats()
        );
        let expected = self.leader.database().with_read(|db| db.clone());
        replica
            .database()
            .with_read(|db| assert_converged(&expected, db));
    }

    /// Opens a follower through the proxy with the standard test tuning.
    pub fn follower(&self) -> StandbyReplica {
        StandbyReplica::open(&self.fdir, self.proxy.addr(), test_replica_config()).unwrap()
    }

    /// Tears everything down and removes the scratch directories.
    pub fn finish(self, replica: StandbyReplica) {
        replica.shutdown();
        drop(self.proxy);
        self.server.shutdown();
        std::fs::remove_dir_all(&self.ldir).unwrap();
        std::fs::remove_dir_all(&self.fdir).unwrap();
    }
}

// ---------------------------------------------------------------------
// Query front-end plumbing: a serving leader and raw-wire helpers
// ---------------------------------------------------------------------

/// A leader with 4 vehicles (ids `0..4` at arcs `100·i`), a published
/// engine, and a query front-end with the given config.
pub fn serve(name: &str, config: QueryServerConfig) -> (DurableDatabase, QueryServer) {
    let durable = DurableDatabase::create(tmp(name), fresh_db(), test_wal_options()).unwrap();
    for i in 0..4u64 {
        durable
            .register_moving(vehicle(i, 100.0 * i as f64))
            .unwrap();
    }
    let engine = Arc::new(durable.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }));
    engine.publish_now();
    let server = durable
        .serve_queries(engine, None, "127.0.0.1:0", config)
        .unwrap();
    (durable, server)
}

/// Wraps a payload in the outer framing `[len u32 LE][crc32 u32 LE][payload]`
/// (the protocol encoder is crate-private; tests build frames by hand).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A `Hello` payload at the current protocol version.
pub fn hello_payload() -> Vec<u8> {
    let mut p = vec![1u8]; // Hello tag
    p.extend_from_slice(&RAW_NET_VERSION.to_le_bytes());
    p
}

/// A `Batch` payload with no read-your-writes floor.
pub fn batch_payload(script: &str) -> Vec<u8> {
    batch_payload_with_floor(script, 0)
}

/// A `Batch` payload with an explicit read-your-writes floor.
pub fn batch_payload_with_floor(script: &str, min_lsn: u64) -> Vec<u8> {
    let mut p = vec![2u8]; // Batch tag
    p.extend_from_slice(&(script.len() as u32).to_le_bytes());
    p.extend_from_slice(script.as_bytes());
    p.extend_from_slice(&min_lsn.to_le_bytes());
    p
}

/// Connects raw and completes the handshake by hand, returning the
/// stream positioned after the `HelloAck` frame.
pub fn raw_handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&frame(&hello_payload())).unwrap();
    let mut header = [0u8; 8];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    assert_eq!(body[0], 4, "expected HelloAck, got tag {}", body[0]);
    stream
}

/// Reads until EOF (or error), proving the server closed the session.
pub fn assert_closed(stream: &mut TcpStream) {
    let mut sink = [0u8; 4096];
    let deadline = Instant::now() + WAIT;
    loop {
        assert!(
            Instant::now() < deadline,
            "server never closed the connection"
        );
        match stream.read(&mut sink) {
            Ok(0) => return,   // clean EOF
            Ok(_) => continue, // drain whatever was in flight
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // reset also counts as closed
        }
    }
}

/// The server still answers a healthy client — the wedge check.
pub fn assert_healthy(addr: SocketAddr) {
    let mut client = QueryClient::connect(addr).unwrap();
    let verdicts = client
        .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 3")
        .unwrap();
    assert_eq!(verdicts.len(), 1);
    assert!(verdicts[0].is_ok(), "{:?}", verdicts[0]);
    client.close();
}
