//! Shared fixtures for the replication integration tests.
#![allow(dead_code)]

pub mod replica_harness;

use std::path::PathBuf;
use std::time::Duration;

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{ReplicaConfig, ReplicationConfig};
use modb_wal::{FsyncPolicy, WalOptions};

/// A unique scratch directory (removed up front, not on exit — kept for
/// post-mortem when a test fails).
pub fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-repl-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One long straight route so arc positions are easy to reason about.
pub fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)],
    )
    .unwrap();
    Database::new(
        RouteNetwork::from_routes([route]).unwrap(),
        DatabaseConfig::default(),
    )
}

pub fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: 1.5,
        trip_end: None,
    }
}

pub fn update(t: f64, arc: f64) -> UpdateMessage {
    UpdateMessage::basic(t, UpdatePosition::Arc(arc), 1.0)
}

/// Small segments + no fsync: tests rotate often and run fast.
pub fn test_wal_options() -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::Never,
        max_segment_bytes: 512,
        ..WalOptions::default()
    }
}

/// Leader tuning with tight intervals for 1-core CI runners.
pub fn test_replication_config() -> ReplicationConfig {
    ReplicationConfig {
        chunk_records: 64,
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(20),
        write_timeout: Some(Duration::from_secs(10)),
    }
}

/// Follower tuning to match.
pub fn test_replica_config() -> ReplicaConfig {
    ReplicaConfig {
        wal: test_wal_options(),
        reconnect_backoff: Duration::from_millis(5),
        read_timeout: Duration::from_millis(5),
        snapshot_every: 0,
        snapshot_retention: 2,
    }
}

/// Full logical equality: same objects, same position attributes, same
/// transaction-time history, same landmark set.
pub fn assert_converged(leader: &Database, follower: &Database) {
    assert_eq!(
        leader.moving_count(),
        follower.moving_count(),
        "moving count"
    );
    assert_eq!(
        leader.stationary_count(),
        follower.stationary_count(),
        "stationary count"
    );
    let mut ids: Vec<ObjectId> = leader.moving_ids().collect();
    ids.sort();
    for id in ids {
        assert_eq!(
            leader.moving(id).unwrap(),
            follower.moving(id).unwrap(),
            "object {id:?}"
        );
        assert_eq!(
            leader.history_of(id),
            follower.history_of(id),
            "history of {id:?}"
        );
    }
}
