//! Leader failover: follower promotion, chain repoint, divergence
//! refusal, and the deadman coordinator (DESIGN.md §16).
//!
//! The invariants under test:
//!
//! - a promoted standby becomes a full acked-write leader whose state is
//!   exactly the applied prefix it acknowledged — zero acked-write loss
//!   across the kill → promote → repoint sequence, even when the dying
//!   leader's last session was severed mid-byte;
//! - everything chained off the promotee keeps working: its re-ship
//!   server streams the sealed `LeaderEpoch` record and the new epoch's
//!   writes to survivors repointed at it, which resume from their
//!   applied watermark instead of re-bootstrapping;
//! - a revived old leader whose log tail passed the promotion point is
//!   refused with a typed `Diverged` answer and its local log is left
//!   intact — never silently truncated or overwritten.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::replica_harness::{wait_until, Fault, Scenario, WAIT};
use common::{
    assert_converged, fresh_db, test_replica_config, test_replication_config, test_wal_options,
    tmp, update, vehicle,
};
use modb_core::ObjectId;
use modb_server::{
    DurableDatabase, FailoverConfig, FailoverCoordinator, FailoverError, QueryClientConfig,
    QueryEngineConfig, QueryServerConfig, ReplicaPhase, StandbyReplica,
};

/// Coordinator tuning tight enough for CI: a dead leader is declared
/// within ~half a second.
fn test_failover_config() -> FailoverConfig {
    FailoverConfig {
        probe_interval: Duration::from_millis(5),
        probe_failures: 2,
        client: QueryClientConfig {
            response_timeout: Duration::from_millis(250),
            connect_timeout: Some(Duration::from_millis(250)),
            ..QueryClientConfig::default()
        },
    }
}

/// The basic promotion contract: the promotee seals a new epoch, keeps
/// every acked write it applied, and accepts (and acks) new writes.
#[test]
fn promotion_seals_an_epoch_and_accepts_acked_writes() {
    let s = Scenario::start("promote-basic", 4);
    let replica = s.follower();
    s.churn(1..=3, 4);
    s.assert_converges(&replica);
    let frontier = s.leader.wal().next_lsn();
    let expected = s.leader.database().with_read(|db| db.clone());

    // The leader dies: proxy and server gone, handle dropped.
    let Scenario {
        leader,
        server,
        proxy,
        ldir,
        fdir,
    } = s;
    drop(proxy);
    server.shutdown();
    drop(leader);

    assert_eq!(replica.epoch(), 1, "no promotion seen yet");
    let promoted = replica.promote().unwrap();
    assert_eq!(promoted.epoch(), 2, "promotion opened epoch 2");
    assert_eq!(
        promoted.wal().next_lsn(),
        frontier + 1,
        "exactly one seal record on top of the applied prefix"
    );
    promoted
        .database()
        .with_read(|db| assert_converged(&expected, db));

    // The promotee is a real leader now: acked ingest lands in its log.
    promoted
        .apply_update(ObjectId(1), &update(10.0, 15.0))
        .unwrap();
    assert_eq!(promoted.wal().next_lsn(), frontier + 2);

    // And it is durable: reopen from disk sees the sealed epoch and the
    // post-promotion write.
    drop(promoted);
    let (reopened, report) = DurableDatabase::open(&fdir, test_wal_options()).unwrap();
    assert_eq!(reopened.epoch(), 2);
    assert_eq!(report.next_lsn, frontier + 2);
    assert_eq!(reopened.wal().next_lsn(), frontier + 2);
    drop(reopened);
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&fdir).unwrap();
}

/// A standby that never completed a bootstrap has no state to lead from:
/// promotion is refused, typed.
#[test]
fn promoting_an_empty_replica_is_refused() {
    let dir = tmp("promote-empty");
    // Nothing listens at the upstream; the replica stays in Connecting.
    let replica = StandbyReplica::open(&dir, "127.0.0.1:1", test_replica_config()).unwrap();
    match replica.promote() {
        Err(modb_wal::WalError::NoSnapshot(_)) => {}
        other => panic!("expected NoSnapshot, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full story under a byte fault: leader killed with its last
/// session severed mid-frame, the freshest of two chained followers
/// promoted, the (deliberately frozen, staler) other repointed at the
/// promotee, and the chain converges on the new epoch with every
/// acked-and-shipped write intact.
#[test]
fn failover_promotes_freshest_and_repoints_survivor_with_zero_acked_loss() {
    let s = Scenario::start("failover-chain", 4);
    let f1 = s.follower();
    let f1_ship = f1
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let f1_ship_addr = f1_ship.local_addr().to_string();
    let f2dir = tmp("failover-chain-f2");
    let f2 = StandbyReplica::open(&f2dir, &f1_ship_addr, test_replica_config()).unwrap();
    let f2_ship = f2
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let f2_ship_addr = f2_ship.local_addr().to_string();

    s.churn(1..=4, 4);
    let acked = s.leader.wal().next_lsn();
    assert!(f1.wait_for_lsn(acked, WAIT), "f1 never converged");
    assert!(f2.wait_for_lsn(acked, WAIT), "f2 never converged");

    // Freeze f2 behind a dead upstream so the election has a strict
    // freshness order to respect, then keep writing: f1 advances alone.
    f2.repoint("127.0.0.1:1");
    // The leader's final session to f1 is severed mid-byte…
    s.proxy.push(Fault::CutAfterBytes(200));
    f1.force_reconnect();
    s.churn(5..=6, 4);
    // …and the leader dies.
    let Scenario {
        leader,
        server,
        proxy,
        ldir,
        fdir,
    } = s;
    drop(proxy);
    server.shutdown();
    drop(leader);

    wait_until("f1 to pass f2", || f1.applied_lsn() >= acked);
    let candidates = vec![f1, f2];
    let plan = FailoverCoordinator::plan(&candidates).unwrap();
    assert_eq!(plan.winner, 0, "f1 is the freshest candidate: {plan:?}");
    assert!(plan.winner_applied >= acked);

    let outcome =
        FailoverCoordinator::fail_over(candidates, &[f1_ship_addr.clone(), f2_ship_addr.clone()])
            .unwrap();
    assert_eq!(outcome.winner, 0);
    assert_eq!(outcome.epoch, 2);
    assert!(
        outcome.promoted_next_lsn > acked,
        "the applied prefix (≥ every acked-and-shipped write) plus the seal"
    );
    let promoted = outcome.promoted;
    let mut survivors = outcome.survivors;
    assert_eq!(survivors.len(), 1);
    let f2 = survivors.remove(0);

    // New-epoch writes flow: the promotee acks them, the repointed
    // survivor streams them (seal record included) from its applied
    // watermark — no re-bootstrap.
    let bootstraps_before = f2.stats().bootstraps;
    for round in 7..=9u64 {
        for i in 1..=4u64 {
            promoted
                .apply_update(
                    ObjectId(i),
                    &update(round as f64, 10.0 * i as f64 + round as f64),
                )
                .unwrap();
        }
    }
    let frontier = promoted.wal().next_lsn();
    assert!(
        f2.wait_for_lsn(frontier, WAIT),
        "survivor never converged on the promotee: {}",
        f2.stats()
    );
    assert_eq!(f2.epoch(), 2, "survivor observed the sealed epoch");
    assert_eq!(
        f2.stats().bootstraps,
        bootstraps_before,
        "repoint resumed incrementally, no re-bootstrap"
    );
    let expected = promoted.database().with_read(|db| db.clone());
    f2.database()
        .with_read(|db| assert_converged(&expected, db));

    f2.shutdown();
    f2_ship.shutdown();
    f1_ship.shutdown();
    drop(promoted);
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&fdir).unwrap();
    std::fs::remove_dir_all(&f2dir).unwrap();
}

/// The divergence guard: a revived old leader whose log ran past the
/// promotion point is refused with a typed answer — phase `Diverged`,
/// the refusal's coordinates exposed — and its local log survives
/// untouched for forensics.
#[test]
fn revived_divergent_leader_is_refused_and_never_truncated() {
    let ldir = tmp("diverge-leader");
    let fdir = tmp("diverge-follower");
    let leader = DurableDatabase::create(&ldir, fresh_db(), test_wal_options()).unwrap();
    for i in 1..=4u64 {
        leader.register_moving(vehicle(i, 10.0 * i as f64)).unwrap();
    }
    let server = leader
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let f1 = StandbyReplica::open(
        &fdir,
        server.local_addr().to_string(),
        test_replica_config(),
    )
    .unwrap();
    for round in 1..=3u64 {
        for i in 1..=4u64 {
            leader
                .apply_update(
                    ObjectId(i),
                    &update(round as f64, 10.0 * i as f64 + round as f64),
                )
                .unwrap();
        }
    }
    let shipped = leader.wal().next_lsn();
    assert!(f1.wait_for_lsn(shipped, WAIT), "f1 never caught up");

    // Cut shipping, then keep acking writes on the doomed leader: its
    // log grows a tail nobody else has.
    server.shutdown();
    for i in 1..=4u64 {
        leader
            .apply_update(ObjectId(i), &update(9.0, 500.0 + i as f64))
            .unwrap();
    }
    let old_frontier = leader.wal().next_lsn();
    assert!(old_frontier > shipped);
    drop(leader);

    // Promote the follower (its re-ship server stays up across the
    // switch) and seal epoch 2 at the shipped watermark.
    let f1_ship = f1
        .serve_replication("127.0.0.1:0", test_replication_config())
        .unwrap();
    let f1_ship_addr = f1_ship.local_addr().to_string();
    let promoted = f1.promote().unwrap();
    assert_eq!(promoted.epoch(), 2);

    // The old leader comes back as a would-be follower of the promotee.
    let old = StandbyReplica::open(&ldir, &f1_ship_addr, test_replica_config()).unwrap();
    assert_eq!(old.applied_lsn(), old_frontier, "local recovery first");
    wait_until("typed divergence refusal", || {
        old.phase() == ReplicaPhase::Diverged
    });
    let info = old.divergence().expect("refusal coordinates recorded");
    assert_eq!(info.leader_epoch, 2);
    assert_eq!(info.boundary_lsn, shipped, "fork point = promotion point");
    assert_eq!(info.local_next_lsn, old_frontier);
    // Refusal is terminal, not destructive: watermark and log intact.
    assert_eq!(old.applied_lsn(), old_frontier);
    old.shutdown();
    let recovered = modb_wal::recover(&ldir).unwrap();
    assert_eq!(
        recovered.report.next_lsn, old_frontier,
        "the divergent tail is still on disk, byte for byte"
    );

    f1_ship.shutdown();
    drop(promoted);
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&fdir).unwrap();
}

/// The deadman coordinator end to end: probes the leader's query
/// front-end, declares death after the configured streak, and the
/// election errors are typed.
#[test]
fn coordinator_declares_death_and_election_errors_are_typed() {
    let s = Scenario::start("deadman", 4);
    let engine = Arc::new(s.leader.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }));
    engine.publish_now();
    let qserver = s
        .leader
        .serve_queries(engine, None, "127.0.0.1:0", QueryServerConfig::default())
        .unwrap();
    let qaddr = qserver.local_addr().to_string();

    let mut coordinator = FailoverCoordinator::new(&qaddr, test_failover_config());
    assert!(coordinator.probe(), "live leader answers the stats probe");
    assert!(!coordinator.leader_dead());

    let replica = s.follower();
    s.churn(1..=2, 4);
    s.assert_converges(&replica);

    // Kill the whole serving stack; the probe streak crosses the
    // threshold.
    let Scenario {
        leader,
        server,
        proxy,
        ldir,
        fdir,
    } = s;
    qserver.shutdown();
    drop(proxy);
    server.shutdown();
    drop(leader);
    assert!(
        coordinator.await_death(WAIT),
        "deadman never fired: {} failures",
        coordinator.failures()
    );

    // Election error surface: no candidates, mismatched addresses.
    match FailoverCoordinator::fail_over(Vec::new(), &[]) {
        Err(FailoverError::NoCandidates) => {}
        other => panic!("expected NoCandidates, got {other:?}"),
    }
    match FailoverCoordinator::fail_over(vec![replica], &[]) {
        Err(FailoverError::AddrCountMismatch {
            replicas: 1,
            addrs: 0,
        }) => {}
        other => panic!("expected AddrCountMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&ldir).unwrap();
    std::fs::remove_dir_all(&fdir).unwrap();
}
