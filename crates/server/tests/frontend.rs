//! End-to-end tests for the query front-end: remote batches must be
//! byte-for-byte the verdicts a local `run_batch` produces, the stats
//! scrape must round-trip every counter, capacity refusals must be
//! clean, and a shutdown must drain an in-flight batch.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::*;
use modb_server::{
    DurableDatabase, QueryClient, QueryEngineConfig, QueryServer, QueryServerConfig, UpdateEnvelope,
};

const WAIT: Duration = Duration::from_secs(30);

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A durable database with a handful of vehicles at known arcs, its
/// engine (manual epoch publishing for determinism), and a running
/// front-end.
fn serve(
    name: &str,
    config: QueryServerConfig,
) -> (DurableDatabase, Arc<modb_server::QueryEngine>, QueryServer) {
    let durable = DurableDatabase::create(tmp(name), fresh_db(), test_wal_options()).unwrap();
    for i in 0..8u64 {
        durable
            .register_moving(vehicle(i, 100.0 * i as f64))
            .unwrap();
    }
    for i in 0..8u64 {
        durable
            .apply_update(modb_core::ObjectId(i), &update(5.0, 100.0 * i as f64 + 5.0))
            .unwrap();
    }
    let engine = Arc::new(durable.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }));
    engine.publish_now();
    let server = durable
        .serve_queries(Arc::clone(&engine), None, "127.0.0.1:0", config)
        .unwrap();
    (durable, engine, server)
}

/// A script covering every result kind plus two distinct error shapes
/// (an exec error and a parse error).
const SCRIPT: &str = "RETRIEVE POSITION OF OBJECT 3 AT TIME 6; \
                      RETRIEVE OBJECTS INSIDE RECT (0, -1, 450, 1) AT TIME 6; \
                      RETRIEVE 3 NEAREST OBJECTS TO POINT (200, 0) AT TIME 6; \
                      RETRIEVE POSITION OF OBJECT 'no-such-vehicle' AT TIME 6; \
                      RETRIEVE NONSENSE";

#[test]
fn remote_batch_matches_local_run_batch() {
    let (_durable, engine, server) = serve("net-parity", QueryServerConfig::default());
    let mut client = QueryClient::connect(server.local_addr()).unwrap();

    let remote = client.batch(SCRIPT).unwrap();
    let local = engine.run_batch(SCRIPT);
    assert_eq!(remote.len(), local.len());
    for (i, (r, l)) in remote.iter().zip(&local).enumerate() {
        match (r, l) {
            (Ok(r), Ok(l)) => assert_eq!(r, l, "statement {i}"),
            (Err(r), Err(l)) => assert_eq!(r, &l.to_string(), "statement {i}"),
            other => panic!("statement {i}: verdict kinds diverge: {other:?}"),
        }
    }

    // A second batch on the same connection (the session loops).
    let again = client
        .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 6")
        .unwrap();
    assert_eq!(again.len(), 1);
    assert!(again[0].is_ok());
    client.close();
    server.shutdown();
}

#[test]
fn stats_scrape_round_trips_every_counter() {
    let (durable, engine, server) = serve("net-stats", QueryServerConfig::default());
    let service = durable.ingest_service(2, 16);
    // Rewire: serve a second front-end that carries the ingest frontend
    // (the helper starts one without).
    let server2 = durable
        .serve_queries(
            Arc::clone(&engine),
            Some(service.frontend()),
            "127.0.0.1:0",
            QueryServerConfig::default(),
        )
        .unwrap();

    let handle = service.handle();
    for i in 0..8u64 {
        handle
            .send(UpdateEnvelope {
                id: modb_core::ObjectId(i),
                msg: update(10.0, 100.0 * i as f64 + 10.0),
            })
            .unwrap();
    }
    // One stale rejection: an update older than the applied one.
    handle
        .send(UpdateEnvelope {
            id: modb_core::ObjectId(0),
            msg: update(1.0, 1.0),
        })
        .unwrap();
    wait_until("ingest drained", || {
        monitor_totals(&service) == 9 && service.queue_depth() == 0
    });

    let mut client = QueryClient::connect(server2.local_addr()).unwrap();
    client.batch(SCRIPT).unwrap();
    let stats = client.stats().unwrap();

    // Query side: the batch ran 5 statements, 2 of them errors.
    assert_eq!(stats.query.queries, 5);
    assert_eq!(stats.query.errors, 2);
    assert_eq!(stats.query.batches, 1);
    assert!(stats.query.epoch >= 1);
    assert!(stats.query.epoch_queries <= stats.query.queries);
    assert!(stats.query.matches <= stats.query.candidates);

    // Ingest side.
    assert_eq!(stats.ingest.accepted, 8);
    assert_eq!(stats.ingest.stale, 1);
    assert_eq!(stats.ingest_queue_depth, 0);

    // WAL side: registrations + updates all logged; counters agree with
    // the writer's own view.
    let (bytes, fsyncs) = durable.wal().io_counters();
    assert!(bytes > 0);
    assert_eq!(stats.wal_bytes_written, bytes);
    assert_eq!(stats.wal_fsyncs, fsyncs);
    assert_eq!(stats.wal_next_lsn, durable.wal().next_lsn());
    // Group-commit counters flow through the scrape; the fire-and-forget
    // sends above never wait on a ticket, so only the shape is asserted.
    assert!(stats.wal_group_commits <= stats.wal_group_tickets);

    // No replication attached.
    assert_eq!(stats.followers, 0);
    assert_eq!(stats.min_acked_lsn, None);

    // The text exposition carries the same numbers.
    let text = stats.prometheus_text();
    assert!(text.contains("modb_queries_total 5"), "{text}");
    assert!(text.contains("modb_ingest_accepted_total 8"), "{text}");
    assert!(
        text.contains(&format!("modb_wal_bytes_written_total {bytes}")),
        "{text}"
    );
    assert!(text.contains("modb_wal_group_commit_batch_size"), "{text}");

    client.close();
    service.shutdown();
    server2.shutdown();
    server.shutdown();
}

fn monitor_totals(service: &modb_server::IngestService) -> usize {
    service.stats().snapshot().total()
}

#[test]
fn capacity_overflow_is_refused_and_slot_reuse_works() {
    let (_durable, _engine, server) = serve(
        "net-capacity",
        QueryServerConfig {
            max_connections: 1,
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let first = QueryClient::connect(addr).unwrap();
    wait_until("first session registered", || {
        server.active_connections() == 1
    });

    let err = QueryClient::connect(addr).expect_err("second client must be refused");
    assert!(
        err.to_string().contains("capacity"),
        "refusal should carry the reason, got: {err}"
    );

    // Releasing the slot lets a new client in.
    first.close();
    wait_until("slot released", || server.active_connections() == 0);
    let mut third = QueryClient::connect(addr).unwrap();
    assert!(third
        .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 6")
        .unwrap()[0]
        .is_ok());
    third.close();
    server.shutdown();
}

#[test]
fn shutdown_drains_a_delivered_batch() {
    let (_durable, engine, server) = serve("net-drain", QueryServerConfig::default());
    let mut client = QueryClient::connect(server.local_addr()).unwrap();
    // Prove the session is established and serving.
    assert_eq!(
        client
            .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 6")
            .unwrap()
            .len(),
        1
    );

    // Deliver a large batch and immediately shut the server down from
    // another thread: the batch frame is already on the wire, so the
    // drain guarantee says every statement is still answered.
    let statements = 64;
    let script =
        vec!["RETRIEVE OBJECTS INSIDE RECT (0, -1, 900, 1) AT TIME 6"; statements].join("; ");
    let shutdown = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(2));
        server.shutdown();
    });
    let verdicts = client.batch(&script).expect("drained batch must complete");
    assert_eq!(verdicts.len(), statements);
    for v in &verdicts {
        assert!(v.is_ok());
    }
    let expected = engine.run_batch(&script);
    for (v, e) in verdicts.iter().zip(&expected) {
        assert_eq!(v.as_ref().unwrap(), e.as_ref().unwrap());
    }
    shutdown.join().unwrap();
}
