//! Stress test: epoch publication never yields a torn snapshot.
//!
//! Writers mutate the live database continuously while the background
//! publisher republishes every millisecond and reader threads hammer the
//! snapshot path. Every writer maintains a per-object invariant — the
//! reported arc is a fixed function of the report time — so a reader
//! holding a half-published or half-cloned state would see an attribute
//! violating the function, an index disagreeing with the attribute map,
//! or the epoch counter running backwards. None of these may ever occur.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::{Point, Polygon, Rect};
use modb_index::QueryRegion;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{QueryEngineConfig, SharedDatabase};

const ROUTE_LEN: f64 = 1_000.0;
const N_OBJECTS: u64 = 100;
const N_WRITERS: u64 = 2;
const ROUNDS: u64 = 150;

/// The writers' invariant: an update reported at `time` always places
/// the object at this arc. Checker and writer share the expression, so
/// equality is bit-exact.
fn arc_for(id: u64, time: f64) -> f64 {
    10.0 + (id as f64 * 3.7 + time * 29.0) % (ROUTE_LEN - 20.0)
}

fn shared() -> SharedDatabase {
    let network = RouteNetwork::from_routes([Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .unwrap()])
    .unwrap();
    let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));
    for i in 0..N_OBJECTS {
        db.register_moving(MovingObject {
            id: ObjectId(i),
            name: format!("veh-{i}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(arc_for(i, 0.0), 0.0),
                start_arc: arc_for(i, 0.0),
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        })
        .unwrap();
    }
    db
}

/// Checks a snapshot for tears: invariant on every attribute, index and
/// attribute map in agreement, and all objects present.
fn check_snapshot(db: &Database) {
    assert_eq!(db.moving_count(), N_OBJECTS as usize, "object vanished");
    for i in 0..N_OBJECTS {
        let attr = &db.moving(ObjectId(i)).unwrap().attr;
        let expected = arc_for(i, attr.start_time);
        assert_eq!(
            attr.start_arc, expected,
            "torn attribute: object {i} at t={} has arc {} (want {})",
            attr.start_time, attr.start_arc, expected
        );
    }
    // The index was rebuilt/maintained against exactly this attribute
    // map: the indexed filter path and the full scan must agree.
    let g = Polygon::rectangle(&Rect::new(
        Point::new(0.0, -2.0),
        Point::new(ROUTE_LEN * 0.4, 2.0),
    ))
    .unwrap();
    let r = QueryRegion::at_instant(g, 6.0);
    let indexed = db.range_query(&r).unwrap();
    let scanned = db.range_query_scan(&r).unwrap();
    assert_eq!(indexed.must, scanned.must, "index disagrees with scan");
    assert_eq!(indexed.may, scanned.may, "index disagrees with scan");
}

#[test]
fn epoch_publication_never_tears_under_concurrent_writes() {
    let db = shared();
    let engine = db.query_engine(QueryEngineConfig {
        epoch_interval: Some(Duration::from_millis(1)),
        workers: 2,
        parallel_threshold: 32,
        ..QueryEngineConfig::default()
    });
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writers: disjoint object ranges, monotone report times, the
        // arc invariant on every update.
        let writers: Vec<_> = (0..N_WRITERS)
            .map(|w| {
                let db = db.clone();
                let chunk = N_OBJECTS / N_WRITERS;
                s.spawn(move || {
                    for round in 1..=ROUNDS {
                        let t = round as f64 * 0.1;
                        for i in (w * chunk)..((w + 1) * chunk) {
                            db.apply_update(
                                ObjectId(i),
                                &UpdateMessage::basic(t, UpdatePosition::Arc(arc_for(i, t)), 1.0),
                            )
                            .unwrap();
                        }
                    }
                })
            })
            .collect();

        // Readers: snapshots must always be whole, and epochs monotone.
        let stop = &stop;
        let engine = &engine;
        for _ in 0..3 {
            s.spawn(move || {
                let mut last_epoch = 0;
                while !stop.load(Ordering::Relaxed) {
                    let snap = engine.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    check_snapshot(snap.database());
                    // The engine's own query path sees the same snapshot
                    // world: exercise the parallel refine under churn.
                    let g = Polygon::rectangle(&Rect::new(
                        Point::new(0.0, -2.0),
                        Point::new(ROUTE_LEN, 2.0),
                    ))
                    .unwrap();
                    let answer = engine
                        .range_query(&QueryRegion::at_instant(g, 8.0))
                        .unwrap();
                    assert!(answer.candidates <= N_OBJECTS as usize);
                }
            });
        }

        // Join the writers deterministically, then hold the readers
        // until the publisher has sealed the post-write state into an
        // epoch. Epochs advance unconditionally every interval, so
        // waiting for the counter to move past its at-join value is a
        // condition wait on the publisher itself — no wall-clock sleep
        // to be too short on a slow or 1-core runner.
        for h in writers {
            h.join().unwrap();
        }
        let sealed = engine.snapshot().epoch();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while engine.snapshot().epoch() <= sealed {
            assert!(
                std::time::Instant::now() < deadline,
                "publisher stalled: epoch stuck at {sealed}"
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // After the dust settles: a manual publish exposes the final state,
    // unturn and exact.
    engine.publish_now();
    let snap = engine.snapshot();
    check_snapshot(snap.database());
    for i in 0..N_OBJECTS {
        let t = ROUNDS as f64 * 0.1;
        assert_eq!(
            snap.database().moving(ObjectId(i)).unwrap().attr.start_arc,
            arc_for(i, t)
        );
    }
    let stats = engine.shutdown();
    assert!(stats.epoch >= 1, "publisher never ran");
    assert!(stats.queries > 0);
    assert_eq!(stats.errors, 0);
}
