//! Fault injection for the query front-end, in the style of
//! `replication_faults`: misbehaving clients hit the server at the byte
//! level — garbage headers, oversized frames, disconnects mid-batch,
//! and stalls mid-frame. The invariant under every fault: the offending
//! session ends, its connection slot is released (no leak), and the
//! server keeps answering healthy clients — it never wedges.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::*;
use modb_server::{
    DurableDatabase, QueryClient, QueryEngineConfig, QueryServer, QueryServerConfig,
};
use modb_wal::crc32;

const WAIT: Duration = Duration::from_secs(30);

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn serve(name: &str, config: QueryServerConfig) -> (DurableDatabase, QueryServer) {
    let durable = DurableDatabase::create(tmp(name), fresh_db(), test_wal_options()).unwrap();
    for i in 0..4u64 {
        durable
            .register_moving(vehicle(i, 100.0 * i as f64))
            .unwrap();
    }
    let engine = Arc::new(durable.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }));
    engine.publish_now();
    let server = durable
        .serve_queries(engine, None, "127.0.0.1:0", config)
        .unwrap();
    (durable, server)
}

// ---------------------------------------------------------------------
// Hand-rolled wire helpers (the protocol encoder is crate-private; the
// framing is `[len u32 LE][crc32 u32 LE][tag + body]`).
// ---------------------------------------------------------------------

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn hello_payload() -> Vec<u8> {
    let mut p = vec![1u8]; // Hello tag
    p.extend_from_slice(&4u32.to_le_bytes()); // protocol version
    p
}

fn batch_payload(script: &str) -> Vec<u8> {
    let mut p = vec![2u8]; // Batch tag
    p.extend_from_slice(&(script.len() as u32).to_le_bytes());
    p.extend_from_slice(script.as_bytes());
    p.extend_from_slice(&0u64.to_le_bytes()); // min_lsn: no floor
    p
}

/// Connects raw and completes the handshake by hand, returning the
/// stream positioned after the `HelloAck` frame.
fn raw_handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&frame(&hello_payload())).unwrap();
    let mut header = [0u8; 8];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    assert_eq!(body[0], 4, "expected HelloAck, got tag {}", body[0]);
    stream
}

/// Reads until EOF (or error), proving the server closed the session.
fn assert_closed(stream: &mut TcpStream) {
    let mut sink = [0u8; 4096];
    let deadline = Instant::now() + WAIT;
    loop {
        assert!(
            Instant::now() < deadline,
            "server never closed the connection"
        );
        match stream.read(&mut sink) {
            Ok(0) => return,   // clean EOF
            Ok(_) => continue, // drain whatever was in flight
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // reset also counts as closed
        }
    }
}

/// The server still answers a healthy client — the wedge check.
fn assert_healthy(addr: SocketAddr) {
    let mut client = QueryClient::connect(addr).unwrap();
    let verdicts = client
        .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 3")
        .unwrap();
    assert_eq!(verdicts.len(), 1);
    assert!(verdicts[0].is_ok(), "{:?}", verdicts[0]);
    client.close();
}

// ---------------------------------------------------------------------
// The faults
// ---------------------------------------------------------------------

#[test]
fn garbage_header_ends_the_session_without_leaking_a_slot() {
    let (_durable, server) = serve("fault-garbage", QueryServerConfig::default());
    let addr = server.local_addr();

    let mut vandal = TcpStream::connect(addr).unwrap();
    vandal
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    // 16 bytes that decode to an implausible length — framing is
    // unrecoverable and the server must hang up.
    vandal.write_all(&[0xffu8; 16]).unwrap();
    assert_closed(&mut vandal);
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_after_handshake() {
    let (_durable, server) = serve(
        "fault-oversize",
        QueryServerConfig {
            max_frame_bytes: 1024,
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut vandal = raw_handshake(addr);
    // A header announcing a payload over the 1 KiB ceiling: the session
    // must end without waiting for (or allocating) the body.
    vandal.write_all(&(64 * 1024u32).to_le_bytes()).unwrap();
    vandal.write_all(&0u32.to_le_bytes()).unwrap();
    assert_closed(&mut vandal);
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn disconnect_mid_batch_does_not_wedge_the_server() {
    let (_durable, server) = serve("fault-disconnect", QueryServerConfig::default());
    let addr = server.local_addr();

    // Deliver a sizable batch, then vanish before reading a single
    // result: the server's writes hit a dead socket and the session must
    // clean up.
    let mut vandal = raw_handshake(addr);
    let script = vec!["RETRIEVE OBJECTS INSIDE RECT (0, -1, 900, 1) AT TIME 3"; 32].join("; ");
    vandal.write_all(&frame(&batch_payload(&script))).unwrap();
    vandal.shutdown(Shutdown::Both).unwrap();
    drop(vandal);
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn stalled_client_is_disconnected_at_the_request_deadline() {
    let (_durable, server) = serve(
        "fault-stall",
        QueryServerConfig {
            request_deadline: Duration::from_millis(200),
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Send half a frame and go silent. An *idle* connection (no partial
    // frame) may sit forever; a half-delivered request may not.
    let mut staller = raw_handshake(addr);
    let full = frame(&batch_payload("RETRIEVE POSITION OF OBJECT 0 AT TIME 3"));
    staller.write_all(&full[..full.len() / 2]).unwrap();
    let stalled_at = Instant::now();
    assert_closed(&mut staller);
    assert!(
        stalled_at.elapsed() >= Duration::from_millis(150),
        "disconnected suspiciously early — deadline not honored?"
    );
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn idle_connection_without_partial_frame_survives_the_deadline() {
    let (_durable, server) = serve(
        "fault-idle",
        QueryServerConfig {
            request_deadline: Duration::from_millis(100),
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut client = QueryClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // 3× the deadline
    let verdicts = client
        .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 3")
        .expect("an idle console must not be reaped");
    assert!(verdicts[0].is_ok());
    client.close();
    server.shutdown();
}
