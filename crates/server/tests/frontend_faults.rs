//! Fault injection for the query front-end, in the style of
//! `replication_faults`: misbehaving clients hit the server at the byte
//! level — garbage headers, oversized frames, disconnects mid-batch,
//! and stalls mid-frame. The invariant under every fault: the offending
//! session ends, its connection slot is released (no leak), and the
//! server keeps answering healthy clients — it never wedges.
//!
//! The raw-wire helpers (hand-rolled framing, handshake, closed/healthy
//! assertions) live in `common::replica_harness`, shared with the
//! follower-read fault suite.

mod common;

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use common::replica_harness::{
    assert_closed, assert_healthy, batch_payload, frame, raw_handshake, serve, wait_until,
};
use modb_server::{QueryClient, QueryServerConfig};

#[test]
fn garbage_header_ends_the_session_without_leaking_a_slot() {
    let (_durable, server) = serve("fault-garbage", QueryServerConfig::default());
    let addr = server.local_addr();

    let mut vandal = TcpStream::connect(addr).unwrap();
    vandal
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    // 16 bytes that decode to an implausible length — framing is
    // unrecoverable and the server must hang up.
    vandal.write_all(&[0xffu8; 16]).unwrap();
    assert_closed(&mut vandal);
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_after_handshake() {
    let (_durable, server) = serve(
        "fault-oversize",
        QueryServerConfig {
            max_frame_bytes: 1024,
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut vandal = raw_handshake(addr);
    // A header announcing a payload over the 1 KiB ceiling: the session
    // must end without waiting for (or allocating) the body.
    vandal.write_all(&(64 * 1024u32).to_le_bytes()).unwrap();
    vandal.write_all(&0u32.to_le_bytes()).unwrap();
    assert_closed(&mut vandal);
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn disconnect_mid_batch_does_not_wedge_the_server() {
    let (_durable, server) = serve("fault-disconnect", QueryServerConfig::default());
    let addr = server.local_addr();

    // Deliver a sizable batch, then vanish before reading a single
    // result: the server's writes hit a dead socket and the session must
    // clean up.
    let mut vandal = raw_handshake(addr);
    let script = vec!["RETRIEVE OBJECTS INSIDE RECT (0, -1, 900, 1) AT TIME 3"; 32].join("; ");
    vandal.write_all(&frame(&batch_payload(&script))).unwrap();
    vandal.shutdown(Shutdown::Both).unwrap();
    drop(vandal);
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn stalled_client_is_disconnected_at_the_request_deadline() {
    let (_durable, server) = serve(
        "fault-stall",
        QueryServerConfig {
            request_deadline: Duration::from_millis(200),
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Send half a frame and go silent. An *idle* connection (no partial
    // frame) may sit forever; a half-delivered request may not.
    let mut staller = raw_handshake(addr);
    let full = frame(&batch_payload("RETRIEVE POSITION OF OBJECT 0 AT TIME 3"));
    staller.write_all(&full[..full.len() / 2]).unwrap();
    let stalled_at = Instant::now();
    assert_closed(&mut staller);
    assert!(
        stalled_at.elapsed() >= Duration::from_millis(150),
        "disconnected suspiciously early — deadline not honored?"
    );
    wait_until("slot released", || server.active_connections() == 0);

    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn idle_connection_without_partial_frame_survives_the_deadline() {
    let (_durable, server) = serve(
        "fault-idle",
        QueryServerConfig {
            request_deadline: Duration::from_millis(100),
            ..QueryServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut client = QueryClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // 3× the deadline
    let verdicts = client
        .batch("RETRIEVE POSITION OF OBJECT 0 AT TIME 3")
        .expect("an idle console must not be reaped");
    assert!(verdicts[0].is_ok());
    client.close();
    server.shutdown();
}
