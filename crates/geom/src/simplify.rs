//! Polyline simplification (Douglas–Peucker).
//!
//! Map data imported into the route database is often over-sampled; every
//! extra vertex slows the per-query projection and interval extraction.
//! [`simplify`] reduces a polyline to the minimal vertex set whose maximum
//! perpendicular deviation from the original stays within a tolerance —
//! route-distance arithmetic then runs on the simplified geometry with a
//! bounded spatial error.

use crate::error::GeomError;
use crate::point::Point;
use crate::polyline::Polyline;
use crate::segment::Segment;

/// Simplifies `polyline` with the Douglas–Peucker algorithm: the result's
/// vertices are a subset of the input's, and no input vertex lies farther
/// than `tolerance` (miles) from the result.
///
/// # Errors
///
/// [`GeomError::NonFiniteCoordinate`] for a NaN/∞/negative tolerance; the
/// reconstruction error for pathological inputs (all vertices collapse)
/// cannot occur because the endpoints are always kept.
pub fn simplify(polyline: &Polyline, tolerance: f64) -> Result<Polyline, GeomError> {
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(GeomError::NonFiniteCoordinate);
    }
    let pts = polyline.vertices();
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    dp_mark(pts, 0, pts.len() - 1, tolerance, &mut keep);
    let kept: Vec<Point> = pts
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect();
    Polyline::new(kept)
}

fn dp_mark(pts: &[Point], lo: usize, hi: usize, tolerance: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let chord = Segment::new(pts[lo], pts[hi]);
    let mut worst = lo;
    let mut worst_d = -1.0;
    for (i, p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
        let d = chord.distance_to_point(*p);
        if d > worst_d {
            worst_d = d;
            worst = i;
        }
    }
    if worst_d > tolerance {
        keep[worst] = true;
        dp_mark(pts, lo, worst, tolerance, keep);
        dp_mark(pts, worst, hi, tolerance, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn straight_oversampled_line_collapses_to_endpoints() {
        let p = poly(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (10.0, 0.0)]);
        let s = simplify(&p, 0.01).unwrap();
        assert_eq!(s.vertices().len(), 2);
        assert_eq!(s.start(), Point::new(0.0, 0.0));
        assert_eq!(s.end(), Point::new(10.0, 0.0));
        assert!((s.length() - p.length()).abs() < 1e-12);
    }

    #[test]
    fn corners_above_tolerance_survive() {
        let p = poly(&[(0.0, 0.0), (5.0, 0.0), (5.0, 5.0)]);
        let s = simplify(&p, 0.5).unwrap();
        assert_eq!(s.vertices().len(), 3, "the right-angle corner must stay");
    }

    #[test]
    fn small_wiggles_below_tolerance_removed() {
        let p = poly(&[
            (0.0, 0.0),
            (1.0, 0.05),
            (2.0, -0.04),
            (3.0, 0.03),
            (4.0, 0.0),
        ]);
        let s = simplify(&p, 0.1).unwrap();
        assert_eq!(s.vertices().len(), 2);
        // But a tighter tolerance keeps them.
        let tight = simplify(&p, 0.01).unwrap();
        assert!(tight.vertices().len() > 2);
    }

    #[test]
    fn max_deviation_bounded_by_tolerance() {
        // A sine-ish route sampled densely.
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 * 0.1;
                (x, (x * 0.7).sin() * 2.0)
            })
            .collect();
        let p = poly(&pts);
        let tol = 0.05;
        let s = simplify(&p, tol).unwrap();
        assert!(s.vertices().len() < p.vertices().len() / 2);
        // Every original vertex is within tol of the simplified curve.
        for &v in p.vertices() {
            let (_, d) = s.locate(v);
            assert!(d <= tol + 1e-9, "vertex {v:?} deviates {d}");
        }
    }

    #[test]
    fn invalid_tolerance_rejected() {
        let p = poly(&[(0.0, 0.0), (1.0, 0.0)]);
        assert!(simplify(&p, -1.0).is_err());
        assert!(simplify(&p, f64::NAN).is_err());
        // Zero tolerance keeps everything meaningful.
        let s = simplify(&p, 0.0).unwrap();
        assert_eq!(s.vertices().len(), 2);
    }
}
