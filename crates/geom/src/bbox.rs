//! 2-D axis-aligned bounding boxes.

use crate::point::Point;

/// A 2-D axis-aligned rectangle, `[min.x, max.x] × [min.y, max.y]`.
///
/// Used for broad-phase filtering in polygon queries and as the spatial
/// footprint of the 3-D index boxes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalising the order of
    /// the coordinates so `min ≤ max` component-wise.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty rectangle: identity for [`Rect::union`], intersects
    /// nothing, contains nothing.
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns `true` for the empty rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest rectangle covering a set of points; empty for no points.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Rect::empty(), |r, p| r.union(&Rect::new(p, p)))
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Returns `true` when the rectangles overlap (shared boundary counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.min.x <= other.min.x
                && self.min.y <= other.min.y
                && self.max.x >= other.max.x
                && self.max.y >= other.max.y)
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area; zero for the empty rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Center point. Undefined (non-finite) for the empty rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Rectangle grown by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Rect {
        if self.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_corners() {
        let r = Rect::new(Point::new(5.0, -1.0), Point::new(1.0, 3.0));
        assert_eq!(r.min, Point::new(1.0, -1.0));
        assert_eq!(r.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn empty_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.intersects(&e));
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(e.union(&r), r);
        assert_eq!(r.union(&e), r);
        assert!(r.contains_rect(&e));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(2.0, -1.0), Point::new(3.0, 0.5));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.min, Point::new(0.0, -1.0));
        assert_eq!(u.max, Point::new(3.0, 1.0));
    }

    #[test]
    fn intersection_predicate() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Rect::new(Point::new(2.5, 2.5), Point::new(4.0, 4.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&c));
        assert!(!a.intersects(&c));
        // Shared edge counts.
        let d = Rect::new(Point::new(2.0, 0.0), Point::new(3.0, 2.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn containment() {
        let big = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let small = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.contains_point(Point::new(10.0, 10.0)));
        assert!(!big.contains_point(Point::new(10.1, 5.0)));
    }

    #[test]
    fn from_points_and_measures() {
        let r = Rect::from_points([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(4.0, 2.0),
        ]);
        assert_eq!(r.min, Point::new(-2.0, 0.0));
        assert_eq!(r.max, Point::new(4.0, 5.0));
        assert_eq!(r.width(), 6.0);
        assert_eq!(r.height(), 5.0);
        assert_eq!(r.area(), 30.0);
        assert_eq!(r.center(), Point::new(1.0, 2.5));
    }

    #[test]
    fn inflate_grows_box() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).inflate(0.5);
        assert_eq!(r.min, Point::new(-0.5, -0.5));
        assert_eq!(r.max, Point::new(1.5, 1.5));
    }
}
