//! 2-D points and vectors.
//!
//! Coordinates are in the workspace's spatial unit (miles by convention —
//! see the crate docs). `Point` doubles as a 2-D vector; the distinction is
//! by usage, as is conventional in small geometry kernels.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// Tolerance used by geometric predicates throughout the crate.
///
/// Coordinates are miles; `1e-9` miles is far below GPS resolution, so
/// treating differences under this threshold as zero never changes a
/// real-world answer.
pub const EPS: f64 = 1e-9;

/// A point (or vector) in the 2-D plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate (miles).
    pub x: f64,
    /// y coordinate (miles).
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Returns `true` when both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Unit vector in the direction of `self`, or `None` for (near-)zero
    /// vectors where the direction is undefined.
    #[inline]
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n < EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns `true` when `self` and `other` coincide within [`EPS`].
    #[inline]
    pub fn approx_eq(self, other: Point) -> bool {
        self.distance_sq(other) < EPS * EPS
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn distance_and_norm() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
        // Extrapolation is allowed.
        assert_eq!(a.lerp(b, 2.0), Point::new(20.0, -20.0));
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(0.0, 2.0).normalized().unwrap();
        assert!(u.approx_eq(Point::new(0.0, 1.0)));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
