//! Error types for geometric construction and evaluation.

use std::fmt;

/// Errors raised by geometric constructors and queries.
///
/// All fallible operations in `modb-geom` return [`GeomError`] rather than
/// panicking, so callers (the DBMS layers above) can surface malformed input
/// — e.g. a route uploaded with a single vertex — as a query/update error
/// instead of crashing the server.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A polyline needs at least two vertices to define a route.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A polygon needs at least three vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        got: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A polyline had zero total length (all vertices coincide), so
    /// arc-length parameterisation is undefined.
    ZeroLength,
    /// A requested arc-length distance lies outside `[0, length]`.
    DistanceOutOfRange {
        /// The requested distance.
        requested: f64,
        /// The polyline's total length.
        length: f64,
    },
    /// An interval was supplied with `lo > hi`.
    InvertedInterval {
        /// Lower endpoint supplied.
        lo: f64,
        /// Upper endpoint supplied.
        hi: f64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::TooFewVertices { got, need } => {
                write!(f, "polyline needs at least {need} vertices, got {got}")
            }
            GeomError::DegeneratePolygon { got } => {
                write!(f, "polygon needs at least 3 vertices, got {got}")
            }
            GeomError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
            GeomError::ZeroLength => write!(f, "polyline has zero length"),
            GeomError::DistanceOutOfRange { requested, length } => write!(
                f,
                "arc-length distance {requested} outside polyline range [0, {length}]"
            ),
            GeomError::InvertedInterval { lo, hi } => {
                write!(f, "interval [{lo}, {hi}] has lo > hi")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeomError::TooFewVertices { got: 1, need: 2 };
        assert!(e.to_string().contains("at least 2"));
        let e = GeomError::DistanceOutOfRange {
            requested: -1.0,
            length: 5.0,
        };
        assert!(e.to_string().contains("[0, 5]"));
        let e = GeomError::InvertedInterval { lo: 3.0, hi: 1.0 };
        assert!(e.to_string().contains("lo > hi"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GeomError>();
    }
}
