//! Line segments and their predicates.

use crate::point::{Point, EPS};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points. Degenerate (zero-length)
    /// segments are permitted; queries handle them gracefully.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` (`a` at 0, `b` at 1). Unclamped.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    ///
    /// For a degenerate segment returns `0`.
    pub fn project(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq < EPS * EPS {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        self.point_at(self.project(p))
    }

    /// Euclidean distance from `p` to the segment.
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Returns `true` when this segment intersects `other` (including
    /// touching at endpoints and collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        segments_intersect(self.a, self.b, other.a, other.b)
    }
}

/// Orientation of the ordered triple `(p, q, r)`:
/// `> 0` counter-clockwise, `< 0` clockwise, `0` collinear (within EPS,
/// scaled by the magnitude of the operands for robustness).
pub fn orient(p: Point, q: Point, r: Point) -> f64 {
    let v = (q - p).cross(r - p);
    // Scale-aware snap to zero: |v| is compared against EPS times the
    // product of the operand magnitudes so that large coordinates do not
    // spuriously report non-collinearity.
    let scale = (q - p).norm() * (r - p).norm();
    if v.abs() <= EPS * scale.max(1.0) {
        0.0
    } else {
        v
    }
}

/// Returns `true` when point `q` lies on segment `pr`, assuming the three
/// points are collinear.
fn on_segment(p: Point, q: Point, r: Point) -> bool {
    q.x <= p.x.max(r.x) + EPS
        && q.x >= p.x.min(r.x) - EPS
        && q.y <= p.y.max(r.y) + EPS
        && q.y >= p.y.min(r.y) - EPS
}

/// Standard segment-intersection predicate (CLRS-style), robust to
/// collinear and touching configurations.
pub fn segments_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool {
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);

    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(p3, p1, p4))
        || (d2 == 0.0 && on_segment(p3, p2, p4))
        || (d3 == 0.0 && on_segment(p1, p3, p2))
        || (d4 == 0.0 && on_segment(p1, p4, p2))
}

/// Parameters along segment `s` (in `[0, 1]`) at which `s` meets segment
/// `e`. Returns zero, one, or — for collinear overlap — two parameters.
///
/// Used to split a path segment at polygon-boundary crossings so interval
/// midpoints can be classified exactly (see `Polygon::contains_path`).
pub fn intersection_params(s: &Segment, e: &Segment) -> Vec<f64> {
    let r = s.b - s.a;
    let q = e.b - e.a;
    let denom = r.cross(q);
    let ap = e.a - s.a;
    if denom.abs() > EPS {
        // Proper (non-parallel) line intersection.
        let t = ap.cross(q) / denom;
        let u = ap.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            return vec![t.clamp(0.0, 1.0)];
        }
        return Vec::new();
    }
    // Parallel. Collinear iff e.a lies on the line of s.
    if ap.cross(r).abs() > EPS * r.norm().max(1.0) * ap.norm().max(1.0) {
        return Vec::new();
    }
    let len_sq = r.norm_sq();
    if len_sq < EPS * EPS {
        // s is a point; it intersects if it lies on e.
        return if e.distance_to_point(s.a) < EPS {
            vec![0.0]
        } else {
            Vec::new()
        };
    }
    // Project e's endpoints onto s's parameterisation and clip to [0, 1].
    let t0 = (e.a - s.a).dot(r) / len_sq;
    let t1 = (e.b - s.a).dot(r) / len_sq;
    let (lo, hi) = (t0.min(t1), t0.max(t1));
    let lo = lo.max(0.0);
    let hi = hi.min(1.0);
    if lo > hi + EPS {
        Vec::new()
    } else {
        vec![lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_point_at() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.point_at(0.0), s.a);
        assert_eq!(s.point_at(1.0), s.b);
        assert!(s.point_at(0.5).approx_eq(Point::new(1.5, 2.0)));
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project(Point::new(-5.0, 3.0)), 0.0);
        assert_eq!(s.project(Point::new(15.0, 3.0)), 1.0);
        assert_eq!(s.project(Point::new(4.0, 7.0)), 0.4);
    }

    #[test]
    fn degenerate_segment_projection() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.project(Point::new(9.0, 9.0)), 0.0);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn distance_to_point() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 10.0);
        let s2 = seg(0.0, 10.0, 10.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 1.0, 10.0, 1.0);
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 5.0, 5.0);
        let s2 = seg(5.0, 5.0, 10.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(5.0, 0.0, 15.0, 0.0);
        assert!(s1.intersects(&s2));
        let s3 = seg(11.0, 0.0, 15.0, 0.0);
        assert!(!s1.intersects(&s3));
    }

    #[test]
    fn t_configuration_intersects() {
        // s2 ends in the middle of s1.
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(5.0, 5.0, 5.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn intersection_params_proper_crossing() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let e = seg(5.0, -1.0, 5.0, 1.0);
        let ps = intersection_params(&s, &e);
        assert_eq!(ps.len(), 1);
        assert!((ps[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intersection_params_disjoint_and_parallel() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(intersection_params(&s, &seg(0.0, 1.0, 10.0, 1.0)).is_empty());
        assert!(intersection_params(&s, &seg(20.0, -1.0, 20.0, 1.0)).is_empty());
    }

    #[test]
    fn intersection_params_collinear_overlap() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let ps = intersection_params(&s, &seg(5.0, 0.0, 15.0, 0.0));
        assert_eq!(ps.len(), 2);
        assert!((ps[0] - 0.5).abs() < 1e-12);
        assert!((ps[1] - 1.0).abs() < 1e-12);
        // Reversed operand order also works.
        let ps = intersection_params(&s, &seg(15.0, 0.0, 5.0, 0.0));
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn intersection_params_endpoint_touch() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        let ps = intersection_params(&s, &seg(10.0, 0.0, 10.0, 5.0));
        assert_eq!(ps.len(), 1);
        assert!((ps[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orientation_signs() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(1.0, 0.0);
        assert!(orient(p, q, Point::new(0.0, 1.0)) > 0.0);
        assert!(orient(p, q, Point::new(0.0, -1.0)) < 0.0);
        assert_eq!(orient(p, q, Point::new(2.0, 0.0)), 0.0);
    }
}
