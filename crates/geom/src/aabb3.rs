//! 3-D axis-aligned boxes in (x, y, t) time-space.
//!
//! The paper's §4 represents moving objects and range queries as geometric
//! bodies in a 3-dimensional space whose axes are the two spatial
//! coordinates plus time. The spatial index (`modb-index`) decomposes this
//! space into boxes; [`Aabb3`] is that box type.

use crate::bbox::Rect;
use crate::point::Point;

/// An axis-aligned box in (x, y, t) time-space.
///
/// `x`/`y` are miles, `t` is minutes (the workspace conventions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    /// Minimum corner `(x, y, t)`.
    pub min: [f64; 3],
    /// Maximum corner `(x, y, t)`.
    pub max: [f64; 3],
}

impl Aabb3 {
    /// Creates a box from two opposite corners, normalising per-axis order.
    pub fn new(a: [f64; 3], b: [f64; 3]) -> Self {
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for i in 0..3 {
            min[i] = a[i].min(b[i]);
            max[i] = a[i].max(b[i]);
        }
        Aabb3 { min, max }
    }

    /// Builds a box from a spatial rectangle and a time interval.
    pub fn from_rect_time(rect: &Rect, t0: f64, t1: f64) -> Self {
        Aabb3::new([rect.min.x, rect.min.y, t0], [rect.max.x, rect.max.y, t1])
    }

    /// The empty box: union identity, intersects nothing.
    pub fn empty() -> Self {
        Aabb3 {
            min: [f64::INFINITY; 3],
            max: [f64::NEG_INFINITY; 3],
        }
    }

    /// Returns `true` for the empty box.
    pub fn is_empty(&self) -> bool {
        (0..3).any(|i| self.min[i] > self.max[i])
    }

    /// The spatial (x, y) footprint of the box.
    pub fn rect(&self) -> Rect {
        Rect::new(
            Point::new(self.min[0], self.min[1]),
            Point::new(self.max[0], self.max[1]),
        )
    }

    /// The time extent `[t_min, t_max]` of the box.
    pub fn time_span(&self) -> (f64, f64) {
        (self.min[2], self.max[2])
    }

    /// Smallest box covering both `self` and `other`.
    pub fn union(&self, other: &Aabb3) -> Aabb3 {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for i in 0..3 {
            min[i] = self.min[i].min(other.min[i]);
            max[i] = self.max[i].max(other.max[i]);
        }
        Aabb3 { min, max }
    }

    /// Returns `true` when the boxes overlap (shared boundary counts).
    pub fn intersects(&self, other: &Aabb3) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && (0..3).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Aabb3) -> bool {
        other.is_empty()
            || (0..3).all(|i| self.min[i] <= other.min[i] && self.max[i] >= other.max[i])
    }

    /// Returns `true` when the point lies inside or on the boundary.
    pub fn contains_point(&self, p: [f64; 3]) -> bool {
        (0..3).all(|i| p[i] >= self.min[i] && p[i] <= self.max[i])
    }

    /// Volume; zero for the empty box.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (0..3).map(|i| self.max[i] - self.min[i]).product()
        }
    }

    /// Surface-area analogue used by the R\*-tree margin heuristic: the sum
    /// of edge lengths along each axis.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (0..3).map(|i| self.max[i] - self.min[i]).sum()
        }
    }

    /// Volume of the intersection with `other` (zero when disjoint).
    pub fn intersection_volume(&self, other: &Aabb3) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut v = 1.0;
        for i in 0..3 {
            let lo = self.min[i].max(other.min[i]);
            let hi = self.max[i].min(other.max[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// How much `self`'s volume would grow to also cover `other`.
    pub fn enlargement(&self, other: &Aabb3) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Center of the box.
    pub fn center(&self) -> [f64; 3] {
        [
            (self.min[0] + self.max[0]) * 0.5,
            (self.min[1] + self.max[1]) * 0.5,
            (self.min[2] + self.max[2]) * 0.5,
        ]
    }

    /// Squared Euclidean distance between the centers of two boxes.
    pub fn center_distance_sq(&self, other: &Aabb3) -> f64 {
        let a = self.center();
        let b = other.center();
        (0..3).map(|i| (a[i] - b[i]) * (a[i] - b[i])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(min: [f64; 3], max: [f64; 3]) -> Aabb3 {
        Aabb3::new(min, max)
    }

    #[test]
    fn new_normalises() {
        let a = Aabb3::new([1.0, 5.0, 2.0], [0.0, 6.0, -2.0]);
        assert_eq!(a.min, [0.0, 5.0, -2.0]);
        assert_eq!(a.max, [1.0, 6.0, 2.0]);
    }

    #[test]
    fn empty_identity() {
        let e = Aabb3::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let a = b([0.0; 3], [1.0; 3]);
        assert_eq!(e.union(&a), a);
        assert!(!e.intersects(&a));
        assert!(a.contains(&e));
    }

    #[test]
    fn union_and_volume() {
        let a = b([0.0; 3], [1.0; 3]);
        let c = b([2.0; 3], [3.0; 3]);
        let u = a.union(&c);
        assert_eq!(u.min, [0.0; 3]);
        assert_eq!(u.max, [3.0; 3]);
        assert_eq!(u.volume(), 27.0);
        assert_eq!(a.volume(), 1.0);
        assert_eq!(a.enlargement(&c), 26.0);
    }

    #[test]
    fn intersection_tests() {
        let a = b([0.0; 3], [2.0; 3]);
        let c = b([1.0; 3], [3.0; 3]);
        let d = b([2.5; 3], [4.0; 3]);
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection_volume(&c), 1.0);
        assert_eq!(a.intersection_volume(&d), 0.0);
        // Touching boundary intersects but has zero volume.
        let e = b([2.0, 0.0, 0.0], [3.0, 2.0, 2.0]);
        assert!(a.intersects(&e));
        assert_eq!(a.intersection_volume(&e), 0.0);
    }

    #[test]
    fn containment_and_points() {
        let a = b([0.0; 3], [10.0; 3]);
        assert!(a.contains(&b([1.0; 3], [2.0; 3])));
        assert!(!a.contains(&b([1.0; 3], [11.0; 3])));
        assert!(a.contains_point([10.0, 0.0, 5.0]));
        assert!(!a.contains_point([10.1, 0.0, 5.0]));
    }

    #[test]
    fn margin_and_center() {
        let a = b([0.0, 0.0, 0.0], [1.0, 2.0, 3.0]);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), [0.5, 1.0, 1.5]);
        let c = b([2.0, 2.0, 2.0], [2.0, 2.0, 2.0]);
        assert_eq!(a.center_distance_sq(&c), 1.5 * 1.5 + 1.0 + 0.25);
    }

    #[test]
    fn from_rect_time_round_trip() {
        let r = Rect::new(Point::new(0.0, 1.0), Point::new(2.0, 3.0));
        let a = Aabb3::from_rect_time(&r, 5.0, 7.0);
        assert_eq!(a.rect(), r);
        assert_eq!(a.time_span(), (5.0, 7.0));
    }
}
