//! Piecewise-linear curves with arc-length parameterisation.
//!
//! The paper models every route as a piecewise-linear curve, and defines the
//! *route-distance* between two points on a route as the distance along the
//! route (§2). [`Polyline`] provides exactly the two primitives the paper
//! calls "straightforward to compute": the route-distance between two points
//! on the route, and the point at a given route-distance from another point.

use crate::bbox::Rect;
use crate::error::GeomError;
use crate::point::{Point, EPS};
use crate::segment::Segment;

/// A piecewise-linear curve with precomputed cumulative arc lengths.
///
/// Positions *on* the polyline are addressed by arc-length distance from the
/// first vertex, in `[0, length]` — this is the paper's route-distance
/// coordinate. Construction validates the vertices once so that every query
/// afterwards is infallible or cheaply checked.
///
/// ```
/// use modb_geom::{Point, Polyline};
/// let route = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 5.0),
/// ])?;
/// assert_eq!(route.length(), 15.0);
/// // The point 12 route-miles from the start is 2 miles up the second leg.
/// assert_eq!(route.point_at_distance(12.0)?, Point::new(10.0, 2.0));
/// // Route-distance between two positions is |Δarc| (paper §2).
/// assert_eq!(route.route_distance(3.0, 12.0), 9.0);
/// # Ok::<(), modb_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// `cum[i]` is the arc-length from vertex 0 to vertex i; `cum[0] = 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from its vertices.
    ///
    /// # Errors
    ///
    /// - [`GeomError::TooFewVertices`] for fewer than two vertices.
    /// - [`GeomError::NonFiniteCoordinate`] if any coordinate is NaN/∞.
    /// - [`GeomError::ZeroLength`] if all vertices coincide.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 2 {
            return Err(GeomError::TooFewVertices {
                got: vertices.len(),
                need: 2,
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let mut cum = Vec::with_capacity(vertices.len());
        cum.push(0.0);
        for w in vertices.windows(2) {
            let d = w[0].distance(w[1]);
            cum.push(cum.last().unwrap() + d);
        }
        if *cum.last().unwrap() < EPS {
            return Err(GeomError::ZeroLength);
        }
        Ok(Polyline { vertices, cum })
    }

    /// Total arc length of the polyline.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    /// The vertices, in order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Cumulative arc length at each vertex (`cum[0] == 0`).
    #[inline]
    pub fn cumulative(&self) -> &[f64] {
        &self.cum
    }

    /// First vertex.
    #[inline]
    pub fn start(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    #[inline]
    pub fn end(&self) -> Point {
        *self.vertices.last().unwrap()
    }

    /// Iterator over the constituent segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Axis-aligned bounding box of the whole polyline.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.vertices.iter().copied())
    }

    /// Index of the segment containing arc distance `d`, plus the parameter
    /// along that segment. `d` must already be within `[0, length]`.
    fn segment_at(&self, d: f64) -> (usize, f64) {
        // Binary search over cumulative lengths; `partition_point` returns
        // the first index with cum > d, so the containing segment starts at
        // idx - 1.
        let idx = self
            .cum
            .partition_point(|&c| c <= d)
            .min(self.cum.len() - 1);
        let i = idx - 1;
        let seg_len = self.cum[idx] - self.cum[i];
        let t = if seg_len < EPS {
            0.0
        } else {
            (d - self.cum[i]) / seg_len
        };
        (i, t.clamp(0.0, 1.0))
    }

    /// The point at arc-length distance `d` from the start.
    ///
    /// # Errors
    ///
    /// [`GeomError::DistanceOutOfRange`] when `d ∉ [0, length]` (with an
    /// [`EPS`]-sized grace band for accumulated floating-point error).
    pub fn point_at_distance(&self, d: f64) -> Result<Point, GeomError> {
        let len = self.length();
        if !(-EPS..=len + EPS).contains(&d) {
            return Err(GeomError::DistanceOutOfRange {
                requested: d,
                length: len,
            });
        }
        Ok(self.point_at_distance_clamped(d))
    }

    /// The point at arc-length distance `d`, with `d` clamped into
    /// `[0, length]`. Never fails; use when the caller's arithmetic may
    /// slightly overshoot the ends (e.g. extrapolating a database position
    /// past the end of a trip).
    pub fn point_at_distance_clamped(&self, d: f64) -> Point {
        let d = d.clamp(0.0, self.length());
        let (i, t) = self.segment_at(d);
        self.vertices[i].lerp(self.vertices[i + 1], t)
    }

    /// Projects an arbitrary point onto the polyline.
    ///
    /// Returns `(arc_distance, euclidean_distance)` of the closest point on
    /// the polyline. Linear in the number of segments.
    pub fn locate(&self, p: Point) -> (f64, f64) {
        let mut best_d = f64::INFINITY;
        let mut best_arc = 0.0;
        for (i, seg) in self.segments().enumerate() {
            let t = seg.project(p);
            let q = seg.point_at(t);
            let d = q.distance(p);
            if d < best_d {
                best_d = d;
                best_arc = self.cum[i] + t * (self.cum[i + 1] - self.cum[i]);
            }
        }
        (best_arc, best_d)
    }

    /// Route-distance between two arc positions (paper §2): simply the
    /// absolute difference of arc distances along the same route.
    #[inline]
    pub fn route_distance(&self, d0: f64, d1: f64) -> f64 {
        (d1 - d0).abs()
    }

    /// The path along the polyline between arc distances `d0 ≤ d1`:
    /// the point at `d0`, all interior vertices, and the point at `d1`.
    ///
    /// This is the geometry of the paper's *uncertainty interval* — the
    /// stretch of route between the lower bound `l(t)` and upper bound
    /// `u(t)` positions. Degenerate intervals (`d0 == d1`) yield one point.
    ///
    /// # Errors
    ///
    /// [`GeomError::InvertedInterval`] when `d0 > d1`;
    /// [`GeomError::DistanceOutOfRange`] when either endpoint is outside
    /// `[0, length]` (with an EPS grace band).
    pub fn interval_points(&self, d0: f64, d1: f64) -> Result<Vec<Point>, GeomError> {
        if d0 > d1 {
            return Err(GeomError::InvertedInterval { lo: d0, hi: d1 });
        }
        let len = self.length();
        for d in [d0, d1] {
            if !(-EPS..=len + EPS).contains(&d) {
                return Err(GeomError::DistanceOutOfRange {
                    requested: d,
                    length: len,
                });
            }
        }
        let d0 = d0.clamp(0.0, len);
        let d1 = d1.clamp(0.0, len);
        let mut pts = vec![self.point_at_distance_clamped(d0)];
        if d1 - d0 >= EPS {
            let (i0, _) = self.segment_at(d0);
            let (i1, _) = self.segment_at(d1);
            for i in (i0 + 1)..=i1 {
                let v = self.vertices[i];
                // Skip vertices coincident with either endpoint.
                if self.cum[i] - d0 > EPS && d1 - self.cum[i] > EPS {
                    pts.push(v);
                }
            }
            pts.push(self.point_at_distance_clamped(d1));
        }
        Ok(pts)
    }

    /// Bounding box of the path between arc distances `d0 ≤ d1` (clamped).
    pub fn interval_bbox(&self, d0: f64, d1: f64) -> Result<Rect, GeomError> {
        Ok(Rect::from_points(self.interval_points(d0, d1)?))
    }

    /// The same polyline traversed in the opposite direction.
    ///
    /// Arc distance `d` on the reversed polyline addresses the same point as
    /// `length - d` on the original — this realises the paper's binary
    /// `P.direction` sub-attribute.
    pub fn reversed(&self) -> Polyline {
        let mut vertices = self.vertices.clone();
        vertices.reverse();
        // Reconstruction cannot fail: reversal preserves vertex count,
        // finiteness, and total length.
        Polyline::new(vertices).expect("reversal preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        // Runs 10 east then 5 north; total length 15.
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Polyline::new(vec![Point::new(0.0, 0.0)]),
            Err(GeomError::TooFewVertices { got: 1, need: 2 })
        ));
        assert!(matches!(
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 0.0)]),
            Err(GeomError::NonFiniteCoordinate)
        ));
        assert!(matches!(
            Polyline::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]),
            Err(GeomError::ZeroLength)
        ));
    }

    #[test]
    fn length_and_cumulative() {
        let p = l_shape();
        assert_eq!(p.length(), 15.0);
        assert_eq!(p.cumulative(), &[0.0, 10.0, 15.0]);
        assert_eq!(p.start(), Point::new(0.0, 0.0));
        assert_eq!(p.end(), Point::new(10.0, 5.0));
    }

    #[test]
    fn point_at_distance_interior_and_ends() {
        let p = l_shape();
        assert_eq!(p.point_at_distance(0.0).unwrap(), Point::new(0.0, 0.0));
        assert_eq!(p.point_at_distance(4.0).unwrap(), Point::new(4.0, 0.0));
        assert_eq!(p.point_at_distance(10.0).unwrap(), Point::new(10.0, 0.0));
        assert_eq!(p.point_at_distance(12.0).unwrap(), Point::new(10.0, 2.0));
        assert_eq!(p.point_at_distance(15.0).unwrap(), Point::new(10.0, 5.0));
    }

    #[test]
    fn point_at_distance_out_of_range() {
        let p = l_shape();
        assert!(p.point_at_distance(-0.1).is_err());
        assert!(p.point_at_distance(15.1).is_err());
        // Clamped variant accepts anything.
        assert_eq!(p.point_at_distance_clamped(-3.0), p.start());
        assert_eq!(p.point_at_distance_clamped(99.0), p.end());
    }

    #[test]
    fn locate_projects_onto_nearest_segment() {
        let p = l_shape();
        // Above the horizontal leg.
        let (arc, dist) = p.locate(Point::new(4.0, 3.0));
        assert!((arc - 4.0).abs() < 1e-12);
        assert!((dist - 3.0).abs() < 1e-12);
        // Right of the vertical leg.
        let (arc, dist) = p.locate(Point::new(12.0, 2.0));
        assert!((arc - 12.0).abs() < 1e-12);
        assert!((dist - 2.0).abs() < 1e-12);
        // A point exactly on the line.
        let (arc, dist) = p.locate(Point::new(10.0, 5.0));
        assert!((arc - 15.0).abs() < 1e-12);
        assert!(dist < 1e-12);
    }

    #[test]
    fn route_distance_is_absolute_difference() {
        let p = l_shape();
        assert_eq!(p.route_distance(3.0, 12.0), 9.0);
        assert_eq!(p.route_distance(12.0, 3.0), 9.0);
        assert_eq!(p.route_distance(7.0, 7.0), 0.0);
    }

    #[test]
    fn interval_points_spanning_corner() {
        let p = l_shape();
        let pts = p.interval_points(8.0, 12.0).unwrap();
        assert_eq!(
            pts,
            vec![
                Point::new(8.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 2.0)
            ]
        );
    }

    #[test]
    fn interval_points_degenerate_and_errors() {
        let p = l_shape();
        assert_eq!(
            p.interval_points(5.0, 5.0).unwrap(),
            vec![Point::new(5.0, 0.0)]
        );
        assert!(matches!(
            p.interval_points(6.0, 5.0),
            Err(GeomError::InvertedInterval { .. })
        ));
        assert!(p.interval_points(-1.0, 5.0).is_err());
        assert!(p.interval_points(5.0, 16.0).is_err());
    }

    #[test]
    fn interval_points_endpoint_on_vertex_not_duplicated() {
        let p = l_shape();
        let pts = p.interval_points(10.0, 12.0).unwrap();
        assert_eq!(pts, vec![Point::new(10.0, 0.0), Point::new(10.0, 2.0)]);
        let pts = p.interval_points(8.0, 10.0).unwrap();
        assert_eq!(pts, vec![Point::new(8.0, 0.0), Point::new(10.0, 0.0)]);
    }

    #[test]
    fn interval_bbox_covers_corner() {
        let p = l_shape();
        let r = p.interval_bbox(8.0, 12.0).unwrap();
        assert_eq!(r.min, Point::new(8.0, 0.0));
        assert_eq!(r.max, Point::new(10.0, 2.0));
    }

    #[test]
    fn reversed_addresses_mirror_distances() {
        let p = l_shape();
        let r = p.reversed();
        assert_eq!(r.length(), p.length());
        for d in [0.0, 3.0, 10.0, 15.0] {
            let a = p.point_at_distance(d).unwrap();
            let b = r.point_at_distance(15.0 - d).unwrap();
            assert!(a.approx_eq(b), "d = {d}");
        }
    }

    #[test]
    fn bbox_covers_all_vertices() {
        let p = l_shape();
        let r = p.bbox();
        assert_eq!(r.min, Point::new(0.0, 0.0));
        assert_eq!(r.max, Point::new(10.0, 5.0));
    }

    #[test]
    fn repeated_interior_vertex_is_tolerated() {
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.length(), 10.0);
        assert_eq!(p.point_at_distance(5.0).unwrap(), Point::new(5.0, 0.0));
        assert_eq!(p.point_at_distance(7.5).unwrap(), Point::new(7.5, 0.0));
    }
}
