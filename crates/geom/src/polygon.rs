//! Simple polygons: the query regions of the paper's range queries.
//!
//! A range query (§4) retrieves objects whose current position lies in a
//! polygon `G`. The may/must semantics (Theorems 5–6) reduce to two
//! predicates on the uncertainty-interval path: does it *intersect* the
//! polygon, and does it lie *entirely inside* the polygon. Both are
//! implemented here.

use crate::bbox::Rect;
use crate::error::GeomError;
use crate::point::Point;
use crate::segment::{intersection_params, segments_intersect, Segment};

/// A simple (non-self-intersecting) polygon in the plane.
///
/// Vertices may wind in either direction; the closing edge from the last
/// vertex back to the first is implicit. Containment treats the boundary as
/// inside.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    bbox: Rect,
}

impl Polygon {
    /// Builds a polygon from its boundary vertices.
    ///
    /// # Errors
    ///
    /// - [`GeomError::DegeneratePolygon`] for fewer than three vertices.
    /// - [`GeomError::NonFiniteCoordinate`] for NaN/∞ coordinates.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::DegeneratePolygon {
                got: vertices.len(),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let bbox = Rect::from_points(vertices.iter().copied());
        Ok(Polygon { vertices, bbox })
    }

    /// Axis-aligned rectangle as a polygon — the most common query region.
    pub fn rectangle(rect: &Rect) -> Result<Self, GeomError> {
        Polygon::new(vec![
            rect.min,
            Point::new(rect.max.x, rect.min.y),
            rect.max,
            Point::new(rect.min.x, rect.max.y),
        ])
    }

    /// Regular polygon with `n ≥ 3` vertices approximating a disc — used for
    /// "within `radius` of a point" queries (the paper's taxi-cab example).
    pub fn regular(center: Point, radius: f64, n: usize) -> Result<Self, GeomError> {
        if n < 3 {
            return Err(GeomError::DegeneratePolygon { got: n });
        }
        let vertices = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
                Point::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        Polygon::new(vertices)
    }

    /// Boundary vertices, in order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Bounding box (precomputed at construction).
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Iterator over the boundary edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (shoelace formula): positive for counter-clockwise
    /// winding.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.cross(b);
        }
        acc * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Point-in-polygon test (even–odd ray casting). Boundary points count
    /// as inside.
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.bbox.contains_point(p) {
            return false;
        }
        // Boundary counts as inside.
        for e in self.edges() {
            if e.distance_to_point(p) < crate::point::EPS {
                return true;
            }
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Returns `true` when the segment intersects the polygon (its interior
    /// or boundary).
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        if !self.bbox.intersects(&Rect::new(s.a, s.b)) {
            return false;
        }
        if self.contains_point(s.a) || self.contains_point(s.b) {
            return true;
        }
        self.edges().any(|e| segments_intersect(e.a, e.b, s.a, s.b))
    }

    /// Returns `true` when a polyline path (given as its vertex sequence)
    /// touches the polygon anywhere — the *may be in G* predicate of
    /// Theorem 5 applied to an uncertainty interval.
    ///
    /// A single-point path degenerates to point containment.
    pub fn intersects_path(&self, path: &[Point]) -> bool {
        match path {
            [] => false,
            [p] => self.contains_point(*p),
            _ => path
                .windows(2)
                .any(|w| self.intersects_segment(&Segment::new(w[0], w[1]))),
        }
    }

    /// Returns `true` when a polyline path lies entirely inside the (closed)
    /// polygon — the *must be in G* predicate of Theorem 6 applied to an
    /// uncertainty interval.
    ///
    /// Exactness: each path segment is split at every parameter where it
    /// meets a polygon edge; between consecutive split points the segment is
    /// entirely inside or entirely outside, so classifying the midpoint of
    /// each piece decides containment without sampling error.
    pub fn contains_path(&self, path: &[Point]) -> bool {
        if path.is_empty() {
            return false;
        }
        if !path.iter().all(|&p| self.contains_point(p)) {
            return false;
        }
        for w in path.windows(2) {
            let s = Segment::new(w[0], w[1]);
            let mut cuts = vec![0.0, 1.0];
            for e in self.edges() {
                cuts.extend(intersection_params(&s, &e));
            }
            cuts.sort_by(|a, b| a.partial_cmp(b).expect("params are finite"));
            for pair in cuts.windows(2) {
                if pair[1] - pair[0] > crate::point::EPS {
                    let mid = s.point_at((pair[0] + pair[1]) * 0.5);
                    if !self.contains_point(mid) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Convenience: does the polygon's interior intersect a rectangle.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        if !self.bbox.intersects(r) {
            return false;
        }
        // Any polygon vertex in the rect, any rect corner in the polygon,
        // or any pair of edges crossing.
        if self.vertices.iter().any(|&v| r.contains_point(v)) {
            return true;
        }
        let corners = [
            r.min,
            Point::new(r.max.x, r.min.y),
            r.max,
            Point::new(r.min.x, r.max.y),
        ];
        if corners.iter().any(|&c| self.contains_point(c)) {
            return true;
        }
        let rect_edges = [
            Segment::new(corners[0], corners[1]),
            Segment::new(corners[1], corners[2]),
            Segment::new(corners[2], corners[3]),
            Segment::new(corners[3], corners[0]),
        ];
        self.edges()
            .any(|e| rect_edges.iter().any(|re| e.intersects(re)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    fn concave_l() -> Polygon {
        // L-shaped polygon: big square minus top-right quadrant.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(GeomError::DegeneratePolygon { got: 2 })
        ));
        assert!(matches!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, f64::INFINITY),
                Point::new(1.0, 1.0)
            ]),
            Err(GeomError::NonFiniteCoordinate)
        ));
    }

    #[test]
    fn area_and_winding() {
        let sq = unit_square();
        assert!((sq.signed_area() - 1.0).abs() < 1e-12); // CCW
        assert!((sq.area() - 1.0).abs() < 1e-12);
        let l = concave_l();
        assert!((l.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn contains_point_interior_exterior_boundary() {
        let sq = unit_square();
        assert!(sq.contains_point(Point::new(0.5, 0.5)));
        assert!(!sq.contains_point(Point::new(1.5, 0.5)));
        assert!(sq.contains_point(Point::new(1.0, 0.5))); // boundary
        assert!(sq.contains_point(Point::new(0.0, 0.0))); // vertex
    }

    #[test]
    fn contains_point_concave() {
        let l = concave_l();
        assert!(l.contains_point(Point::new(0.5, 1.5)));
        assert!(l.contains_point(Point::new(1.5, 0.5)));
        assert!(!l.contains_point(Point::new(1.5, 1.5))); // notch
    }

    #[test]
    fn segment_intersection() {
        let sq = unit_square();
        // Fully inside.
        assert!(sq.intersects_segment(&Segment::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8))));
        // Crossing through.
        assert!(sq.intersects_segment(&Segment::new(Point::new(-1.0, 0.5), Point::new(2.0, 0.5))));
        // Fully outside.
        assert!(!sq.intersects_segment(&Segment::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0))));
    }

    #[test]
    fn path_may_and_must_semantics() {
        let sq = unit_square();
        let inside = [
            Point::new(0.2, 0.2),
            Point::new(0.8, 0.2),
            Point::new(0.8, 0.8),
        ];
        assert!(sq.intersects_path(&inside));
        assert!(sq.contains_path(&inside));

        let crossing = [Point::new(0.5, 0.5), Point::new(1.5, 0.5)];
        assert!(sq.intersects_path(&crossing));
        assert!(!sq.contains_path(&crossing));

        let outside = [Point::new(2.0, 2.0), Point::new(3.0, 2.0)];
        assert!(!sq.intersects_path(&outside));
        assert!(!sq.contains_path(&outside));
    }

    #[test]
    fn path_through_concave_notch_is_not_contained() {
        let l = concave_l();
        // Both endpoints inside the L but the straight line cuts the notch.
        let path = [Point::new(1.8, 0.5), Point::new(0.5, 1.8)];
        assert!(l.intersects_path(&path));
        assert!(!l.contains_path(&path));
    }

    #[test]
    fn path_grazing_reflex_corner_is_contained() {
        let l = concave_l();
        // This diagonal touches the reflex corner (1, 1) exactly; the
        // closed polygon contains it throughout.
        let path = [Point::new(1.5, 0.5), Point::new(0.5, 1.5)];
        assert!(l.contains_path(&path));
    }

    #[test]
    fn single_point_path() {
        let sq = unit_square();
        assert!(sq.intersects_path(&[Point::new(0.5, 0.5)]));
        assert!(sq.contains_path(&[Point::new(0.5, 0.5)]));
        assert!(!sq.intersects_path(&[Point::new(5.0, 5.0)]));
        assert!(!sq.intersects_path(&[]));
        assert!(!sq.contains_path(&[]));
    }

    #[test]
    fn rectangle_and_regular_constructors() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let pg = Polygon::rectangle(&r).unwrap();
        assert!((pg.area() - 2.0).abs() < 1e-12);
        assert_eq!(pg.bbox(), r);

        let disc = Polygon::regular(Point::new(0.0, 0.0), 1.0, 64).unwrap();
        // Area of a 64-gon approximates π within 1 %.
        assert!((disc.area() - std::f64::consts::PI).abs() < 0.01);
        assert!(disc.contains_point(Point::new(0.0, 0.0)));
        assert!(!disc.contains_point(Point::new(1.1, 0.0)));
        assert!(Polygon::regular(Point::ORIGIN, 1.0, 2).is_err());
    }

    #[test]
    fn rect_intersection() {
        let sq = unit_square();
        let overlapping = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        let containing = Rect::new(Point::new(-1.0, -1.0), Point::new(2.0, 2.0));
        let contained = Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6));
        let disjoint = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(sq.intersects_rect(&overlapping));
        assert!(sq.intersects_rect(&containing));
        assert!(sq.intersects_rect(&contained));
        assert!(!sq.intersects_rect(&disjoint));
    }
}
