//! # modb-geom — geometric substrate for the moving-objects database
//!
//! Geometry kernel for the `modb` workspace, which reproduces Wolfson et
//! al., *"Cost and Imprecision in Modeling the Position of Moving Objects"*
//! (ICDE 1998). The paper models routes as piecewise-linear curves in the
//! plane, query regions as polygons, and the index space as 3-D (x, y, t)
//! time-space; this crate supplies those primitives:
//!
//! - [`Point`]: 2-D points/vectors.
//! - [`Segment`]: line segments with robust intersection predicates.
//! - [`Polyline`]: arc-length-parameterised routes — the paper's
//!   route-distance arithmetic (§2).
//! - [`Polygon`]: simple polygons with the may/must path predicates that
//!   back Theorems 5–6 (§4).
//! - [`Rect`] / [`Aabb3`]: 2-D and 3-D axis-aligned boxes for the spatial
//!   index.
//!
//! ## Conventions
//!
//! Distances are **miles**, time is **minutes** (matching the paper's
//! Example 1), all scalars are `f64`. Geometric predicates use the
//! tolerance [`EPS`].

#![warn(missing_docs)]

mod aabb3;
mod bbox;
mod error;
mod point;
mod polygon;
mod polyline;
mod segment;
mod simplify;

pub use aabb3::Aabb3;
pub use bbox::Rect;
pub use error::GeomError;
pub use point::{Point, EPS};
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use segment::{intersection_params, orient, segments_intersect, Segment};
pub use simplify::simplify;
