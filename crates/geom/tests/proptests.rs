//! Property-based tests for the geometry kernel.

use modb_geom::{Aabb3, Point, Polygon, Polyline, Rect};
use proptest::prelude::*;

/// Strategy: a polyline whose x coordinates strictly increase, so it never
/// self-overlaps and nearest-point projection is unambiguous.
fn monotone_polyline() -> impl Strategy<Value = Polyline> {
    proptest::collection::vec((0.1f64..5.0, -10.0f64..10.0), 2..12).prop_map(|steps| {
        let mut x = 0.0;
        let mut pts = vec![Point::new(0.0, 0.0)];
        for (dx, y) in steps {
            x += dx;
            pts.push(Point::new(x, y));
        }
        Polyline::new(pts).expect("strictly increasing x gives positive length")
    })
}

fn finite_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (finite_point(), finite_point()).prop_map(|(a, b)| Rect::new(a, b))
}

fn aabb3() -> impl Strategy<Value = Aabb3> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
        -100.0f64..100.0,
    )
        .prop_map(|(a, b, c, d, e, f)| Aabb3::new([a, b, c], [d, e, f]))
}

proptest! {
    /// point_at_distance followed by locate recovers the arc distance.
    #[test]
    fn locate_inverts_point_at_distance(pl in monotone_polyline(), frac in 0.0f64..1.0) {
        let d = frac * pl.length();
        let p = pl.point_at_distance(d).unwrap();
        let (arc, dist) = pl.locate(p);
        prop_assert!(dist < 1e-6, "distance to own point should be ~0, got {dist}");
        prop_assert!((arc - d).abs() < 1e-6, "arc {arc} != requested {d}");
    }

    /// The interval path's endpoints are the interval's boundary points and
    /// the path's polygonal length equals the arc span.
    #[test]
    fn interval_points_consistent(pl in monotone_polyline(),
                                  f0 in 0.0f64..1.0, f1 in 0.0f64..1.0) {
        let (lo, hi) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        let d0 = lo * pl.length();
        let d1 = hi * pl.length();
        let pts = pl.interval_points(d0, d1).unwrap();
        prop_assert!(pts[0].approx_eq(pl.point_at_distance(d0).unwrap()));
        prop_assert!(pts.last().unwrap().approx_eq(pl.point_at_distance(d1).unwrap()));
        let path_len: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();
        prop_assert!((path_len - (d1 - d0)).abs() < 1e-6,
            "path length {path_len} != arc span {}", d1 - d0);
    }

    /// Reversal is an involution on addressed points.
    #[test]
    fn reversed_mirror(pl in monotone_polyline(), frac in 0.0f64..1.0) {
        let d = frac * pl.length();
        let r = pl.reversed();
        let a = pl.point_at_distance(d).unwrap();
        let b = r.point_at_distance(pl.length() - d).unwrap();
        prop_assert!(a.approx_eq(b));
    }

    /// Rect union is commutative and covers both operands.
    #[test]
    fn rect_union_properties(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-12 >= a.area().max(b.area()));
    }

    /// Rect intersection predicate is symmetric; disjoint boxes have
    /// separated projections on some axis.
    #[test]
    fn rect_intersects_symmetric(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// 3-D box algebra: symmetry, non-negative enlargement, intersection
    /// volume bounded by both volumes.
    #[test]
    fn aabb3_algebra(a in aabb3(), b in aabb3()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert!(a.enlargement(&b) >= -1e-9);
        let iv = a.intersection_volume(&b);
        prop_assert!(iv >= 0.0);
        prop_assert!(iv <= a.volume() + 1e-9);
        prop_assert!(iv <= b.volume() + 1e-9);
        if iv > 0.0 {
            prop_assert!(a.intersects(&b));
        }
        prop_assert!(a.union(&b).contains(&a));
        prop_assert!(a.union(&b).contains(&b));
    }

    /// A rectangle polygon agrees with the Rect containment test away from
    /// the boundary.
    #[test]
    fn rectangle_polygon_matches_rect(r in rect(), p in finite_point()) {
        prop_assume!(r.width() > 1e-6 && r.height() > 1e-6);
        let poly = Polygon::rectangle(&r).unwrap();
        // Stay clear of the boundary where EPS conventions may differ.
        let strictly_in = p.x > r.min.x + 1e-6 && p.x < r.max.x - 1e-6
            && p.y > r.min.y + 1e-6 && p.y < r.max.y - 1e-6;
        let strictly_out = p.x < r.min.x - 1e-6 || p.x > r.max.x + 1e-6
            || p.y < r.min.y - 1e-6 || p.y > r.max.y + 1e-6;
        if strictly_in {
            prop_assert!(poly.contains_point(p));
        } else if strictly_out {
            prop_assert!(!poly.contains_point(p));
        }
    }

    /// must ⊆ may: a contained path always intersects.
    #[test]
    fn contains_implies_intersects(r in rect(),
                                   pts in proptest::collection::vec(finite_point(), 1..6)) {
        prop_assume!(r.width() > 1e-6 && r.height() > 1e-6);
        let poly = Polygon::rectangle(&r).unwrap();
        if poly.contains_path(&pts) {
            prop_assert!(poly.intersects_path(&pts));
        }
    }
}
