//! # modb-bench — benchmark support
//!
//! Shared fixtures for the Criterion benches. Each bench target maps to a
//! paper table/figure (see DESIGN.md §4):
//!
//! - `policies`: F1–F3 (per-policy simulation cost), T1 (baseline
//!   comparison), T2 (threshold/bound evaluation).
//! - `indexing`: F5 (index vs scan range queries), F6 (index maintenance),
//!   T3 (may/must refinement).
//! - `geometry`: the route-distance and polygon primitives everything sits
//!   on.

#![warn(missing_docs)]

use modb_motion::{Trip, TripProfile};
use modb_routes::{Direction, Route, RouteId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic one-trip fixture: (route, trip) pair on a straight
/// 120-mile route with a mixed-regime speed curve.
pub fn fixture_trip(seed: u64, minutes: f64) -> (Route, Trip) {
    let route = Route::from_vertices(
        RouteId(1),
        "bench-route",
        vec![
            modb_geom::Point::new(0.0, 0.0),
            modb_geom::Point::new(120.0, 0.0),
        ],
    )
    .expect("valid route");
    let mut rng = StdRng::seed_from_u64(seed);
    let curve = TripProfile::Mixed
        .generate(&mut rng, minutes, 1.0 / 60.0)
        .expect("valid curve");
    let trip = Trip::new(RouteId(1), Direction::Forward, 0.0, 0.0, curve).expect("valid trip");
    (route, trip)
}
