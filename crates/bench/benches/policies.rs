//! Benches for the policy experiments.
//!
//! - `f1_f2_f3/*`: one full one-trip simulation per policy — the unit of
//!   work behind the sweep plots (messages, total cost, uncertainty).
//! - `t1/*`: the traditional baseline vs ail at the same imprecision.
//! - `t2/*`: the closed-form threshold and bound evaluations of
//!   Propositions 1–4 (these run on every onboard tick and every DBMS
//!   answer, so their cost matters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use modb_bench::fixture_trip;
use modb_policy::baselines::TraditionalPolicy;
use modb_policy::{
    combined_bound, optimal_threshold, BoundKind, DeviationCost, Policy, PolicyEngine,
    PositionUpdate, Quintuple,
};
use modb_sim::{run_policy, DEFAULT_TICK};

const C: f64 = 5.0;

fn initial(trip: &modb_motion::Trip) -> PositionUpdate {
    PositionUpdate {
        time: trip.start_time(),
        arc: trip.start_arc(),
        speed: trip.speed_at(trip.start_time() + DEFAULT_TICK),
    }
}

fn bench_policy_sweep_unit(c: &mut Criterion) {
    let (route, trip) = fixture_trip(42, 10.0);
    let mut group = c.benchmark_group("f1_f2_f3_one_trip_simulation");
    for (label, quintuple) in [
        ("dl", Quintuple::dl(C)),
        ("ail", Quintuple::ail(C)),
        ("cil", Quintuple::cil(C)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut engine = PolicyEngine::new(quintuple, route.length(), 1.0, initial(&trip))
                    .expect("valid");
                let m = run_policy(
                    &trip,
                    &route,
                    &mut engine,
                    &DeviationCost::UNIT_UNIFORM,
                    DEFAULT_TICK,
                    trip.max_speed().max(1e-6),
                )
                .expect("runs");
                black_box(m.total_cost)
            })
        });
    }
    group.finish();
}

fn bench_savings_baseline(c: &mut Criterion) {
    let (route, trip) = fixture_trip(43, 10.0);
    let mut group = c.benchmark_group("t1_savings");
    group.bench_function("ail_trip", |b| {
        b.iter(|| {
            let mut engine =
                PolicyEngine::new(Quintuple::ail(C), route.length(), 1.0, initial(&trip))
                    .expect("valid");
            black_box(
                run_policy(
                    &trip,
                    &route,
                    &mut engine,
                    &DeviationCost::UNIT_UNIFORM,
                    DEFAULT_TICK,
                    trip.max_speed().max(1e-6),
                )
                .expect("runs")
                .messages,
            )
        })
    });
    group.bench_function("traditional_trip", |b| {
        b.iter(|| {
            let mut policy = TraditionalPolicy::new(0.5, C, initial(&trip)).expect("valid");
            black_box(
                run_policy(
                    &trip,
                    &route,
                    &mut policy,
                    &DeviationCost::UNIT_UNIFORM,
                    DEFAULT_TICK,
                    trip.max_speed().max(1e-6),
                )
                .expect("runs")
                .messages,
            )
        })
    });
    group.finish();
}

fn bench_threshold_and_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_closed_forms");
    group.bench_function("prop1_optimal_threshold", |b| {
        b.iter(|| {
            black_box(optimal_threshold(
                black_box(1.0),
                black_box(2.0),
                black_box(C),
            ))
        })
    });
    group.bench_function("prop4_combined_bound", |b| {
        b.iter(|| {
            black_box(combined_bound(
                BoundKind::Immediate,
                black_box(1.0),
                black_box(1.5),
                black_box(C),
                black_box(7.3),
            ))
        })
    });
    // A single onboard tick (the hot loop of every vehicle).
    let (route, trip) = fixture_trip(44, 10.0);
    group.bench_function("engine_tick", |b| {
        let mut engine = PolicyEngine::new(Quintuple::ail(C), route.length(), 1.0, initial(&trip))
            .expect("valid");
        let mut t = 0.0;
        b.iter(|| {
            t += DEFAULT_TICK;
            let arc = trip.arc_at(&route, t);
            black_box(engine.tick(t, arc, trip.speed_at(t)).expect("ok"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_sweep_unit,
    bench_savings_baseline,
    bench_threshold_and_bounds
);
criterion_main!(benches);
