//! Benches for the service façade: concurrent ingestion throughput,
//! shared-handle query latency under write contention, and the query
//! language's parse + execute cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_geom::Point;
use modb_server::{IngestService, SharedDatabase, UpdateEnvelope};
use modb_sim::experiments::indexing::build_city_db;

fn shared_fleet(n: usize) -> SharedDatabase {
    SharedDatabase::new(build_city_db(77, n, 20))
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_ingest");
    group.sample_size(10);
    // One long-lived fleet and service; each iteration pushes a batch of
    // 2 000 updates with strictly increasing timestamps and waits for the
    // workers to drain them (measured via the accepted counter).
    let db = shared_fleet(2_000);
    let service = IngestService::spawn(db, 4, 4_096);
    let handle = service.handle();
    let mut stamp = 1.0_f64;
    group.bench_function("ingest_2000_updates_4_workers", |b| {
        b.iter(|| {
            stamp += 1.0;
            let before = service.stats().accepted();
            for i in 0..2_000u64 {
                handle
                    .send(UpdateEnvelope {
                        id: ObjectId(i),
                        msg: UpdateMessage::basic(stamp, UpdatePosition::Arc(0.5), 0.7),
                    })
                    .expect("service alive");
            }
            // Wait for the batch to drain so the measurement covers apply
            // work, not just channel sends.
            while service.stats().accepted() - before < 2_000 {
                std::hint::spin_loop();
            }
            black_box(service.stats().accepted())
        })
    });
    group.finish();
    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.rejected(), 0, "monotone stamps must all apply");
}

fn bench_shared_queries(c: &mut Criterion) {
    let db = shared_fleet(5_000);
    let mut group = c.benchmark_group("server_query");
    group.bench_function("within_point_shared_handle", |b| {
        b.iter(|| {
            black_box(
                db.within_distance_of_point(Point::new(10.0, 10.0), 2.0, 3.0)
                    .expect("ok")
                    .candidates,
            )
        })
    });
    group.finish();
}

fn bench_query_language(c: &mut Criterion) {
    let db = shared_fleet(1_000);
    let mut group = c.benchmark_group("query_language");
    group.bench_function("parse_only", |b| {
        b.iter(|| {
            black_box(
                modb_query::parse(black_box(
                    "RETRIEVE OBJECTS INSIDE POLYGON ((0,0), (4,0), (4,4), (0,4)) DURING 0 TO 15",
                ))
                .expect("parses"),
            )
        })
    });
    group.bench_function("parse_and_execute_range", |b| {
        b.iter(|| {
            black_box(
                db.run_query("RETRIEVE OBJECTS INSIDE RECT (5, 5, 9, 9) AT TIME 3")
                    .expect("ok"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_shared_queries,
    bench_query_language
);
criterion_main!(benches);
