//! Benches for the §4 indexing experiments.
//!
//! - `f5_range_query/*`: index vs exhaustive scan at growing fleet sizes
//!   (the sublinearity figure).
//! - `f6_index_update`: §4.2's maintenance step (delete old o-plane,
//!   insert new) per position update.
//! - `t3_refinement`: exact may/must classification of one candidate.
//! - `rtree/*`: the raw R\*-tree operations underneath.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_geom::{Aabb3, Point, Polygon, Rect};
use modb_index::{QueryRegion, RStarTree};
use modb_sim::experiments::indexing::{build_city_db, query_regions};

fn bench_range_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_range_query");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let db = build_city_db(9, n, 20);
        let regions = query_regions(db.network(), 16, 2.0, 3.0, 5);
        let mut k = 0;
        group.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            b.iter(|| {
                k = (k + 1) % regions.len();
                black_box(db.range_query(&regions[k]).expect("ok").candidates)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                k = (k + 1) % regions.len();
                black_box(db.range_query_scan(&regions[k]).expect("ok").candidates)
            })
        });
    }
    group.finish();
}

fn bench_index_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6_index_update");
    group.sample_size(20);
    let mut db = build_city_db(10, 5_000, 20);
    let ids: Vec<ObjectId> = db.moving_ids().collect();
    let mut k = 0usize;
    let mut t = 1.0;
    group.bench_function("apply_update_5k_fleet", |b| {
        b.iter(|| {
            k = (k + 1) % ids.len();
            t += 1e-6;
            let id = ids[k];
            let obj = db.moving(id).expect("known");
            let route = db.network().get(obj.attr.route).expect("route");
            let arc = (obj.attr.start_arc + 0.1) % route.length();
            db.apply_update(id, &UpdateMessage::basic(t, UpdatePosition::Arc(arc), 0.7))
                .expect("ok");
        })
    });
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let db = build_city_db(11, 1_000, 20);
    let g =
        Polygon::rectangle(&Rect::new(Point::new(5.0, 5.0), Point::new(9.0, 9.0))).expect("valid");
    let region = QueryRegion::at_instant(g, 3.0);
    c.bench_function("t3_refine_candidates", |b| {
        b.iter(|| black_box(db.range_query(&region).expect("ok").must.len()))
    });
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree");
    let entries: Vec<(Aabb3, u64)> = (0..10_000u64)
        .map(|i| {
            let f = i as f64;
            (
                Aabb3::new(
                    [f % 97.0, (f * 0.61) % 89.0, (f * 0.37) % 59.0],
                    [
                        f % 97.0 + 1.0,
                        (f * 0.61) % 89.0 + 1.0,
                        (f * 0.37) % 59.0 + 1.0,
                    ],
                ),
                i,
            )
        })
        .collect();
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = RStarTree::new();
            for (bb, v) in &entries {
                t.insert(*bb, *v);
            }
            black_box(t.len())
        })
    });
    group.bench_function("bulk_load_10k", |b| {
        b.iter(|| black_box(RStarTree::bulk_load(entries.clone()).len()))
    });
    let tree = RStarTree::bulk_load(entries.clone());
    let query = Aabb3::new([40.0, 40.0, 20.0], [45.0, 45.0, 25.0]);
    group.bench_function("query_10k", |b| {
        b.iter(|| black_box(tree.query_intersecting(&query).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_range_query,
    bench_index_update,
    bench_refinement,
    bench_rtree
);
criterion_main!(benches);
