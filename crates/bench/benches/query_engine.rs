//! Benches for the epoch-snapshot query engine: locked reads vs snapshot
//! reads (quiet and under writer churn), serial vs pool-parallel refine,
//! and the cost of publishing an epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_server::{QueryEngineConfig, SharedDatabase};
use modb_sim::experiments::indexing::{build_city_db, query_regions};

fn fleet(n: usize) -> (SharedDatabase, Vec<modb_index::QueryRegion>) {
    let raw = build_city_db(77, n, 20);
    let regions = query_regions(raw.network(), 64, 2.0, 5.0, 7);
    (SharedDatabase::new(raw), regions)
}

fn manual_engine(db: &SharedDatabase, parallel_threshold: usize) -> modb_server::QueryEngine {
    db.query_engine(QueryEngineConfig {
        epoch_interval: None,
        parallel_threshold,
        ..QueryEngineConfig::default()
    })
}

/// Locked vs snapshot range queries on a quiet database — measures the
/// pure overhead/benefit of the snapshot hop with no contention.
fn bench_quiet_reads(c: &mut Criterion) {
    let (db, regions) = fleet(5_000);
    let engine = manual_engine(&db, usize::MAX);
    engine.publish_now();
    let mut group = c.benchmark_group("query_engine_quiet");
    let mut i = 0;
    group.bench_function("range_locked", |b| {
        b.iter(|| {
            i += 1;
            black_box(
                db.range_query(&regions[i % regions.len()])
                    .expect("ok")
                    .candidates,
            )
        })
    });
    let mut i = 0;
    group.bench_function("range_snapshot", |b| {
        b.iter(|| {
            i += 1;
            black_box(
                engine
                    .range_query(&regions[i % regions.len()])
                    .expect("ok")
                    .candidates,
            )
        })
    });
    group.finish();
}

/// The same comparison with a writer hammering the database: the locked
/// path serializes against it, the snapshot path does not.
fn bench_contended_reads(c: &mut Criterion) {
    let (db, regions) = fleet(5_000);
    let engine = db.query_engine(QueryEngineConfig {
        epoch_interval: Some(Duration::from_millis(25)),
        ..QueryEngineConfig::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                round += 1;
                for i in 0..64u64 {
                    let _ = db.apply_update(
                        ObjectId((round * 64 + i) % 5_000),
                        &UpdateMessage::basic(round as f64 * 1e-5, UpdatePosition::Arc(0.5), 0.7),
                    );
                }
            }
        })
    };
    let mut group = c.benchmark_group("query_engine_contended");
    group.sample_size(20);
    let mut i = 0;
    group.bench_function("range_locked_vs_writer", |b| {
        b.iter(|| {
            i += 1;
            black_box(
                db.range_query(&regions[i % regions.len()])
                    .expect("ok")
                    .candidates,
            )
        })
    });
    let mut i = 0;
    group.bench_function("range_snapshot_vs_writer", |b| {
        b.iter(|| {
            i += 1;
            black_box(
                engine
                    .range_query(&regions[i % regions.len()])
                    .expect("ok")
                    .candidates,
            )
        })
    });
    group.finish();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer exits");
}

/// Serial vs pool-parallel refine on a region wide enough to pull a few
/// thousand candidates, plus the publish (full clone) cost itself.
fn bench_parallel_refine_and_publish(c: &mut Criterion) {
    let (db, _) = fleet(10_000);
    // A region covering most of the grid at a time when the whole fleet
    // is still live: a worst-case candidate set.
    let wide = query_regions(
        &db.with_read(|inner| inner.network().clone()),
        1,
        18.0,
        5.0,
        11,
    )
    .remove(0);
    let serial = manual_engine(&db, usize::MAX);
    serial.publish_now();
    let parallel = manual_engine(&db, 256);
    parallel.publish_now();
    let mut group = c.benchmark_group("query_engine_refine");
    group.sample_size(20);
    group.bench_function("wide_range_serial", |b| {
        b.iter(|| black_box(serial.range_query(&wide).expect("ok").candidates))
    });
    group.bench_function("wide_range_parallel", |b| {
        b.iter(|| black_box(parallel.range_query(&wide).expect("ok").candidates))
    });
    group.bench_function("publish_epoch_10k_fleet", |b| {
        b.iter(|| black_box(serial.publish_now()))
    });
    group.finish();
}

/// Full-clone vs change-log delta publication at 10k objects across
/// churn levels (0.1%, 1%, 10% of the fleet touched between epochs).
/// Each iteration applies the churn batch and republishes; the churn
/// cost is identical in both modes, so the spread between the `full`
/// and `delta` rows is publication cost alone. This times the whole
/// `publish_now` cycle — for delta mode that includes the post-swap
/// shadow catch-up; the W3 experiment (`exp_epoch_publish`) splits out
/// the pre-swap visibility latency.
fn bench_epoch_publish(c: &mut Criterion) {
    const FLEET: usize = 10_000;
    let mut group = c.benchmark_group("epoch_publish");
    group.sample_size(20);
    for churn in [FLEET / 1000, FLEET / 100, FLEET / 10] {
        for incremental in [false, true] {
            let (db, _) = fleet(FLEET);
            let engine = db.query_engine(QueryEngineConfig {
                epoch_interval: None,
                incremental_publish: incremental,
                ..QueryEngineConfig::default()
            });
            // Past the cold-buffer publish: the first incremental
            // publish is a full clone.
            engine.publish_now();
            engine.publish_now();
            let mode = if incremental { "delta" } else { "full" };
            let mut round = 2u64;
            group.bench_function(format!("{mode}_10k_churn_{churn}"), |b| {
                b.iter(|| {
                    round += 1;
                    let t = round as f64 * 1e-5;
                    for i in 0..churn as u64 {
                        let _ = db.apply_update(
                            ObjectId((round * churn as u64 + i) % FLEET as u64),
                            &UpdateMessage::basic(t, UpdatePosition::Arc(0.5), 0.7),
                        );
                    }
                    black_box(engine.publish_now())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_quiet_reads,
    bench_contended_reads,
    bench_parallel_refine_and_publish,
    bench_epoch_publish
);
criterion_main!(benches);
