//! Micro-benches for the geometric primitives under every query: route
//! arc addressing, projection (map matching), uncertainty-interval
//! extraction, and the polygon may/must predicates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modb_geom::{Point, Polygon, Polyline, Rect};

fn winding_polyline(n: usize) -> Polyline {
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let f = i as f64;
            Point::new(f * 0.5, (f * 0.7).sin() * 3.0)
        })
        .collect();
    Polyline::new(pts).expect("valid")
}

fn bench_polyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyline");
    let pl = winding_polyline(256);
    let len = pl.length();
    group.bench_function("point_at_distance", |b| {
        let mut d = 0.0;
        b.iter(|| {
            d = (d + 7.3) % len;
            black_box(pl.point_at_distance_clamped(d))
        })
    });
    group.bench_function("locate_projection", |b| {
        let mut x = 0.0;
        b.iter(|| {
            x = (x + 11.1) % 120.0;
            black_box(pl.locate(Point::new(x, 1.0)))
        })
    });
    group.bench_function("interval_points", |b| {
        let mut d = 0.0;
        b.iter(|| {
            d = (d + 5.0) % (len - 10.0);
            black_box(pl.interval_points(d, d + 8.0).expect("in range"))
        })
    });
    group.finish();
}

fn bench_polygon(c: &mut Criterion) {
    let mut group = c.benchmark_group("polygon");
    let poly = Polygon::regular(Point::new(0.0, 0.0), 5.0, 32).expect("valid");
    group.bench_function("contains_point", |b| {
        let mut x: f64 = -6.0;
        b.iter(|| {
            x += 0.37;
            if x > 6.0 {
                x = -6.0;
            }
            black_box(poly.contains_point(Point::new(x, 1.0)))
        })
    });
    let path = [
        Point::new(-2.0, -2.0),
        Point::new(0.0, 1.0),
        Point::new(2.0, -1.0),
        Point::new(3.0, 2.0),
    ];
    group.bench_function("contains_path_must", |b| {
        b.iter(|| black_box(poly.contains_path(black_box(&path))))
    });
    group.bench_function("intersects_path_may", |b| {
        b.iter(|| black_box(poly.intersects_path(black_box(&path))))
    });
    let r = Rect::new(Point::new(-1.0, -1.0), Point::new(7.0, 7.0));
    group.bench_function("intersects_rect", |b| {
        b.iter(|| black_box(poly.intersects_rect(black_box(&r))))
    });
    group.finish();
}

criterion_group!(benches, bench_polyline, bench_polygon);
criterion_main!(benches);
