//! Benches for the durability layer: record encoding, batched append
//! throughput under each fsync policy, and snapshot round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_sim::experiments::indexing::build_city_db;
use modb_wal::{
    read_snapshot, write_snapshot, FsyncPolicy, WalBatch, WalOptions, WalRecord, WalWriter,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-bench-wal-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn update(i: u64) -> WalRecord {
    WalRecord::Update {
        id: ObjectId(i % 512),
        msg: UpdateMessage::basic(i as f64, UpdatePosition::Arc(0.5), 0.7),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_encode");
    group.bench_function("frame_update_record", |b| {
        let rec = update(7);
        let mut buf = Vec::with_capacity(256);
        b.iter(|| {
            buf.clear();
            black_box(&rec).encode_frame(&mut buf);
            black_box(buf.len())
        })
    });
    group.bench_function("batch_100_updates", |b| {
        let mut batch = WalBatch::new();
        b.iter(|| {
            batch.clear();
            for i in 0..100u64 {
                batch.push(black_box(&update(i)));
            }
            black_box(batch.bytes())
        })
    });
    group.finish();
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(20);
    for (name, fsync) in [
        ("batch_100_fsync_never", FsyncPolicy::Never),
        ("batch_100_fsync_every_256", FsyncPolicy::EveryN(256)),
    ] {
        let dir = tmp(name);
        let mut writer = WalWriter::create(
            &dir,
            WalOptions {
                fsync,
                max_segment_bytes: 256 * 1024 * 1024,
                ..WalOptions::default()
            },
        )
        .expect("fresh dir");
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut batch = WalBatch::new();
                for _ in 0..100 {
                    batch.push(&update(i));
                    i += 1;
                }
                writer.append_batch(&mut batch).expect("append ok");
                black_box(writer.next_lsn())
            })
        });
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_snapshot");
    group.sample_size(10);
    let db = build_city_db(7, 2_000, 20);
    let dir = tmp("snapshot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    group.bench_function("write_2000_objects", |b| {
        b.iter(|| black_box(write_snapshot(&dir, &db, 0).expect("write ok")))
    });
    let path = write_snapshot(&dir, &db, 0).expect("write ok");
    group.bench_function("read_2000_objects", |b| {
        b.iter(|| black_box(read_snapshot(&path).expect("read ok").1))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_encode, bench_append, bench_snapshot);
criterion_main!(benches);
