//! Routes: named, directed, arc-length-addressable line spatial objects.
//!
//! The paper (§2) assumes "the database stores a set of routes, and at any
//! point in time each object moves along a unique route from the route
//! database". A [`Route`] wraps a [`Polyline`] with an identity; travel
//! direction along the route is the paper's binary `P.direction`
//! sub-attribute, realised by [`Direction`].

use modb_geom::{GeomError, Point, Polyline, Rect};

/// Opaque identifier of a route in a [`crate::RouteNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u64);

/// Travel direction along a route — the paper's binary `P.direction`
/// sub-attribute ("these values may correspond to north-south, or
/// east-west, or the two endpoints of the route").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Travel in order of increasing arc distance (toward the route's last
    /// vertex).
    #[default]
    Forward,
    /// Travel toward the route's first vertex.
    Backward,
}

impl Direction {
    /// The paper encodes direction as a bit; `0` is forward.
    pub fn from_bit(bit: u8) -> Direction {
        if bit == 0 {
            Direction::Forward
        } else {
            Direction::Backward
        }
    }

    /// Inverse of [`Direction::from_bit`].
    pub fn to_bit(self) -> u8 {
        match self {
            Direction::Forward => 0,
            Direction::Backward => 1,
        }
    }

    /// Sign applied to travelled distance when advancing arc positions.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => 1.0,
            Direction::Backward => -1.0,
        }
    }
}

/// A line spatial object: the geometry a moving object travels along.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    id: RouteId,
    name: String,
    polyline: Polyline,
}

impl Route {
    /// Creates a route from an id, a human-readable name, and its geometry.
    pub fn new(id: RouteId, name: impl Into<String>, polyline: Polyline) -> Self {
        Route {
            id,
            name: name.into(),
            polyline,
        }
    }

    /// Convenience constructor from raw vertices.
    pub fn from_vertices(
        id: RouteId,
        name: impl Into<String>,
        vertices: Vec<Point>,
    ) -> Result<Self, GeomError> {
        Ok(Route::new(id, name, Polyline::new(vertices)?))
    }

    /// The route's identifier.
    #[inline]
    pub fn id(&self) -> RouteId {
        self.id
    }

    /// The route's human-readable name (e.g. "Michigan Ave").
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying geometry.
    #[inline]
    pub fn polyline(&self) -> &Polyline {
        &self.polyline
    }

    /// Total route length (miles).
    #[inline]
    pub fn length(&self) -> f64 {
        self.polyline.length()
    }

    /// Bounding box of the route.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.polyline.bbox()
    }

    /// The (x, y) point at arc distance `arc`, clamped into the route.
    #[inline]
    pub fn point_at(&self, arc: f64) -> Point {
        self.polyline.point_at_distance_clamped(arc)
    }

    /// Advances an arc position by `distance` travelled in `direction`,
    /// clamping at the route's ends (a vehicle reaching the end of its
    /// route stops there until it issues a route-change update).
    pub fn advance(&self, arc: f64, distance: f64, direction: Direction) -> f64 {
        debug_assert!(distance >= 0.0, "travelled distance cannot be negative");
        (arc + direction.sign() * distance).clamp(0.0, self.length())
    }

    /// Route-distance between two arc positions on this route (§2). The
    /// paper defines the route-distance between points on *different*
    /// routes as infinite; that case is handled by
    /// [`crate::RouteNetwork::route_distance`].
    #[inline]
    pub fn route_distance(&self, arc0: f64, arc1: f64) -> f64 {
        self.polyline.route_distance(arc0, arc1)
    }

    /// Projects an arbitrary point onto the route, returning
    /// `(arc_distance, euclidean_distance)`.
    #[inline]
    pub fn locate(&self, p: Point) -> (f64, f64) {
        self.polyline.locate(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight() -> Route {
        Route::from_vertices(
            RouteId(1),
            "test",
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        )
        .unwrap()
    }

    #[test]
    fn direction_bits_round_trip() {
        assert_eq!(Direction::from_bit(0), Direction::Forward);
        assert_eq!(Direction::from_bit(1), Direction::Backward);
        assert_eq!(Direction::from_bit(7), Direction::Backward);
        for d in [Direction::Forward, Direction::Backward] {
            assert_eq!(Direction::from_bit(d.to_bit()), d);
        }
    }

    #[test]
    fn advance_forward_and_backward() {
        let r = straight();
        assert_eq!(r.advance(2.0, 3.0, Direction::Forward), 5.0);
        assert_eq!(r.advance(5.0, 3.0, Direction::Backward), 2.0);
    }

    #[test]
    fn advance_clamps_at_ends() {
        let r = straight();
        assert_eq!(r.advance(8.0, 5.0, Direction::Forward), 10.0);
        assert_eq!(r.advance(2.0, 5.0, Direction::Backward), 0.0);
    }

    #[test]
    fn accessors() {
        let r = straight();
        assert_eq!(r.id(), RouteId(1));
        assert_eq!(r.name(), "test");
        assert_eq!(r.length(), 10.0);
        assert_eq!(r.point_at(4.0), Point::new(4.0, 0.0));
        assert_eq!(r.route_distance(2.0, 9.0), 7.0);
        let (arc, dist) = r.locate(Point::new(3.0, 4.0));
        assert_eq!(arc, 3.0);
        assert_eq!(dist, 4.0);
    }
}
