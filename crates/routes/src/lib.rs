//! # modb-routes — the route database
//!
//! The paper (§2) models every moving object as travelling along a route
//! from a stored route database. This crate provides:
//!
//! - [`Route`]: a line spatial object with arc-length addressing and a
//!   travel [`Direction`] (the paper's binary `P.direction`).
//! - [`RouteNetwork`]: the route database, with id lookup, nearest-route
//!   projection (map matching), and the paper's route-distance semantics —
//!   including the infinite cross-route distance that forces an update on
//!   route change (§3.1).
//! - [`generators`]: synthetic grid / radial / winding networks standing in
//!   for real map data (see DESIGN.md, substitution table).

#![warn(missing_docs)]

mod error;
pub mod generators;
mod junctions;
mod network;
mod route;

pub use error::RouteError;
pub use junctions::{find_junctions, Junction};
pub use network::{RouteNetwork, RoutePosition};
pub use route::{Direction, Route, RouteId};
