//! Junction discovery: where routes meet.
//!
//! Route changes (§3.1) happen where routes intersect. This module finds
//! the junctions of a network — the places a moving object can legally
//! switch routes — so journey generators and dispatch logic can plan
//! multi-leg trips.

use modb_geom::{intersection_params, Point, Segment};

use crate::network::RouteNetwork;
use crate::route::RouteId;

/// A point where two routes meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Junction {
    /// One route.
    pub route_a: RouteId,
    /// The other route.
    pub route_b: RouteId,
    /// Arc position of the junction on `route_a`.
    pub arc_a: f64,
    /// Arc position of the junction on `route_b`.
    pub arc_b: f64,
    /// The junction's coordinates.
    pub position: Point,
}

/// Finds all pairwise junctions in a network.
///
/// Runs the segment-intersection predicate over every route pair — an
/// O(R²·S²) preprocessing step run once at network load, not a query-time
/// path. Collinear overlaps report their entry point.
pub fn find_junctions(network: &RouteNetwork) -> Vec<Junction> {
    let routes: Vec<_> = network.iter().collect();
    let mut out = Vec::new();
    for (i, ra) in routes.iter().enumerate() {
        for rb in routes.iter().skip(i + 1) {
            // Broad phase: skip disjoint bounding boxes.
            if !ra.bbox().intersects(&rb.bbox()) {
                continue;
            }
            let cum_a = ra.polyline().cumulative();
            let cum_b = rb.polyline().cumulative();
            for (sa, seg_a) in ra.polyline().segments().enumerate() {
                for (sb, seg_b) in rb.polyline().segments().enumerate() {
                    for t in intersection_params(&seg_a, &seg_b) {
                        let p = seg_a.point_at(t);
                        let arc_a = cum_a[sa] + t * (cum_a[sa + 1] - cum_a[sa]);
                        // Recover the arc on b by projecting p onto seg_b.
                        let u = project_param(&seg_b, p);
                        let arc_b = cum_b[sb] + u * (cum_b[sb + 1] - cum_b[sb]);
                        let junction = Junction {
                            route_a: ra.id(),
                            route_b: rb.id(),
                            arc_a,
                            arc_b,
                            position: p,
                        };
                        // Deduplicate junctions that repeat at shared
                        // segment endpoints.
                        if !out.iter().any(|j: &Junction| {
                            j.route_a == junction.route_a
                                && j.route_b == junction.route_b
                                && j.position.approx_eq(junction.position)
                        }) {
                            out.push(junction);
                        }
                    }
                }
            }
        }
    }
    out
}

fn project_param(seg: &Segment, p: Point) -> f64 {
    seg.project(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid_network;
    use crate::route::Route;

    #[test]
    fn crossing_routes_have_one_junction() {
        let net = RouteNetwork::from_routes([
            Route::from_vertices(
                RouteId(1),
                "h",
                vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            )
            .unwrap(),
            Route::from_vertices(
                RouteId(2),
                "v",
                vec![Point::new(4.0, -5.0), Point::new(4.0, 5.0)],
            )
            .unwrap(),
        ])
        .unwrap();
        let js = find_junctions(&net);
        assert_eq!(js.len(), 1);
        let j = js[0];
        assert!(j.position.approx_eq(Point::new(4.0, 0.0)));
        assert!((j.arc_a - 4.0).abs() < 1e-9);
        assert!((j.arc_b - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_routes_have_none() {
        let net = RouteNetwork::from_routes([
            Route::from_vertices(
                RouteId(1),
                "a",
                vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            )
            .unwrap(),
            Route::from_vertices(
                RouteId(2),
                "b",
                vec![Point::new(0.0, 5.0), Point::new(1.0, 5.0)],
            )
            .unwrap(),
        ])
        .unwrap();
        assert!(find_junctions(&net).is_empty());
    }

    #[test]
    fn grid_has_expected_junction_count() {
        // An n×m grid has n·m street crossings.
        let net = grid_network(4, 3, 1.0, 0).unwrap();
        let js = find_junctions(&net);
        assert_eq!(js.len(), 12, "4 vertical x 3 horizontal crossings");
        // Every junction's position resolves consistently on both routes.
        for j in &js {
            let pa = net.get(j.route_a).unwrap().point_at(j.arc_a);
            let pb = net.get(j.route_b).unwrap().point_at(j.arc_b);
            assert!(pa.approx_eq(j.position));
            assert!(pb.approx_eq(j.position));
        }
    }

    #[test]
    fn bent_route_junctions_on_interior_segments() {
        let net = RouteNetwork::from_routes([
            Route::from_vertices(
                RouteId(1),
                "bent",
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(5.0, 0.0),
                    Point::new(5.0, 5.0),
                ],
            )
            .unwrap(),
            Route::from_vertices(
                RouteId(2),
                "diag",
                vec![Point::new(3.0, -1.0), Point::new(7.0, 3.0)],
            )
            .unwrap(),
        ])
        .unwrap();
        let js = find_junctions(&net);
        // The diagonal crosses the horizontal leg at (4, 0) and the
        // vertical leg at (5, 1).
        assert_eq!(js.len(), 2);
        assert!(js
            .iter()
            .any(|j| j.position.approx_eq(Point::new(4.0, 0.0))));
        assert!(js
            .iter()
            .any(|j| j.position.approx_eq(Point::new(5.0, 1.0))));
    }
}
