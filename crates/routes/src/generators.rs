//! Synthetic route-network generators.
//!
//! The paper evaluates on routes such as metropolitan street grids and
//! highways; lacking the authors' map data, these generators produce the
//! same *class* of geometry — piecewise-linear routes — with controlled
//! parameters (see DESIGN.md §2, substitution table).

use modb_geom::Point;
use rand::Rng;

use crate::error::RouteError;
use crate::network::RouteNetwork;
use crate::route::{Route, RouteId};

/// Generates a Manhattan-style grid: `nx` vertical and `ny` horizontal
/// streets spaced `spacing` miles apart, each street one route.
///
/// Route ids are assigned sequentially starting from `first_id`; horizontal
/// streets come first.
///
/// # Errors
///
/// [`RouteError::InvalidGenerator`] when either dimension is zero or the
/// spacing is not positive.
pub fn grid_network(
    nx: usize,
    ny: usize,
    spacing: f64,
    first_id: u64,
) -> Result<RouteNetwork, RouteError> {
    if nx < 2 || ny < 2 {
        return Err(RouteError::InvalidGenerator(format!(
            "grid needs at least 2×2 streets, got {nx}×{ny}"
        )));
    }
    if spacing <= 0.0 || !spacing.is_finite() {
        return Err(RouteError::InvalidGenerator(format!(
            "grid spacing must be positive, got {spacing}"
        )));
    }
    let width = (nx - 1) as f64 * spacing;
    let height = (ny - 1) as f64 * spacing;
    let mut routes = Vec::with_capacity(nx + ny);
    let mut id = first_id;
    for j in 0..ny {
        let y = j as f64 * spacing;
        routes.push(Route::from_vertices(
            RouteId(id),
            format!("street-h{j}"),
            vec![Point::new(0.0, y), Point::new(width, y)],
        )?);
        id += 1;
    }
    for i in 0..nx {
        let x = i as f64 * spacing;
        routes.push(Route::from_vertices(
            RouteId(id),
            format!("street-v{i}"),
            vec![Point::new(x, 0.0), Point::new(x, height)],
        )?);
        id += 1;
    }
    RouteNetwork::from_routes(routes)
}

/// Generates a radial network: `n_spokes` straight routes from the center
/// outward to `radius`, like highways leaving a city.
///
/// # Errors
///
/// [`RouteError::InvalidGenerator`] for fewer than one spoke or a
/// non-positive radius.
pub fn radial_network(
    center: Point,
    radius: f64,
    n_spokes: usize,
    first_id: u64,
) -> Result<RouteNetwork, RouteError> {
    if n_spokes == 0 {
        return Err(RouteError::InvalidGenerator(
            "radial network needs at least one spoke".into(),
        ));
    }
    if radius <= 0.0 || !radius.is_finite() {
        return Err(RouteError::InvalidGenerator(format!(
            "radial radius must be positive, got {radius}"
        )));
    }
    let mut routes = Vec::with_capacity(n_spokes);
    for k in 0..n_spokes {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / n_spokes as f64;
        let end = Point::new(
            center.x + radius * theta.cos(),
            center.y + radius * theta.sin(),
        );
        routes.push(Route::from_vertices(
            RouteId(first_id + k as u64),
            format!("spoke-{k}"),
            vec![center, end],
        )?);
    }
    RouteNetwork::from_routes(routes)
}

/// Generates a single winding route by a random turning walk: `n_segments`
/// legs of length `step`, each deflecting the heading by a uniform angle in
/// `[-max_turn, max_turn]` radians.
///
/// Winding routes are the paper's §5 motivation for route-relative
/// modelling: on such a route the x/y speed projections fluctuate even at
/// constant road speed, so per-coordinate dead reckoning would update
/// constantly while route-distance modelling does not.
///
/// # Errors
///
/// [`RouteError::InvalidGenerator`] for zero segments or non-positive step.
pub fn winding_route<R: Rng + ?Sized>(
    rng: &mut R,
    id: RouteId,
    start: Point,
    n_segments: usize,
    step: f64,
    max_turn: f64,
) -> Result<Route, RouteError> {
    if n_segments == 0 {
        return Err(RouteError::InvalidGenerator(
            "winding route needs at least one segment".into(),
        ));
    }
    if step <= 0.0 || !step.is_finite() {
        return Err(RouteError::InvalidGenerator(format!(
            "winding step must be positive, got {step}"
        )));
    }
    let mut heading: f64 = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
    let mut pts = Vec::with_capacity(n_segments + 1);
    let mut cur = start;
    pts.push(cur);
    for _ in 0..n_segments {
        heading += rng.gen_range(-max_turn..=max_turn);
        cur = Point::new(cur.x + step * heading.cos(), cur.y + step * heading.sin());
        pts.push(cur);
    }
    Ok(Route::from_vertices(id, "winding", pts)?)
}

/// Generates a network of `n_routes` winding routes with starts spread on a
/// `extent × extent` square, suitable as a fleet's road map.
///
/// # Errors
///
/// Propagates [`winding_route`] configuration errors.
pub fn winding_network<R: Rng + ?Sized>(
    rng: &mut R,
    n_routes: usize,
    n_segments: usize,
    step: f64,
    max_turn: f64,
    extent: f64,
    first_id: u64,
) -> Result<RouteNetwork, RouteError> {
    let mut net = RouteNetwork::new();
    for k in 0..n_routes {
        let start = Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent));
        let r = winding_route(
            rng,
            RouteId(first_id + k as u64),
            start,
            n_segments,
            step,
            max_turn,
        )?;
        net.insert(r)?;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_counts_and_geometry() {
        let n = grid_network(3, 4, 1.0, 0).unwrap();
        assert_eq!(n.len(), 7); // 4 horizontal + 3 vertical
                                // Horizontal street 2 runs at y = 2 with length (nx-1)*spacing = 2.
        let r = n.get(RouteId(2)).unwrap();
        assert_eq!(r.length(), 2.0);
        assert_eq!(r.point_at(0.0), Point::new(0.0, 2.0));
        // Vertical street 0 (id 4) runs at x = 0 with length 3.
        let r = n.get(RouteId(4)).unwrap();
        assert_eq!(r.length(), 3.0);
    }

    #[test]
    fn grid_invalid_configs() {
        assert!(grid_network(1, 3, 1.0, 0).is_err());
        assert!(grid_network(3, 3, 0.0, 0).is_err());
        assert!(grid_network(3, 3, f64::NAN, 0).is_err());
    }

    #[test]
    fn radial_spokes() {
        let n = radial_network(Point::new(1.0, 1.0), 5.0, 8, 100).unwrap();
        assert_eq!(n.len(), 8);
        for id in n.route_ids() {
            let r = n.get(id).unwrap();
            assert!((r.length() - 5.0).abs() < 1e-9);
            assert_eq!(r.point_at(0.0), Point::new(1.0, 1.0));
        }
        assert!(radial_network(Point::ORIGIN, 5.0, 0, 0).is_err());
        assert!(radial_network(Point::ORIGIN, -1.0, 3, 0).is_err());
    }

    #[test]
    fn winding_route_length_and_determinism() {
        let mut rng = StdRng::seed_from_u64(42);
        let r = winding_route(&mut rng, RouteId(0), Point::ORIGIN, 50, 0.25, 0.4).unwrap();
        assert!((r.length() - 50.0 * 0.25).abs() < 1e-9);
        assert_eq!(r.polyline().vertices().len(), 51);

        // Same seed reproduces the same geometry.
        let mut rng2 = StdRng::seed_from_u64(42);
        let r2 = winding_route(&mut rng2, RouteId(0), Point::ORIGIN, 50, 0.25, 0.4).unwrap();
        assert_eq!(r.polyline(), r2.polyline());
    }

    #[test]
    fn winding_invalid_configs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(winding_route(&mut rng, RouteId(0), Point::ORIGIN, 0, 0.25, 0.4).is_err());
        assert!(winding_route(&mut rng, RouteId(0), Point::ORIGIN, 10, -1.0, 0.4).is_err());
    }

    #[test]
    fn winding_network_has_requested_routes() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = winding_network(&mut rng, 5, 20, 0.5, 0.3, 10.0, 0).unwrap();
        assert_eq!(n.len(), 5);
        for id in n.route_ids() {
            assert!((n.get(id).unwrap().length() - 10.0).abs() < 1e-9);
        }
    }
}
