//! Errors for route and network construction and lookup.

use modb_geom::GeomError;
use std::fmt;

use crate::route::RouteId;

/// Errors raised by the route layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The referenced route does not exist in the network.
    UnknownRoute(RouteId),
    /// A route with this id already exists in the network.
    DuplicateRoute(RouteId),
    /// The network contains no routes, so nearest-route queries are
    /// undefined.
    EmptyNetwork,
    /// Underlying geometric failure (degenerate polyline etc.).
    Geom(GeomError),
    /// A generator was asked for an impossible configuration (e.g. a 0×0
    /// grid).
    InvalidGenerator(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnknownRoute(id) => write!(f, "unknown route {id:?}"),
            RouteError::DuplicateRoute(id) => write!(f, "duplicate route {id:?}"),
            RouteError::EmptyNetwork => write!(f, "route network is empty"),
            RouteError::Geom(e) => write!(f, "geometry error: {e}"),
            RouteError::InvalidGenerator(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for RouteError {
    fn from(e: GeomError) -> Self {
        RouteError::Geom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = RouteError::UnknownRoute(RouteId(7));
        assert!(e.to_string().contains("unknown route"));
        let g: RouteError = GeomError::ZeroLength.into();
        assert!(g.source().is_some());
        assert!(RouteError::EmptyNetwork.source().is_none());
    }
}
