//! The route database: a collection of routes with id and spatial lookup.

use std::collections::HashMap;

use modb_geom::{Point, Rect};

use crate::error::RouteError;
use crate::route::{Route, RouteId};

/// A position expressed as (route, arc distance) — how the DBMS addresses
/// points in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePosition {
    /// Which route the point is on.
    pub route: RouteId,
    /// Arc distance from the route's first vertex (miles).
    pub arc: f64,
}

/// The route database of the paper's §2: "the database stores a set of
/// routes".
#[derive(Debug, Clone, Default)]
pub struct RouteNetwork {
    routes: Vec<Route>,
    by_id: HashMap<RouteId, usize>,
}

impl RouteNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        RouteNetwork::default()
    }

    /// Builds a network from routes.
    ///
    /// # Errors
    ///
    /// [`RouteError::DuplicateRoute`] when two routes share an id.
    pub fn from_routes<I: IntoIterator<Item = Route>>(routes: I) -> Result<Self, RouteError> {
        let mut n = RouteNetwork::new();
        for r in routes {
            n.insert(r)?;
        }
        Ok(n)
    }

    /// Adds a route.
    ///
    /// # Errors
    ///
    /// [`RouteError::DuplicateRoute`] when the id is already present.
    pub fn insert(&mut self, route: Route) -> Result<(), RouteError> {
        if self.by_id.contains_key(&route.id()) {
            return Err(RouteError::DuplicateRoute(route.id()));
        }
        self.by_id.insert(route.id(), self.routes.len());
        self.routes.push(route);
        Ok(())
    }

    /// Number of routes.
    #[inline]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when no routes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterator over all routes.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter()
    }

    /// Looks up a route by id.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnknownRoute`] when absent.
    pub fn get(&self, id: RouteId) -> Result<&Route, RouteError> {
        self.by_id
            .get(&id)
            .map(|&i| &self.routes[i])
            .ok_or(RouteError::UnknownRoute(id))
    }

    /// The (x, y) point addressed by a [`RoutePosition`].
    ///
    /// # Errors
    ///
    /// [`RouteError::UnknownRoute`] when the route is absent.
    pub fn resolve(&self, pos: RoutePosition) -> Result<Point, RouteError> {
        Ok(self.get(pos.route)?.point_at(pos.arc))
    }

    /// Route-distance between two route positions (§2): the distance along
    /// the route when both lie on the same route, and infinite otherwise —
    /// "if we define the route distance between two points on different
    /// routes to be infinite, then this will trigger a position update
    /// whenever the object changes routes".
    pub fn route_distance(&self, a: RoutePosition, b: RoutePosition) -> Result<f64, RouteError> {
        if a.route != b.route {
            // Validate both ids so dangling references still surface.
            self.get(a.route)?;
            self.get(b.route)?;
            return Ok(f64::INFINITY);
        }
        Ok(self.get(a.route)?.route_distance(a.arc, b.arc))
    }

    /// The route closest to a free (x, y) point, with the projection:
    /// `(route id, arc distance, euclidean distance)`. Linear scan over
    /// routes — map-matching is a preprocessing step, not a hot path.
    ///
    /// # Errors
    ///
    /// [`RouteError::EmptyNetwork`] when there are no routes.
    pub fn nearest_route(&self, p: Point) -> Result<(RouteId, f64, f64), RouteError> {
        let mut best: Option<(RouteId, f64, f64)> = None;
        for r in &self.routes {
            let (arc, dist) = r.locate(p);
            if best.is_none_or(|(_, _, bd)| dist < bd) {
                best = Some((r.id(), arc, dist));
            }
        }
        best.ok_or(RouteError::EmptyNetwork)
    }

    /// Bounding box of the whole network (empty rect for no routes).
    pub fn bbox(&self) -> Rect {
        self.routes
            .iter()
            .fold(Rect::empty(), |acc, r| acc.union(&r.bbox()))
    }

    /// The ids of all routes, in insertion order.
    pub fn route_ids(&self) -> Vec<RouteId> {
        self.routes.iter().map(|r| r.id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_route_network() -> RouteNetwork {
        RouteNetwork::from_routes([
            Route::from_vertices(
                RouteId(1),
                "horizontal",
                vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            )
            .unwrap(),
            Route::from_vertices(
                RouteId(2),
                "vertical",
                vec![Point::new(5.0, 1.0), Point::new(5.0, 11.0)],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let n = two_route_network();
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
        assert_eq!(n.get(RouteId(1)).unwrap().name(), "horizontal");
        assert!(matches!(
            n.get(RouteId(99)),
            Err(RouteError::UnknownRoute(RouteId(99)))
        ));
        assert_eq!(n.route_ids(), vec![RouteId(1), RouteId(2)]);
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut n = two_route_network();
        let dup = Route::from_vertices(
            RouteId(1),
            "dup",
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
        )
        .unwrap();
        assert!(matches!(
            n.insert(dup),
            Err(RouteError::DuplicateRoute(RouteId(1)))
        ));
    }

    #[test]
    fn resolve_positions() {
        let n = two_route_network();
        let p = n
            .resolve(RoutePosition {
                route: RouteId(2),
                arc: 4.0,
            })
            .unwrap();
        assert_eq!(p, Point::new(5.0, 5.0));
    }

    #[test]
    fn route_distance_same_and_cross_route() {
        let n = two_route_network();
        let a = RoutePosition {
            route: RouteId(1),
            arc: 2.0,
        };
        let b = RoutePosition {
            route: RouteId(1),
            arc: 9.0,
        };
        let c = RoutePosition {
            route: RouteId(2),
            arc: 0.0,
        };
        assert_eq!(n.route_distance(a, b).unwrap(), 7.0);
        assert_eq!(n.route_distance(a, c).unwrap(), f64::INFINITY);
        let dangling = RoutePosition {
            route: RouteId(42),
            arc: 0.0,
        };
        assert!(n.route_distance(a, dangling).is_err());
    }

    #[test]
    fn nearest_route_projection() {
        let n = two_route_network();
        // Closer to the horizontal route.
        let (id, arc, dist) = n.nearest_route(Point::new(3.0, 0.5)).unwrap();
        assert_eq!(id, RouteId(1));
        assert_eq!(arc, 3.0);
        assert_eq!(dist, 0.5);
        // Closer to the vertical route.
        let (id, arc, dist) = n.nearest_route(Point::new(5.2, 6.0)).unwrap();
        assert_eq!(id, RouteId(2));
        assert_eq!(arc, 5.0);
        assert!((dist - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_network_errors() {
        let n = RouteNetwork::new();
        assert!(matches!(
            n.nearest_route(Point::new(0.0, 0.0)),
            Err(RouteError::EmptyNetwork)
        ));
        assert!(n.bbox().is_empty());
    }

    #[test]
    fn bbox_covers_all_routes() {
        let n = two_route_network();
        let b = n.bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(10.0, 11.0));
    }
}
