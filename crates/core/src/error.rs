//! Errors for the moving-objects DBMS.

use modb_geom::GeomError;
use modb_index::IndexError;
use modb_policy::PolicyError;
use modb_routes::RouteError;
use std::fmt;

use crate::object::ObjectId;

/// Errors raised by the DBMS layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The referenced object does not exist.
    UnknownObject(ObjectId),
    /// An object with this id already exists.
    DuplicateObject(ObjectId),
    /// An update message referenced a position off every route (projection
    /// distance above the map-matching tolerance).
    OffRoute {
        /// Distance from the nearest route (miles).
        distance: f64,
        /// Map-matching tolerance (miles).
        tolerance: f64,
    },
    /// An update arrived with a timestamp earlier than the stored one.
    StaleUpdate {
        /// Stored `P.starttime`.
        stored: f64,
        /// The update's timestamp.
        received: f64,
    },
    /// An invalid numeric field in an update or query.
    InvalidField(&'static str, f64),
    /// Route-layer failure.
    Route(RouteError),
    /// Index-layer failure.
    Index(IndexError),
    /// Policy-layer failure.
    Policy(PolicyError),
    /// Geometry failure.
    Geom(GeomError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownObject(id) => write!(f, "unknown object {id:?}"),
            CoreError::DuplicateObject(id) => write!(f, "duplicate object {id:?}"),
            CoreError::OffRoute {
                distance,
                tolerance,
            } => write!(
                f,
                "position is {distance} miles from the nearest route (tolerance {tolerance})"
            ),
            CoreError::StaleUpdate { stored, received } => write!(
                f,
                "stale update: received t={received} but stored starttime is {stored}"
            ),
            CoreError::InvalidField(name, v) => write!(f, "invalid field `{name}`: {v}"),
            CoreError::Route(e) => write!(f, "route error: {e}"),
            CoreError::Index(e) => write!(f, "index error: {e}"),
            CoreError::Policy(e) => write!(f, "policy error: {e}"),
            CoreError::Geom(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Route(e) => Some(e),
            CoreError::Index(e) => Some(e),
            CoreError::Policy(e) => Some(e),
            CoreError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouteError> for CoreError {
    fn from(e: RouteError) -> Self {
        CoreError::Route(e)
    }
}

impl From<IndexError> for CoreError {
    fn from(e: IndexError) -> Self {
        CoreError::Index(e)
    }
}

impl From<PolicyError> for CoreError {
    fn from(e: PolicyError) -> Self {
        CoreError::Policy(e)
    }
}

impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: CoreError = RouteError::EmptyNetwork.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("route error"));
        let e = CoreError::OffRoute {
            distance: 2.0,
            tolerance: 0.5,
        };
        assert!(e.to_string().contains("2 miles"));
        let e = CoreError::StaleUpdate {
            stored: 5.0,
            received: 4.0,
        };
        assert!(e.to_string().contains("t=4"));
        assert!(e.source().is_none());
    }
}
