//! k-nearest-neighbour queries with uncertainty semantics.
//!
//! The paper's dispatch scenario ("retrieve the free cabs that are
//! currently within 1 mile…", §1) naturally extends to *nearest-cab*
//! queries. Because every position answer carries a deviation bound, the
//! distance from a query point to an object is an **interval**
//! `[d − B, d + B]` around the database-position distance `d`. An object
//! is a *certain* top-k member when its pessimistic distance (`d + B`)
//! beats the optimistic distance (`d − B`) of every non-candidate; it is
//! a *possible* member when its optimistic distance beats at least one
//! candidate's pessimistic distance.

use modb_geom::Point;

use crate::database::Database;
use crate::error::CoreError;
use crate::object::ObjectId;

/// One ranked neighbour.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbour {
    /// The object.
    pub id: ObjectId,
    /// Euclidean distance from the query point to the *database position*.
    pub distance: f64,
    /// The object's deviation bound at query time.
    pub bound: f64,
    /// Whether the object is certainly in the top-k (`true`) or only
    /// possibly (`false`).
    pub certain: bool,
}

impl Neighbour {
    /// Smallest possible true distance.
    pub fn optimistic(&self) -> f64 {
        (self.distance - self.bound).max(0.0)
    }

    /// Largest possible true distance.
    pub fn pessimistic(&self) -> f64 {
        self.distance + self.bound
    }
}

/// Answer to a k-NN query: the `k` nearest by database position, each
/// flagged certain/possible, plus trailing objects that *may* still
/// belong to the true top-k because their optimistic distance undercuts a
/// ranked object's pessimistic distance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NearestAnswer {
    /// The k nearest by database-position distance, ascending.
    pub ranked: Vec<Neighbour>,
    /// Unranked objects that may displace a ranked one.
    pub contenders: Vec<Neighbour>,
}

impl NearestAnswer {
    /// Runs the top-k selection over a full set of distance intervals:
    /// sort by `(distance, id)`, rank the first `k`, keep trailing
    /// objects whose optimistic distance undercuts a ranked object's
    /// pessimistic distance as contenders, and mark a ranked object
    /// certain iff its pessimistic distance is at most the optimistic
    /// distance of every unranked object. Incoming `certain` flags are
    /// ignored (recomputed).
    ///
    /// This is the whole of [`Database::nearest`] after the position
    /// scan — factored out so a scatter-gather router can pool every
    /// shard's neighbours and re-run the selection globally: the
    /// certain/contender classification needs the *minimum* optimistic
    /// distance over all non-ranked objects, which no single shard's
    /// top-k can supply.
    pub fn from_neighbours(mut all: Vec<Neighbour>, k: usize) -> NearestAnswer {
        for n in &mut all {
            n.certain = false;
        }
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("distances are finite")
                .then_with(|| a.id.cmp(&b.id))
        });
        let split = k.min(all.len());
        let (ranked_slice, rest) = all.split_at(split);
        let mut ranked = ranked_slice.to_vec();
        let contenders: Vec<Neighbour> = if ranked.is_empty() {
            Vec::new()
        } else {
            // A trailing object contends when its optimistic distance is
            // within some ranked object's pessimistic distance.
            let worst_ranked_pessimistic = ranked
                .iter()
                .map(|n| n.pessimistic())
                .fold(f64::NEG_INFINITY, f64::max);
            rest.iter()
                .filter(|n| n.optimistic() < worst_ranked_pessimistic)
                .cloned()
                .collect()
        };
        // A ranked object is certain when no contender (nor a
        // lower-ranked member) could optimistically beat its pessimistic
        // distance... conservatively: certain iff its pessimistic distance
        // is at most the optimistic distance of every object outside the
        // ranked set.
        let min_outside_optimistic = rest
            .iter()
            .map(|n| n.optimistic())
            .fold(f64::INFINITY, f64::min);
        for n in &mut ranked {
            n.certain = n.pessimistic() <= min_outside_optimistic;
        }
        NearestAnswer { ranked, contenders }
    }
}

impl Database {
    /// The `k` moving objects nearest to `center` at time `t`, with
    /// certain/possible classification (see module docs).
    ///
    /// Evaluation is a scan over database positions — k-NN has no o-plane
    /// filter (a nearest query has no fixed region) and fleet sizes up to
    /// ~10⁵ scan in microseconds; an incremental-expansion index search is
    /// an optimisation left documented in DESIGN.md.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidField`] for `k = 0`; route resolution errors
    /// propagate.
    pub fn nearest(&self, center: Point, k: usize, t: f64) -> Result<NearestAnswer, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidField("k", 0.0));
        }
        let mut all: Vec<Neighbour> = Vec::with_capacity(self.moving_count());
        for id in self.moving_ids().collect::<Vec<_>>() {
            let ans = self.position_of(id, t)?;
            all.push(Neighbour {
                id,
                distance: ans.position.distance(center),
                bound: ans.bound,
                certain: false,
            });
        }
        Ok(NearestAnswer::from_neighbours(all, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{PolicyDescriptor, PositionAttribute};
    use crate::database::{DatabaseConfig, MovingObject};
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn db_with_objects(objs: &[(u64, f64, f64)]) -> Database {
        // (id, arc, bound-ish) on one straight route; FixedBound policies
        // make the bounds exact and controllable.
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap();
        let mut db = Database::new(
            RouteNetwork::from_routes([route]).unwrap(),
            DatabaseConfig::default(),
        );
        for &(id, arc, bound) in objs {
            db.register_moving(MovingObject {
                id: ObjectId(id),
                name: format!("veh-{id}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(arc, 0.0),
                    start_arc: arc,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::FixedBound { bound },
                },
                max_speed: 2.0,
                trip_end: None,
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn ranks_by_database_distance() {
        // At t = 1 (speed 1): positions 11, 31, 61.
        let db = db_with_objects(&[(1, 10.0, 0.1), (2, 30.0, 0.1), (3, 60.0, 0.1)]);
        let a = db.nearest(Point::new(0.0, 0.0), 2, 1.0).unwrap();
        assert_eq!(a.ranked.len(), 2);
        assert_eq!(a.ranked[0].id, ObjectId(1));
        assert_eq!(a.ranked[1].id, ObjectId(2));
        assert!((a.ranked[0].distance - 11.0).abs() < 1e-9);
        // Bounds are tiny: both certain, no contenders.
        assert!(a.ranked.iter().all(|n| n.certain));
        assert!(a.contenders.is_empty());
    }

    #[test]
    fn large_bounds_create_contenders_and_uncertainty() {
        // Positions at t=0: 10, 12, 14 — with ±3-mile kinematic-capped
        // bounds at t→∞; at t = 10 the FixedBound caps them at 3.
        let db = db_with_objects(&[(1, 10.0, 3.0), (2, 12.0, 3.0), (3, 14.0, 3.0)]);
        let a = db.nearest(Point::new(0.0, 0.0), 1, 10.0).unwrap();
        assert_eq!(a.ranked.len(), 1);
        assert_eq!(a.ranked[0].id, ObjectId(1));
        // Object 2's optimistic distance (22−3=19) < object 1's
        // pessimistic (20+3=23): rank is uncertain and 2 contends.
        assert!(!a.ranked[0].certain);
        assert!(a.contenders.iter().any(|n| n.id == ObjectId(2)));
    }

    #[test]
    fn k_larger_than_fleet() {
        let db = db_with_objects(&[(1, 10.0, 0.5)]);
        let a = db.nearest(Point::new(0.0, 0.0), 5, 0.0).unwrap();
        assert_eq!(a.ranked.len(), 1);
        assert!(a.contenders.is_empty());
        assert!(a.ranked[0].certain, "sole object is trivially certain");
    }

    #[test]
    fn k_zero_rejected_and_empty_db() {
        let db = db_with_objects(&[]);
        assert!(db.nearest(Point::new(0.0, 0.0), 0, 0.0).is_err());
        let a = db.nearest(Point::new(0.0, 0.0), 3, 0.0).unwrap();
        assert!(a.ranked.is_empty() && a.contenders.is_empty());
    }

    /// The factored-out selection is insensitive to input order and to
    /// stale incoming `certain` flags — the property a scatter-gather
    /// router relies on when pooling per-shard neighbour sets.
    #[test]
    fn from_neighbours_is_order_insensitive() {
        let mk = |id: u64, d: f64, b: f64, certain: bool| Neighbour {
            id: ObjectId(id),
            distance: d,
            bound: b,
            certain,
        };
        let a = vec![
            mk(1, 5.0, 1.0, false),
            mk(2, 6.0, 2.0, false),
            mk(3, 20.0, 0.5, false),
            mk(4, 5.0, 0.1, false),
        ];
        let mut b = a.clone();
        b.reverse();
        for n in &mut b {
            n.certain = true; // stale per-shard flags must be recomputed
        }
        let ans_a = NearestAnswer::from_neighbours(a, 2);
        let ans_b = NearestAnswer::from_neighbours(b, 2);
        assert_eq!(ans_a, ans_b);
        // Equal distances break ties by id: 1 and 4 both sit at 5.0, so
        // 1 ranks first.
        assert_eq!(ans_a.ranked[0].id, ObjectId(1));
        assert_eq!(ans_a.ranked[1].id, ObjectId(4));
    }

    #[test]
    fn optimistic_distance_clamps_at_zero() {
        let n = Neighbour {
            id: ObjectId(1),
            distance: 0.5,
            bound: 2.0,
            certain: false,
        };
        assert_eq!(n.optimistic(), 0.0);
        assert_eq!(n.pessimistic(), 2.5);
    }

    /// Soundness against ground truth: drawing each object's actual
    /// position anywhere in its uncertainty interval never lets a
    /// non-(ranked ∪ contender) object enter the true top-k.
    #[test]
    fn certain_and_contender_semantics_sound() {
        let objs: Vec<(u64, f64, f64)> = (0..12).map(|i| (i, 5.0 + 7.0 * i as f64, 2.0)).collect();
        let db = db_with_objects(&objs);
        let t = 10.0;
        let k = 3;
        let center = Point::new(0.0, 0.0);
        let a = db.nearest(center, k, t).unwrap();
        let in_answer: Vec<ObjectId> = a
            .ranked
            .iter()
            .chain(a.contenders.iter())
            .map(|n| n.id)
            .collect();
        // Adversarial truth: everyone in the answer set is as far as
        // possible, everyone outside as near as possible. Even then, the
        // true top-k must be within the answer set.
        let mut adversarial: Vec<(ObjectId, f64)> = Vec::new();
        for id in db.moving_ids().collect::<Vec<_>>() {
            let ans = db.position_of(id, t).unwrap();
            let d = ans.position.distance(center);
            let truth = if in_answer.contains(&id) {
                d + ans.bound
            } else {
                (d - ans.bound).max(0.0)
            };
            adversarial.push((id, truth));
        }
        adversarial.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
        for (id, _) in adversarial.iter().take(k) {
            assert!(
                in_answer.contains(id),
                "true top-{k} member {id:?} missing from ranked ∪ contenders"
            );
        }
    }
}
