//! Position-update messages (§3.1).
//!
//! "A position update … consists of values for at least the subattributes
//! P.starttime, P.speed, P.x.startposition and P.y.startposition. If
//! during the trip the object changes its route, then it sends a position
//! update message that includes the identification of the new route."
//! Each update may also change the policy (§3.1: "each position update may
//! change the policy").

use modb_geom::Point;
use modb_routes::{Direction, RouteId};

use crate::attr::PolicyDescriptor;

/// How the update expresses the object's position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdatePosition {
    /// Arc distance along the (current or new) route — what an onboard
    /// computer that tracks its route natively sends.
    Arc(f64),
    /// Raw (x, y) coordinates (e.g. a GPS fix); the DBMS map-matches them
    /// to the route.
    Coordinates(Point),
}

/// A position-update message from a moving object to the database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMessage {
    /// Update timestamp — becomes `P.starttime`.
    pub time: f64,
    /// The reported position — becomes the start-position sub-attributes.
    pub position: UpdatePosition,
    /// Declared speed — becomes `P.speed`.
    pub speed: f64,
    /// New route, when the object changed routes (`None` keeps the stored
    /// route).
    pub route: Option<RouteId>,
    /// New travel direction (`None` keeps the stored direction).
    pub direction: Option<Direction>,
    /// New policy (`None` keeps the stored policy).
    pub policy: Option<PolicyDescriptor>,
}

impl UpdateMessage {
    /// A plain mid-trip update: position and speed only.
    pub fn basic(time: f64, position: UpdatePosition, speed: f64) -> Self {
        UpdateMessage {
            time,
            position,
            speed,
            route: None,
            direction: None,
            policy: None,
        }
    }

    /// A route-change update (§3.1): new route, position on it, direction.
    pub fn route_change(
        time: f64,
        route: RouteId,
        position: UpdatePosition,
        direction: Direction,
        speed: f64,
    ) -> Self {
        UpdateMessage {
            time,
            position,
            speed,
            route: Some(route),
            direction: Some(direction),
            policy: None,
        }
    }

    /// Returns a copy that also switches the update policy.
    pub fn with_policy(mut self, policy: PolicyDescriptor) -> Self {
        self.policy = Some(policy);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = UpdateMessage::basic(5.0, UpdatePosition::Arc(12.0), 0.8);
        assert_eq!(u.time, 5.0);
        assert!(u.route.is_none() && u.direction.is_none() && u.policy.is_none());

        let rc = UpdateMessage::route_change(
            6.0,
            RouteId(3),
            UpdatePosition::Coordinates(Point::new(1.0, 2.0)),
            Direction::Backward,
            0.5,
        );
        assert_eq!(rc.route, Some(RouteId(3)));
        assert_eq!(rc.direction, Some(Direction::Backward));

        let p = u.with_policy(PolicyDescriptor::Unbounded);
        assert_eq!(p.policy, Some(PolicyDescriptor::Unbounded));
    }
}
