//! The position attribute (§2): the seven sub-attributes of a mobile
//! point object, plus the policy descriptor the DBMS derives bounds from.

use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, RouteId};

/// What the DBMS knows about an object's update policy (`P.policy`) —
/// enough to bound the deviation at any time (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyDescriptor {
    /// One of the paper's cost-based policies (dl / ail / cil): bounds
    /// come from Propositions 2–4 with the policy's update cost `C`.
    CostBased {
        /// Delayed (dl) or immediate (ail/cil) bound family.
        kind: BoundKind,
        /// The update cost `C`.
        update_cost: f64,
    },
    /// A fixed a-priori deviation bound `B` (dead reckoning, §6's
    /// alternative; also the traditional method with its drift tolerance).
    FixedBound {
        /// The bound `B` in miles.
        bound: f64,
    },
    /// No usable bound information (e.g. a purely periodic updater): the
    /// DBMS falls back to the kinematic envelope `D·t`,
    /// `D = max{v, V − v}`.
    Unbounded,
}

impl PolicyDescriptor {
    /// The DBMS-side deviation bound at `t` minutes after the last update,
    /// for declared speed `v` and maximum speed `v_max`.
    pub fn deviation_bound(&self, v: f64, v_max: f64, t: f64) -> f64 {
        let t = t.max(0.0);
        match *self {
            PolicyDescriptor::CostBased { kind, update_cost } => {
                modb_policy::combined_bound(kind, v, v_max, update_cost, t)
            }
            PolicyDescriptor::FixedBound { bound } => {
                // The deviation also cannot outrun kinematics.
                let d = v.max((v_max - v).max(0.0));
                bound.min(d * t)
            }
            PolicyDescriptor::Unbounded => {
                let d = v.max((v_max - v).max(0.0));
                d * t
            }
        }
    }

    /// Slow/fast split of the bound, for uncertainty-interval geometry:
    /// returns `(BS(t), BF(t))`.
    pub fn bounds_split(&self, v: f64, v_max: f64, t: f64) -> (f64, f64) {
        let t = t.max(0.0);
        match *self {
            PolicyDescriptor::CostBased { kind, update_cost } => (
                modb_policy::slow_bound(kind, v, update_cost, t),
                modb_policy::fast_bound(kind, v, v_max, update_cost, t),
            ),
            PolicyDescriptor::FixedBound { bound } => {
                ((v * t).min(bound), ((v_max - v).max(0.0) * t).min(bound))
            }
            PolicyDescriptor::Unbounded => (v * t, (v_max - v).max(0.0) * t),
        }
    }

    /// `true` when the object can be indexed with an o-plane (cost-based
    /// policies only; others are answered by exact scan).
    pub fn is_cost_based(&self) -> bool {
        matches!(self, PolicyDescriptor::CostBased { .. })
    }
}

/// The position attribute of a mobile point object — the paper's seven
/// sub-attributes (§2).
#[derive(Debug, Clone, PartialEq)]
pub struct PositionAttribute {
    /// `P.starttime` — time of the last position update.
    pub start_time: f64,
    /// `P.route` — pointer into the route database.
    pub route: RouteId,
    /// `P.x.startposition`, `P.y.startposition` — the position at
    /// `start_time`.
    pub start_position: Point,
    /// The same start position in arc coordinates on `route` (derived at
    /// update time; stored to avoid re-projection on every query).
    pub start_arc: f64,
    /// `P.direction` — travel direction along the route.
    pub direction: Direction,
    /// `P.speed` — declared speed (miles/minute).
    pub speed: f64,
    /// `P.policy` — the update policy in force.
    pub policy: PolicyDescriptor,
}

impl PositionAttribute {
    /// The database position in arc coordinates at time `t` (§2): the
    /// point at route-distance `speed · (t − start_time)` from the start
    /// position, clamped into the route. Queries before `start_time`
    /// answer at `start_time` (the update is the earliest knowledge).
    pub fn database_arc(&self, route_len: f64, t: f64) -> f64 {
        let elapsed = (t - self.start_time).max(0.0);
        let delta = self.direction.sign() * self.speed * elapsed;
        (self.start_arc + delta).clamp(0.0, route_len)
    }

    /// The DBMS-side uncertainty interval in arc coordinates at time `t`:
    /// the stretch of route the object can possibly be on (§4.1.1),
    /// clamped into the route.
    pub fn uncertainty_arcs(&self, route_len: f64, v_max: f64, t: f64) -> (f64, f64) {
        let elapsed = (t - self.start_time).max(0.0);
        let (bs, bf) = self.policy.bounds_split(self.speed, v_max, elapsed);
        let nominal = self.speed * elapsed;
        let l = (nominal - bs).max(0.0);
        let u = nominal + bf;
        match self.direction {
            Direction::Forward => (
                (self.start_arc + l).clamp(0.0, route_len),
                (self.start_arc + u).clamp(0.0, route_len),
            ),
            Direction::Backward => (
                (self.start_arc - u).clamp(0.0, route_len),
                (self.start_arc - l).clamp(0.0, route_len),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(policy: PolicyDescriptor) -> PositionAttribute {
        PositionAttribute {
            start_time: 10.0,
            route: RouteId(1),
            start_position: Point::new(0.0, 0.0),
            start_arc: 20.0,
            direction: Direction::Forward,
            speed: 1.0,
            policy,
        }
    }

    const CB: PolicyDescriptor = PolicyDescriptor::CostBased {
        kind: BoundKind::Delayed,
        update_cost: 5.0,
    };

    #[test]
    fn database_arc_extrapolates_and_clamps() {
        let a = attr(CB);
        assert_eq!(a.database_arc(100.0, 10.0), 20.0);
        assert_eq!(a.database_arc(100.0, 15.0), 25.0);
        assert_eq!(a.database_arc(100.0, 500.0), 100.0);
        // Before the update: stays at the start.
        assert_eq!(a.database_arc(100.0, 0.0), 20.0);
        // Backward direction.
        let mut b = attr(CB);
        b.direction = Direction::Backward;
        assert_eq!(b.database_arc(100.0, 15.0), 15.0);
        assert_eq!(b.database_arc(100.0, 500.0), 0.0);
    }

    #[test]
    fn cost_based_bound_matches_policy_crate() {
        let a = attr(CB);
        let t = 14.0; // 4 minutes after the update
        let expected = modb_policy::combined_bound(BoundKind::Delayed, 1.0, 1.5, 5.0, 4.0);
        assert_eq!(a.policy.deviation_bound(1.0, 1.5, 4.0), expected);
        let (lo, hi) = a.uncertainty_arcs(100.0, 1.5, t);
        assert!(lo <= a.database_arc(100.0, t));
        assert!(hi >= a.database_arc(100.0, t));
    }

    #[test]
    fn fixed_bound_caps_and_kinematics() {
        let p = PolicyDescriptor::FixedBound { bound: 2.0 };
        // Early on, kinematics is tighter than B.
        assert_eq!(p.deviation_bound(1.0, 1.5, 1.0), 1.0);
        // Later, B caps it.
        assert_eq!(p.deviation_bound(1.0, 1.5, 10.0), 2.0);
        let (bs, bf) = p.bounds_split(1.0, 1.5, 10.0);
        assert_eq!(bs, 2.0);
        assert_eq!(bf, 2.0);
        assert!(!p.is_cost_based());
    }

    #[test]
    fn unbounded_grows_linearly() {
        let p = PolicyDescriptor::Unbounded;
        assert_eq!(p.deviation_bound(1.0, 1.5, 3.0), 3.0);
        assert_eq!(p.deviation_bound(0.2, 1.5, 3.0), 1.3 * 3.0);
        assert!(!p.is_cost_based());
        assert!(CB.is_cost_based());
    }

    #[test]
    fn uncertainty_interval_clamps_to_route() {
        let a = attr(CB);
        let (lo, hi) = a.uncertainty_arcs(26.0, 1.5, 20.0);
        assert!(lo >= 0.0);
        assert_eq!(hi, 26.0);
        assert!(lo <= hi);
    }
}
