//! # modb-core — the moving-objects DBMS
//!
//! Ties the workspace together into the database system of Wolfson et al.
//! (ICDE 1998):
//!
//! - [`PositionAttribute`]: the seven sub-attributes of §2, with the
//!   database-position semantics (extrapolation along the route at the
//!   declared speed).
//! - [`PolicyDescriptor`]: what `P.policy` tells the DBMS — enough to
//!   bound the deviation at any time (§3.3).
//! - [`Database`]: update ingestion (§3.1 position updates, route
//!   changes, policy changes), the §4.2 index maintenance, and query
//!   processing — position-with-bound queries, polygon range queries with
//!   may/must semantics (Theorems 5–6), and within-distance queries for
//!   both stationary and moving anchors (§1's taxi and trucking queries).
//!
//! Index-backed range queries and exhaustive-scan range queries return
//! identical answers; the benchmarks measure the sublinearity gap.
//!
//! The database is also a *versioned store*: every mutation is recorded
//! in a bounded change log, and subscribers holding a [`ChangeCursor`]
//! pull a stale copy forward in O(changes) with
//! [`Database::sync_from`] — the mechanism behind the epoch publisher
//! and pause-free snapshots in `modb-server`.

#![warn(missing_docs)]

mod attr;
mod changes;
mod database;
mod error;
mod history;
mod nearest;
mod object;
mod query;
mod route_distance_query;
mod update;

pub use attr::{PolicyDescriptor, PositionAttribute};
pub use changes::{Change, ChangeCursor, SyncReport};
pub use database::{Database, DatabaseConfig, MovingObject};
// Band types ride inside `DatabaseConfig`; re-exported so downstream
// crates (wal codec, server stats) need not depend on modb-index.
pub use error::CoreError;
pub use history::AttributeHistory;
pub use modb_index::{BandConfig, BandSpec, BandStats, MAX_BANDS};
pub use nearest::{NearestAnswer, Neighbour};
pub use object::{ObjectId, StationaryObject};
pub use query::{Containment, PositionAnswer, RangeAnswer};
pub use update::{UpdateMessage, UpdatePosition};
