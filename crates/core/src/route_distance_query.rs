//! Route-distance within queries.
//!
//! The paper defines distance between points *along routes* (§2), and its
//! trucking query ("retrieve the trucks that are currently within 1 mile
//! of truck ABT312") is most useful with road distance — a truck across a
//! river is no help. This module adds within-*route*-distance queries:
//! same-route arc distance, with the §2 convention that the distance
//! between points on different routes is infinite.

use crate::database::Database;
use crate::error::CoreError;
use crate::object::ObjectId;
use crate::query::{Containment, RangeAnswer};

impl Database {
    /// "Retrieve the objects currently within `radius` *route*-miles of
    /// moving object `target`" — the trucking query under the paper's
    /// route-distance metric (§2): objects on a different route are at
    /// infinite distance and never qualify.
    ///
    /// Uncertainty handling mirrors the Euclidean variant: with the
    /// target's bound `B_t` and a candidate's bound `B_c`, the candidate
    /// *must* qualify when the pessimistic separation
    /// `|d| + B_t + B_c ≤ radius`, and *may* qualify when the optimistic
    /// separation `|d| − B_t − B_c ≤ radius`, where `d` is the arc
    /// distance between database positions.
    ///
    /// # Errors
    ///
    /// Unknown target, invalid radius; route resolution errors propagate.
    pub fn within_route_distance_of_object(
        &self,
        target: ObjectId,
        radius: f64,
        t: f64,
    ) -> Result<RangeAnswer, CoreError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(CoreError::InvalidField("radius", radius));
        }
        let target_obj = self.moving(target)?;
        let target_route = target_obj.attr.route;
        let target_ans = self.position_of(target, t)?;
        let mut answer = RangeAnswer::default();
        for id in self.moving_ids().collect::<Vec<_>>() {
            if id == target {
                continue;
            }
            let obj = self.moving(id)?;
            if obj.attr.route != target_route {
                continue; // infinite route distance (§2)
            }
            answer.candidates += 1;
            let ans = self.position_of(id, t)?;
            let d = (ans.arc - target_ans.arc).abs();
            let slack = target_ans.bound + ans.bound;
            let classification = if d + slack <= radius {
                Some(Containment::Must)
            } else if d - slack <= radius {
                Some(Containment::May)
            } else {
                None
            };
            match classification {
                Some(Containment::Must) => answer.must.push(id),
                Some(Containment::May) => answer.may.push(id),
                None => {}
            }
        }
        answer.normalize();
        Ok(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{PolicyDescriptor, PositionAttribute};
    use crate::database::{DatabaseConfig, MovingObject};
    use modb_geom::Point;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn db() -> Database {
        // Two routes that pass very near each other in Euclidean space:
        // route distance still separates them.
        let net = RouteNetwork::from_routes([
            Route::from_vertices(
                RouteId(1),
                "north-bank",
                vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            )
            .unwrap(),
            Route::from_vertices(
                RouteId(2),
                "south-bank",
                vec![Point::new(0.0, 0.2), Point::new(100.0, 0.2)],
            )
            .unwrap(),
        ])
        .unwrap();
        let mut db = Database::new(net, DatabaseConfig::default());
        let add = |db: &mut Database, id: u64, route: u64, arc: f64, bound: f64| {
            db.register_moving(MovingObject {
                id: ObjectId(id),
                name: format!("truck-{id}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(route),
                    start_position: Point::new(arc, if route == 1 { 0.0 } else { 0.2 }),
                    start_arc: arc,
                    direction: Direction::Forward,
                    speed: 0.0,
                    policy: PolicyDescriptor::FixedBound { bound },
                },
                max_speed: 1.0,
                trip_end: None,
            })
            .unwrap();
        };
        add(&mut db, 1, 1, 50.0, 0.1); // the target
        add(&mut db, 2, 1, 52.0, 0.1); // 2 route-miles away: must (≤3)
        add(&mut db, 3, 1, 52.9, 0.1); // 2.9 away, slack 0.4 at t→∞: may
        add(&mut db, 4, 1, 70.0, 0.1); // far: excluded
        add(&mut db, 5, 2, 50.0, 0.1); // Euclidean-near but other route
        db
    }

    #[test]
    fn route_distance_semantics() {
        let d = db();
        // t = 10: fixed bounds are fully in force (kinematic cap passed).
        let a = d
            .within_route_distance_of_object(ObjectId(1), 3.0, 10.0)
            .unwrap();
        assert_eq!(a.must, vec![ObjectId(2)]);
        assert_eq!(a.may, vec![ObjectId(3)]);
        assert!(!a.all().contains(&ObjectId(4)));
        // The cross-river truck is Euclidean-adjacent (0.2 mi!) but at
        // infinite route distance.
        assert!(!a.all().contains(&ObjectId(5)));
        // Contrast: the Euclidean query happily returns it.
        let e = d.within_distance_of_object(ObjectId(1), 3.0, 10.0).unwrap();
        assert!(e.all().contains(&ObjectId(5)));
    }

    #[test]
    fn validation_and_unknown_target() {
        let d = db();
        assert!(d
            .within_route_distance_of_object(ObjectId(1), 0.0, 0.0)
            .is_err());
        assert!(d
            .within_route_distance_of_object(ObjectId(99), 1.0, 0.0)
            .is_err());
    }

    #[test]
    fn target_excluded_from_answer() {
        let d = db();
        let a = d
            .within_route_distance_of_object(ObjectId(1), 50.0, 10.0)
            .unwrap();
        assert!(!a.all().contains(&ObjectId(1)));
    }
}
