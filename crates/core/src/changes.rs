//! Change tracking for the versioned store: an epoch-stamped log of
//! which objects a [`Database`](crate::Database) mutated, drained by
//! subscribers through a cursor.
//!
//! Every mutation appends one [`Change`] naming the touched object (not
//! the mutation payload — subscribers copy the object's *current* state
//! from the source, so entries are idempotent and order-insensitive
//! within a drain). A subscriber holds a [`ChangeCursor`] and
//! periodically asks for everything recorded since; if it waited so long
//! that the bounded log already evicted entries it needs, it gets `None`
//! and falls back to a full copy. This one mechanism feeds the epoch
//! publisher, the pause-free WAL snapshot path, and (by design) future
//! replication followers.

use std::collections::VecDeque;

use crate::object::ObjectId;
use modb_routes::RouteId;

/// One recorded mutation: the identity of what changed, not how.
///
/// A [`Change::Moving`] entry covers registration, position updates
/// (including the history append they imply), and removal alike — the
/// subscriber resolves it by copying the object's current state from the
/// source (absence in the source means "remove").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Change {
    /// A moving object was registered, updated, or removed.
    Moving(ObjectId),
    /// A stationary landmark was inserted.
    Stationary(ObjectId),
    /// A route was appended to the network.
    Route(RouteId),
}

/// An opaque position in a database's change log.
///
/// Cursors are only meaningful against the database instance (or its
/// full clones) they were taken from; [`ChangeLog::since`] answers `None`
/// for a cursor it cannot serve, which subscribers treat as "resync".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChangeCursor {
    pub(crate) seq: u64,
}

impl ChangeCursor {
    /// The cursor's raw sequence number, for diagnostics and logs.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Bounded FIFO of recorded changes with monotonically increasing
/// sequence numbers. Entry `i` of `entries` has sequence `tail + i`;
/// `head` is the sequence the next recorded change will take.
#[derive(Debug, Clone)]
pub(crate) struct ChangeLog {
    entries: VecDeque<Change>,
    head: u64,
    capacity: usize,
}

impl ChangeLog {
    pub(crate) fn new(capacity: usize) -> Self {
        ChangeLog {
            entries: VecDeque::new(),
            head: 0,
            capacity,
        }
    }

    /// Appends a change, evicting the oldest entry when full. With
    /// capacity 0 nothing is retained but the sequence still advances,
    /// so subscribers always resync — useful to disable the mechanism
    /// without changing its observable contract.
    pub(crate) fn record(&mut self, change: Change) {
        if self.capacity > 0 {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back(change);
        }
        self.head += 1;
    }

    /// The cursor one past the newest recorded change.
    pub(crate) fn cursor(&self) -> ChangeCursor {
        ChangeCursor { seq: self.head }
    }

    fn tail(&self) -> u64 {
        self.head - self.entries.len() as u64
    }

    /// Changes recorded at or after `cursor`, oldest first. `None` when
    /// the log cannot serve the cursor — entries were evicted, or the
    /// cursor belongs to a log that ran ahead of this one.
    pub(crate) fn since(&self, cursor: ChangeCursor) -> Option<impl Iterator<Item = Change> + '_> {
        if cursor.seq > self.head || cursor.seq < self.tail() {
            return None;
        }
        let skip = (cursor.seq - self.tail()) as usize;
        Some(self.entries.iter().skip(skip).copied())
    }
}

/// What [`Database::sync_from`](crate::Database::sync_from) did: the
/// cursor to resume from next time, and how the delta was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Resume cursor — the source's head at the moment of the sync.
    pub cursor: ChangeCursor,
    /// `true` when the delta could not be served (first sync, or the
    /// cursor was evicted) and the target was rebuilt by full clone.
    pub full_resync: bool,
    /// Distinct objects/routes copied when the delta path was taken
    /// (0 on a full resync).
    pub applied: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: u64) -> Change {
        Change::Moving(ObjectId(id))
    }

    #[test]
    fn cursor_drains_in_order() {
        let mut log = ChangeLog::new(8);
        let start = log.cursor();
        log.record(m(1));
        log.record(Change::Stationary(ObjectId(2)));
        log.record(Change::Route(RouteId(3)));
        let drained: Vec<Change> = log.since(start).unwrap().collect();
        assert_eq!(
            drained,
            vec![
                m(1),
                Change::Stationary(ObjectId(2)),
                Change::Route(RouteId(3))
            ]
        );
        // Draining from the new head yields nothing.
        let head = log.cursor();
        assert_eq!(log.since(head).unwrap().count(), 0);
    }

    #[test]
    fn eviction_invalidates_old_cursors() {
        let mut log = ChangeLog::new(2);
        let start = log.cursor();
        log.record(m(1));
        log.record(m(2));
        assert_eq!(log.since(start).unwrap().count(), 2);
        log.record(m(3)); // evicts m(1)
        assert!(log.since(start).is_none(), "evicted range is unservable");
        let mid = ChangeCursor { seq: 1 };
        assert_eq!(
            log.since(mid).unwrap().collect::<Vec<_>>(),
            vec![m(2), m(3)]
        );
    }

    #[test]
    fn zero_capacity_always_resyncs() {
        let mut log = ChangeLog::new(0);
        let start = log.cursor();
        assert_eq!(
            log.since(start).unwrap().count(),
            0,
            "empty head is servable"
        );
        log.record(m(1));
        assert!(log.since(start).is_none());
        assert_eq!(log.cursor().seq(), 1, "sequence still advances");
    }

    #[test]
    fn foreign_cursor_ahead_of_head_is_unservable() {
        let log = ChangeLog::new(4);
        assert!(log.since(ChangeCursor { seq: 10 }).is_none());
    }
}
