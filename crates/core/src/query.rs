//! Query answers: position-with-bound and may/must range results.

use modb_geom::Point;
use modb_index::SearchStats;

use crate::object::ObjectId;

/// Answer to "what is the current position of m?" (§3): the database
/// position plus the paper's error bound and uncertainty interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionAnswer {
    /// The database position resolved to coordinates.
    pub position: Point,
    /// The database position in arc coordinates on the object's route.
    pub arc: f64,
    /// Bound `B` on the deviation: "the actual position of m may deviate
    /// from the position returned by the DBMS by at most B".
    pub bound: f64,
    /// The uncertainty interval `[l, u]` in arc coordinates (§4.1.1).
    pub interval: (f64, f64),
    /// The uncertainty interval as route geometry (endpoints plus interior
    /// route vertices).
    pub interval_path: Vec<Point>,
}

/// How a candidate relates to the query region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Containment {
    /// The uncertainty interval lies entirely inside G (Theorem 6): the
    /// object is certainly in the region.
    Must,
    /// The interval intersects G but also leaves it (Theorem 5): the
    /// object may or may not be in the region.
    May,
}

/// Answer to a range query "retrieve the objects inside polygon G at time
/// t₀" (§4.2): "the set S of objects that may be in G, together with a
/// subset of S consisting of the objects that must be in G".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeAnswer {
    /// Objects certainly inside G.
    pub must: Vec<ObjectId>,
    /// Objects possibly (but not certainly) inside G. Disjoint from
    /// `must`; the paper's set S is `must ∪ may`.
    pub may: Vec<ObjectId>,
    /// Number of candidates the index filter produced (for selectivity
    /// accounting).
    pub candidates: usize,
    /// R\*-tree search statistics (zeroed for linear-scan evaluation).
    pub stats: SearchStats,
}

impl RangeAnswer {
    /// The paper's answer set S: everything that may be in G (must ⊆ S).
    pub fn all(&self) -> Vec<ObjectId> {
        let mut s = self.must.clone();
        s.extend(&self.may);
        s
    }

    /// Sorts both id lists (answers are set-valued; sorting makes them
    /// comparable in tests and stable in reports).
    pub fn normalize(&mut self) {
        self.must.sort_unstable();
        self.may.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_answer_all_and_normalize() {
        let mut a = RangeAnswer {
            must: vec![ObjectId(3), ObjectId(1)],
            may: vec![ObjectId(2)],
            candidates: 3,
            stats: SearchStats::default(),
        };
        a.normalize();
        assert_eq!(a.must, vec![ObjectId(1), ObjectId(3)]);
        let all = a.all();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&ObjectId(2)));
    }
}
