//! Transaction-time history of position attributes.
//!
//! The paper assumes valid- and transaction-times coincide (§2, citing the
//! temporal-database literature) and answers queries about the present and
//! future. This module adds the natural temporal extension: the DBMS
//! retains superseded position-attribute versions so *as-of* queries —
//! "where did the DBMS believe m was at time t?" — remain answerable
//! after later updates arrive. Each version is in force from its
//! `start_time` until the next version's.

use crate::attr::PositionAttribute;

/// Bounded version history for one object's position attribute.
///
/// Versions are kept in `start_time` order. The *current* version lives
/// in the owning [`crate::MovingObject`]; the history holds superseded
/// ones, capped at `capacity` (oldest evicted first).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeHistory {
    versions: Vec<PositionAttribute>,
    capacity: usize,
}

impl AttributeHistory {
    /// Creates an empty history retaining at most `capacity` superseded
    /// versions (0 disables history).
    pub fn new(capacity: usize) -> Self {
        AttributeHistory {
            versions: Vec::new(),
            capacity,
        }
    }

    /// Rebuilds a history from retained versions (oldest first) — the
    /// snapshot-restore path. Versions beyond `capacity` are evicted
    /// oldest-first, matching what repeated [`AttributeHistory::push`]
    /// calls would have kept.
    pub fn from_versions(capacity: usize, mut versions: Vec<PositionAttribute>) -> Self {
        debug_assert!(
            versions
                .windows(2)
                .all(|w| w[0].start_time <= w[1].start_time),
            "history must stay time-ordered"
        );
        if capacity == 0 {
            versions.clear();
        } else if versions.len() > capacity {
            versions.drain(..versions.len() - capacity);
        }
        AttributeHistory { versions, capacity }
    }

    /// Records a superseded version. Assumes monotone `start_time` (the
    /// DBMS rejects stale updates before this point).
    pub fn push(&mut self, attr: PositionAttribute) {
        if self.capacity == 0 {
            return;
        }
        debug_assert!(
            self.versions
                .last()
                .is_none_or(|v| v.start_time <= attr.start_time),
            "history must stay time-ordered"
        );
        if self.versions.len() == self.capacity {
            self.versions.remove(0);
        }
        self.versions.push(attr);
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// All retained versions, oldest first.
    pub fn versions(&self) -> &[PositionAttribute] {
        &self.versions
    }

    /// The retained version in force at time `t`: the one with the
    /// largest `start_time ≤ t` **among superseded versions**, and only if
    /// it was still in force at `t` (i.e. `t` precedes the next version's
    /// start). Returns `None` when `t` predates all history or falls in
    /// the current (non-superseded) version's reign — the caller then
    /// uses the live attribute.
    pub fn version_at(&self, t: f64) -> Option<&PositionAttribute> {
        // partition_point gives the first version with start_time > t.
        let idx = self.versions.partition_point(|v| v.start_time <= t);
        if idx == 0 {
            return None; // t predates everything retained
        }
        if idx == self.versions.len() {
            // The newest retained version was superseded by the *current*
            // attribute; whether it was in force at `t` depends on the
            // current attribute's start_time, which the caller knows.
            return Some(&self.versions[idx - 1]);
        }
        Some(&self.versions[idx - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::PolicyDescriptor;
    use modb_geom::Point;
    use modb_routes::{Direction, RouteId};

    fn attr(start_time: f64, arc: f64) -> PositionAttribute {
        PositionAttribute {
            start_time,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::Unbounded,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut h = AttributeHistory::new(16);
        assert!(h.is_empty());
        h.push(attr(0.0, 0.0));
        h.push(attr(5.0, 4.0));
        h.push(attr(9.0, 8.5));
        assert_eq!(h.len(), 3);
        assert_eq!(h.version_at(0.0).unwrap().start_time, 0.0);
        assert_eq!(h.version_at(4.9).unwrap().start_time, 0.0);
        assert_eq!(h.version_at(5.0).unwrap().start_time, 5.0);
        assert_eq!(h.version_at(7.0).unwrap().start_time, 5.0);
        assert_eq!(h.version_at(100.0).unwrap().start_time, 9.0);
        assert!(h.version_at(-1.0).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut h = AttributeHistory::new(2);
        h.push(attr(0.0, 0.0));
        h.push(attr(1.0, 1.0));
        h.push(attr(2.0, 2.0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.versions()[0].start_time, 1.0);
        assert!(h.version_at(0.5).is_none(), "evicted epoch is gone");
    }

    #[test]
    fn from_versions_matches_pushes() {
        let versions = vec![attr(0.0, 0.0), attr(1.0, 1.0), attr(2.0, 2.0)];
        let mut pushed = AttributeHistory::new(2);
        for v in &versions {
            pushed.push(v.clone());
        }
        let rebuilt = AttributeHistory::from_versions(2, versions.clone());
        assert_eq!(rebuilt, pushed);
        // Zero capacity drops everything.
        assert!(AttributeHistory::from_versions(0, versions).is_empty());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut h = AttributeHistory::new(0);
        h.push(attr(0.0, 0.0));
        assert!(h.is_empty());
        assert!(h.version_at(0.0).is_none());
    }
}
