//! The moving-objects database: update ingestion and query processing.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use modb_geom::Point;
use modb_index::{BandConfig, BandStats, MovingObjectIndex, OPlane, QueryRegion, SearchStats};
use modb_routes::{Route, RouteNetwork};

use crate::attr::{PolicyDescriptor, PositionAttribute};
use crate::changes::{Change, ChangeCursor, ChangeLog, SyncReport};
use crate::error::CoreError;
use crate::history::AttributeHistory;
use crate::object::{ObjectId, StationaryObject};
use crate::query::{Containment, PositionAnswer, RangeAnswer};
use crate::update::{UpdateMessage, UpdatePosition};

/// Tuning knobs for the DBMS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseConfig {
    /// Maximum distance (miles) a reported coordinate may lie from its
    /// route before the update is rejected as off-route.
    pub map_match_tolerance: f64,
    /// Horizon (minutes) an o-plane extends past its update when the
    /// object has no known trip end — the `T` of §4.2's index time span.
    pub default_horizon: f64,
    /// Speed-band layout of the time-space index: band edges plus
    /// per-band slab duration / fine-horizon for o-plane decomposition.
    /// [`BandConfig::single`] (the default) reproduces the historical
    /// un-partitioned single-tree index exactly.
    pub bands: BandConfig,
    /// Sampling step (minutes) for exact refinement of time-interval
    /// queries.
    pub refinement_dt: f64,
    /// Superseded position-attribute versions retained per object for
    /// as-of queries (0 disables history).
    pub history_capacity: usize,
    /// Entries retained in the change log that feeds delta subscribers
    /// ([`Database::changes_since`] / [`Database::sync_from`]). A
    /// subscriber that falls further behind than this resyncs with a
    /// full clone; 0 keeps nothing (subscribers always resync).
    pub change_log_capacity: usize,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            map_match_tolerance: 0.25,
            default_horizon: 60.0,
            bands: BandConfig::default(),
            refinement_dt: 1.0,
            history_capacity: 256,
            change_log_capacity: 4096,
        }
    }
}

/// A mobile point object (§2) as stored by the DBMS.
#[derive(Debug, Clone, PartialEq)]
pub struct MovingObject {
    /// Identifier.
    pub id: ObjectId,
    /// Human-readable name (e.g. a cab number).
    pub name: String,
    /// The position attribute — the seven sub-attributes.
    pub attr: PositionAttribute,
    /// Maximum trip speed `V` known to the DBMS (§3.3).
    pub max_speed: f64,
    /// Known trip-end time `Z`, if any (§4.2 cutoff).
    pub trip_end: Option<f64>,
}

/// The DBMS of the paper: a route database, stationary landmarks, moving
/// objects with position attributes, and the 3-D time-space index.
#[derive(Debug, Clone)]
pub struct Database {
    /// The road map, shared: routes are append-only and individually
    /// immutable, so clones of the database alias one network and
    /// [`Database::insert_route`] copies-on-write only when aliased.
    network: Arc<RouteNetwork>,
    moving: HashMap<ObjectId, MovingObject>,
    stationary: HashMap<ObjectId, StationaryObject>,
    index: MovingObjectIndex<ObjectId>,
    /// Ids of moving objects whose policies cannot be o-plane-indexed;
    /// they are appended to every candidate set (exact refinement still
    /// applies).
    unindexed: BTreeSet<ObjectId>,
    /// Superseded attribute versions per object (transaction-time
    /// history; see [`crate::AttributeHistory`]).
    history: HashMap<ObjectId, AttributeHistory>,
    /// Epoch-stamped record of which objects mutated, drained by delta
    /// subscribers (see [`crate::Change`]).
    changes: ChangeLog,
    config: DatabaseConfig,
}

impl Database {
    /// Creates a database over a route network (owned or already
    /// shared — clones of an `Arc`'d network are free).
    pub fn new(network: impl Into<Arc<RouteNetwork>>, config: DatabaseConfig) -> Self {
        Database {
            index: MovingObjectIndex::with_config(config.bands),
            network: network.into(),
            moving: HashMap::new(),
            stationary: HashMap::new(),
            unindexed: BTreeSet::new(),
            history: HashMap::new(),
            changes: ChangeLog::new(config.change_log_capacity),
            config,
        }
    }

    /// Rebuilds a database from externally held state — the
    /// snapshot-restore path of `modb-wal`. Stationary objects are
    /// re-inserted and moving objects re-registered (which re-validates
    /// every field and rebuilds the time-space index entry from scratch,
    /// so a restored database re-indexes identically to the original);
    /// histories are re-attached afterwards, trimmed to
    /// `config.history_capacity`.
    ///
    /// # Errors
    ///
    /// Any error `insert_stationary` / `register_moving` would raise on
    /// the same inputs.
    pub fn from_parts(
        network: impl Into<Arc<RouteNetwork>>,
        config: DatabaseConfig,
        stationary: Vec<StationaryObject>,
        moving: Vec<(MovingObject, Vec<PositionAttribute>)>,
    ) -> Result<Self, CoreError> {
        let mut db = Database::new(network, config);
        for obj in stationary {
            db.insert_stationary(obj)?;
        }
        for (obj, versions) in moving {
            let id = obj.id;
            db.register_moving(obj)?;
            if config.history_capacity > 0 && !versions.is_empty() {
                db.history.insert(
                    id,
                    AttributeHistory::from_versions(config.history_capacity, versions),
                );
            }
        }
        Ok(db)
    }

    /// The route database.
    pub fn network(&self) -> &RouteNetwork {
        &self.network
    }

    /// The route database's shared handle — cloning it is free, and the
    /// routes behind it never change in place (network growth is
    /// append-only and copies-on-write).
    pub fn network_arc(&self) -> Arc<RouteNetwork> {
        Arc::clone(&self.network)
    }

    /// Adds a route to the route database after construction (network
    /// growth is append-only: existing routes never change, so index
    /// entries stay valid). When the network is aliased by clones the
    /// insert copies it first — readers of old handles keep the old map.
    ///
    /// # Errors
    ///
    /// [`CoreError::Route`] when the id is already taken.
    pub fn insert_route(&mut self, route: Route) -> Result<(), CoreError> {
        let id = route.id();
        Arc::make_mut(&mut self.network).insert(route)?;
        self.changes.record(Change::Route(id));
        Ok(())
    }

    /// The configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Number of moving objects.
    pub fn moving_count(&self) -> usize {
        self.moving.len()
    }

    /// Number of stationary objects.
    pub fn stationary_count(&self) -> usize {
        self.stationary.len()
    }

    /// Per-band tree statistics of the time-space index (slowest band
    /// first) — the raw material for `modb_index_band_entries{band="N"}`.
    pub fn index_band_stats(&self) -> Vec<BandStats> {
        self.index.band_stats()
    }

    /// Upserts and entry syncs that moved an object between speed bands
    /// since this database (or the clone lineage it came from) was
    /// created — city↔highway regime changes.
    pub fn index_band_migrations(&self) -> u64 {
        self.index.migrations()
    }

    /// Aggregate `(entries, nodes, max height)` across the index's band
    /// trees.
    pub fn index_tree_stats(&self) -> (usize, usize, usize) {
        self.index.tree_stats()
    }

    /// Iterator over moving-object ids.
    pub fn moving_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.moving.keys().copied()
    }

    /// Iterator over all moving objects (arbitrary order).
    pub fn moving_objects(&self) -> impl Iterator<Item = &MovingObject> {
        self.moving.values()
    }

    /// Iterator over all stationary objects (arbitrary order).
    pub fn stationary_objects(&self) -> impl Iterator<Item = &StationaryObject> {
        self.stationary.values()
    }

    /// Looks up a moving object.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`] when absent.
    pub fn moving(&self, id: ObjectId) -> Result<&MovingObject, CoreError> {
        self.moving.get(&id).ok_or(CoreError::UnknownObject(id))
    }

    /// Looks up a stationary object.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`] when absent.
    pub fn stationary(&self, id: ObjectId) -> Result<&StationaryObject, CoreError> {
        self.stationary.get(&id).ok_or(CoreError::UnknownObject(id))
    }

    /// Finds a moving object by its human-readable name (linear scan —
    /// names are a UI convenience, not a hot path).
    pub fn find_moving_by_name(&self, name: &str) -> Option<&MovingObject> {
        self.moving.values().find(|o| o.name == name)
    }

    /// Finds a stationary object by name.
    pub fn find_stationary_by_name(&self, name: &str) -> Option<&StationaryObject> {
        self.stationary.values().find(|o| o.name == name)
    }

    /// Registers a stationary landmark.
    ///
    /// # Errors
    ///
    /// [`CoreError::DuplicateObject`] when the id is taken.
    pub fn insert_stationary(&mut self, obj: StationaryObject) -> Result<(), CoreError> {
        if self.stationary.contains_key(&obj.id) || self.moving.contains_key(&obj.id) {
            return Err(CoreError::DuplicateObject(obj.id));
        }
        let id = obj.id;
        self.stationary.insert(id, obj);
        self.changes.record(Change::Stationary(id));
        Ok(())
    }

    /// Registers a moving object — "at the beginning of the trip the
    /// moving object writes all the sub-attributes of the position
    /// attribute" (§3.1).
    ///
    /// # Errors
    ///
    /// Duplicate ids, unknown routes, and invalid numeric fields are
    /// rejected; index failures propagate.
    pub fn register_moving(&mut self, obj: MovingObject) -> Result<(), CoreError> {
        if self.moving.contains_key(&obj.id) || self.stationary.contains_key(&obj.id) {
            return Err(CoreError::DuplicateObject(obj.id));
        }
        let route = self.network.get(obj.attr.route)?;
        if !obj.attr.speed.is_finite() || obj.attr.speed < 0.0 {
            return Err(CoreError::InvalidField("speed", obj.attr.speed));
        }
        if !obj.max_speed.is_finite() || obj.max_speed <= 0.0 {
            return Err(CoreError::InvalidField("max_speed", obj.max_speed));
        }
        if !obj.attr.start_arc.is_finite()
            || obj.attr.start_arc < 0.0
            || obj.attr.start_arc > route.length()
        {
            return Err(CoreError::InvalidField("start_arc", obj.attr.start_arc));
        }
        let id = obj.id;
        self.moving.insert(id, obj);
        self.changes.record(Change::Moving(id));
        self.reindex(id)?;
        Ok(())
    }

    /// Revises the DBMS-known maximum trip speed `V` of a moving object
    /// (§3.3) — e.g. a fleet vehicle reclassified from city stop-and-go
    /// to highway cruise. The index entry is rebuilt under the new
    /// speed, which migrates it between speed bands when the new `V`
    /// falls in a different band ([`BandConfig`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`] when absent;
    /// [`CoreError::InvalidField`] for a non-finite or non-positive
    /// speed (the stored value is untouched).
    pub fn set_max_speed(&mut self, id: ObjectId, max_speed: f64) -> Result<(), CoreError> {
        if !max_speed.is_finite() || max_speed <= 0.0 {
            return Err(CoreError::InvalidField("max_speed", max_speed));
        }
        let obj = self
            .moving
            .get_mut(&id)
            .ok_or(CoreError::UnknownObject(id))?;
        obj.max_speed = max_speed;
        self.changes.record(Change::Moving(id));
        self.reindex(id)?;
        Ok(())
    }

    /// Removes a moving object (trip over).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`] when absent.
    pub fn remove_moving(&mut self, id: ObjectId) -> Result<MovingObject, CoreError> {
        let obj = self
            .moving
            .remove(&id)
            .ok_or(CoreError::UnknownObject(id))?;
        self.history.remove(&id);
        self.index.remove(&id);
        self.unindexed.remove(&id);
        self.changes.record(Change::Moving(id));
        Ok(obj)
    }

    /// Removes every moving object whose known trip end `Z` has passed
    /// (§4.2's cutoff): returns the removed ids. Housekeeping to run
    /// periodically so ended trips stop occupying the index.
    pub fn expire_trips(&mut self, now: f64) -> Vec<ObjectId> {
        let expired: Vec<ObjectId> = self
            .moving
            .values()
            .filter(|o| o.trip_end.is_some_and(|z| z < now))
            .map(|o| o.id)
            .collect();
        for id in &expired {
            let _ = self.remove_moving(*id);
        }
        expired
    }

    // --- Versioned-store subscription API -----------------------------
    //
    // Consumers keep a (possibly stale) copy of this database and pull
    // it forward in O(changes): the epoch publisher, the pause-free WAL
    // snapshot path, and future replication followers all drain the same
    // change log through these three methods.

    /// The cursor one past the newest recorded change — where a new
    /// subscriber starts after taking its initial full copy.
    pub fn change_cursor(&self) -> ChangeCursor {
        self.changes.cursor()
    }

    /// Changes recorded at or after `cursor`, oldest first, possibly
    /// with repeats (subscribers dedup — each entry means "copy that
    /// object's *current* state", so applying the set once suffices).
    /// `None` when the bounded log evicted entries the cursor still
    /// needs: the subscriber must fall back to a full copy.
    pub fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<Change>> {
        self.changes.since(cursor).map(Iterator::collect)
    }

    /// The number of change-log entries past which applying a delta
    /// loses to a full clone. Re-syncing one changed object costs an
    /// order of magnitude more than bulk-cloning it (per-object index
    /// surgery vs a straight structure clone), so the break-even sits at
    /// a modest fraction of the fleet; the floor keeps small fleets on
    /// the delta path unconditionally.
    fn delta_budget(&self) -> usize {
        (self.moving.len() / 16).max(64)
    }

    /// Whether pulling a stale copy forward from `cursor` is worthwhile:
    /// the log still holds the delta *and* it is small enough to beat a
    /// full clone. [`Database::sync_from`] applies the same cutover
    /// itself; this predicate lets callers skip optional maintenance
    /// syncs (e.g. the shadow buffer's post-publish catch-up) that a
    /// later full resync would supersede anyway.
    pub fn delta_affordable(&self, cursor: ChangeCursor) -> bool {
        match self.changes.since(cursor) {
            Some(delta) => delta.count() <= self.delta_budget(),
            None => false,
        }
    }

    /// Pulls this (stale copy) database forward to `src`'s state by
    /// applying the changes recorded since `cursor` — copying each
    /// touched object's current state (or removing it), maintaining the
    /// time-space index entry-by-entry (the §4.2 delete+insert
    /// maintenance) instead of rebuilding it. Falls back to a full clone
    /// when the delta is unservable (log truncated past `cursor`) or no
    /// longer cheaper than cloning (more distinct objects touched than
    /// the break-even fraction of the fleet). Either way, afterwards
    /// `self` answers every query identically to `src`.
    ///
    /// `self` must be a clone of `src` as of `cursor` (or of any state
    /// the recorded changes bridge from); the caller guarantees `src` is
    /// not mutated concurrently. The target's *own* change log is not
    /// advanced — it describes mutations applied through the target's
    /// mutators, and replicas hand out cursors against themselves only
    /// after a full clone.
    pub fn sync_from(&mut self, src: &Database, cursor: ChangeCursor) -> SyncReport {
        let target = src.changes.cursor();
        let Some(delta) = src.changes.since(cursor) else {
            *self = src.clone();
            return SyncReport {
                cursor: target,
                full_resync: true,
                applied: 0,
            };
        };
        let touched: HashSet<Change> = delta.collect();
        // Past the break-even point a full clone is cheaper than
        // per-object surgery (and the gap only widens): cut over.
        if touched.len() > src.delta_budget() {
            *self = src.clone();
            return SyncReport {
                cursor: target,
                full_resync: true,
                applied: 0,
            };
        }
        if !Arc::ptr_eq(&self.network, &src.network) {
            self.network = Arc::clone(&src.network);
        }
        self.config = src.config;
        let applied = touched.len();
        for change in touched {
            match change {
                Change::Moving(id) => self.sync_moving_from(src, id),
                Change::Stationary(id) => {
                    if let Some(obj) = src.stationary.get(&id) {
                        self.stationary.insert(id, obj.clone());
                    }
                }
                // Covered by the network handle adoption above.
                Change::Route(_) => {}
            }
        }
        SyncReport {
            cursor: target,
            full_resync: false,
            applied,
        }
    }

    /// Copies one moving object's current state (attribute, history,
    /// index entry, unindexed membership) from `src`, or erases it when
    /// `src` no longer holds it.
    fn sync_moving_from(&mut self, src: &Database, id: ObjectId) {
        use std::collections::hash_map::Entry;
        match src.moving.get(&id) {
            Some(obj) => {
                // clone_from lets displaced heap buffers (names, history
                // vectors) be reused on the hot resync path.
                match self.moving.entry(id) {
                    Entry::Occupied(mut e) => e.get_mut().clone_from(obj),
                    Entry::Vacant(e) => {
                        e.insert(obj.clone());
                    }
                }
                match src.history.get(&id) {
                    Some(h) => match self.history.entry(id) {
                        Entry::Occupied(mut e) => e.get_mut().clone_from(h),
                        Entry::Vacant(e) => {
                            e.insert(h.clone());
                        }
                    },
                    None => {
                        self.history.remove(&id);
                    }
                }
                self.index.sync_entry_from(&src.index, &id);
                if src.unindexed.contains(&id) {
                    self.unindexed.insert(id);
                } else {
                    self.unindexed.remove(&id);
                }
            }
            None => {
                self.moving.remove(&id);
                self.history.remove(&id);
                self.index.remove(&id);
                self.unindexed.remove(&id);
            }
        }
    }

    /// Applies a position-update message (§3.1), refreshing the position
    /// attribute and the time-space index (§4.2).
    ///
    /// # Errors
    ///
    /// Unknown objects/routes, off-route coordinates, stale timestamps,
    /// and invalid fields are rejected; on error the stored state is
    /// unchanged.
    pub fn apply_update(&mut self, id: ObjectId, msg: &UpdateMessage) -> Result<(), CoreError> {
        let obj = self.moving.get(&id).ok_or(CoreError::UnknownObject(id))?;
        if !msg.time.is_finite() {
            return Err(CoreError::InvalidField("time", msg.time));
        }
        if msg.time < obj.attr.start_time {
            return Err(CoreError::StaleUpdate {
                stored: obj.attr.start_time,
                received: msg.time,
            });
        }
        if !msg.speed.is_finite() || msg.speed < 0.0 {
            return Err(CoreError::InvalidField("speed", msg.speed));
        }
        let route_id = msg.route.unwrap_or(obj.attr.route);
        let route = self.network.get(route_id)?;
        let (arc, point) = self.resolve_position(route, msg.position)?;

        let obj = self.moving.get_mut(&id).expect("checked above");
        let mut next = obj.attr.clone();
        next.start_time = msg.time;
        next.route = route_id;
        next.start_arc = arc;
        next.start_position = point;
        next.speed = msg.speed;
        if let Some(dir) = msg.direction {
            next.direction = dir;
        }
        if let Some(policy) = msg.policy {
            next.policy = policy;
        }
        if next == obj.attr {
            // Exact re-delivery of the attribute already in force (e.g.
            // WAL replay over a snapshot that reflects it): accept
            // without duplicating the history entry or re-indexing, so
            // replay is idempotent.
            return Ok(());
        }
        if msg.time == obj.attr.start_time {
            // Same-instant revision: last writer wins *in place*. Pushing
            // the superseded attribute would leave two versions in force
            // at one timestamp — an infinite-speed trajectory that breaks
            // the truthfulness premise of every deviation bound (§3.3,
            // W4's 2·v_max·Δ). Coalescing keeps the trajectory
            // single-valued per instant and stays deterministic under
            // WAL replay.
            obj.attr = next;
            self.changes.record(Change::Moving(id));
            return self.reindex(id);
        }
        if self.config.history_capacity > 0 {
            self.history
                .entry(id)
                .or_insert_with(|| AttributeHistory::new(self.config.history_capacity))
                .push(obj.attr.clone());
        }
        obj.attr = next;
        self.changes.record(Change::Moving(id));
        self.reindex(id)
    }

    fn resolve_position(
        &self,
        route: &Route,
        pos: UpdatePosition,
    ) -> Result<(f64, Point), CoreError> {
        match pos {
            UpdatePosition::Arc(a) => {
                if !a.is_finite() || a < 0.0 || a > route.length() {
                    return Err(CoreError::InvalidField("arc", a));
                }
                Ok((a, route.point_at(a)))
            }
            UpdatePosition::Coordinates(p) => {
                if !p.is_finite() {
                    return Err(CoreError::InvalidField("position.x/y", p.x));
                }
                let (arc, dist) = route.locate(p);
                if dist > self.config.map_match_tolerance {
                    return Err(CoreError::OffRoute {
                        distance: dist,
                        tolerance: self.config.map_match_tolerance,
                    });
                }
                Ok((arc, route.point_at(arc)))
            }
        }
    }

    /// Rebuilds the object's index entry from its stored attribute.
    fn reindex(&mut self, id: ObjectId) -> Result<(), CoreError> {
        let obj = self.moving.get(&id).expect("caller ensures presence");
        match obj.attr.policy {
            PolicyDescriptor::CostBased { kind, update_cost } => {
                let route = self.network.get(obj.attr.route)?;
                let end_time = obj
                    .trip_end
                    .unwrap_or(obj.attr.start_time + self.config.default_horizon)
                    .max(obj.attr.start_time + 1e-6);
                let plane = OPlane::new(
                    obj.attr.route,
                    obj.attr.start_arc,
                    obj.attr.direction,
                    obj.attr.speed,
                    obj.max_speed,
                    update_cost,
                    kind,
                    obj.attr.start_time,
                    end_time,
                )?;
                self.index.upsert(id, plane, route)?;
                self.unindexed.remove(&id);
            }
            _ => {
                self.index.remove(&id);
                self.unindexed.insert(id);
            }
        }
        Ok(())
    }

    /// Answers "what is the current position of m?" at time `t`, with the
    /// §3.3 error bound and the §4.1.1 uncertainty interval.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`] and route/geometry failures.
    pub fn position_of(&self, id: ObjectId, t: f64) -> Result<PositionAnswer, CoreError> {
        let obj = self.moving(id)?;
        let route = self.network.get(obj.attr.route)?;
        let arc = obj.attr.database_arc(route.length(), t);
        let elapsed = (t - obj.attr.start_time).max(0.0);
        let bound = obj
            .attr
            .policy
            .deviation_bound(obj.attr.speed, obj.max_speed, elapsed);
        let interval = obj.attr.uncertainty_arcs(route.length(), obj.max_speed, t);
        let interval_path = route.polyline().interval_points(interval.0, interval.1)?;
        Ok(PositionAnswer {
            position: route.point_at(arc),
            arc,
            bound,
            interval,
            interval_path,
        })
    }

    /// The retained attribute history for an object (empty slice when
    /// history is disabled or no update has superseded the registration).
    pub fn history_of(&self, id: ObjectId) -> &[PositionAttribute] {
        self.history.get(&id).map(|h| h.versions()).unwrap_or(&[])
    }

    /// As-of position query: "where did the DBMS believe `m` was at time
    /// `t`?" — answered from the attribute version in force at `t`, even
    /// after later updates arrived. For `t` at or after the current
    /// version's start this equals [`Database::position_of`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`]; [`CoreError::InvalidField`] when `t`
    /// predates all retained history (the epoch was evicted or history is
    /// disabled).
    pub fn position_of_as_of(&self, id: ObjectId, t: f64) -> Result<PositionAnswer, CoreError> {
        let obj = self.moving(id)?;
        if t >= obj.attr.start_time {
            return self.position_of(id, t);
        }
        let version = self
            .history
            .get(&id)
            .and_then(|h| h.version_at(t))
            .ok_or(CoreError::InvalidField("as_of_time", t))?;
        let route = self.network.get(version.route)?;
        let arc = version.database_arc(route.length(), t);
        let elapsed = (t - version.start_time).max(0.0);
        let bound = version
            .policy
            .deviation_bound(version.speed, obj.max_speed, elapsed);
        let interval = version.uncertainty_arcs(route.length(), obj.max_speed, t);
        let interval_path = route.polyline().interval_points(interval.0, interval.1)?;
        Ok(PositionAnswer {
            position: route.point_at(arc),
            arc,
            bound,
            interval,
            interval_path,
        })
    }

    /// Classifies one object against a query region using exact
    /// uncertainty-interval geometry (Theorems 5–6). `None` means the
    /// object is certainly outside G over the region's time span.
    ///
    /// Range queries are defined for the present and future ("t₀ may be
    /// the current time, or some time in the future", §4.2): times before
    /// the object's `P.starttime` are skipped — the DBMS had no position
    /// knowledge for the object then (as-of queries serve the past).
    fn classify(
        &self,
        obj: &MovingObject,
        region: &QueryRegion,
    ) -> Result<Option<Containment>, CoreError> {
        let route = self.network.get(obj.attr.route)?;
        let mut best: Option<Containment> = None;
        for t in region.refinement_times(self.config.refinement_dt) {
            if t < obj.attr.start_time {
                continue;
            }
            let (lo, hi) = obj.attr.uncertainty_arcs(route.length(), obj.max_speed, t);
            let path = route.polyline().interval_points(lo, hi)?;
            if region.polygon().contains_path(&path) {
                return Ok(Some(Containment::Must));
            }
            if region.polygon().intersects_path(&path) {
                best = Some(Containment::May);
            }
        }
        Ok(best)
    }

    /// Range query via the time-space index (§4.2): filter candidates with
    /// the R\*-tree, then refine exactly. Objects with non-cost-based
    /// policies are refined too (they are not o-plane-indexable and join
    /// the candidate set directly).
    ///
    /// # Errors
    ///
    /// Route/geometry failures during refinement.
    pub fn range_query(&self, region: &QueryRegion) -> Result<RangeAnswer, CoreError> {
        let (candidates, stats) = self.range_candidates(region);
        self.refine_streaming(candidates, region, stats)
    }

    /// The filter step alone: candidate ids the index proposes for
    /// `region` (plus the unindexed tail), with search statistics. Callers
    /// that refine elsewhere — a parallel query engine splitting the
    /// refine across workers — start here and feed slices to
    /// [`Database::refine_slice`].
    pub fn range_candidates(&self, region: &QueryRegion) -> (Vec<ObjectId>, SearchStats) {
        let mut candidates = Vec::new();
        let stats = self.index.candidates_into(region, &mut candidates);
        candidates.extend(self.unindexed.iter().copied());
        (candidates, stats)
    }

    /// Range query by exhaustive scan — the baseline the index is measured
    /// against (§4's sublinearity claim). Produces identical answers.
    /// Candidates stream straight out of the object table; no id vector is
    /// materialised up front.
    ///
    /// # Errors
    ///
    /// Route/geometry failures during refinement.
    pub fn range_query_scan(&self, region: &QueryRegion) -> Result<RangeAnswer, CoreError> {
        self.refine_streaming(self.moving.keys().copied(), region, SearchStats::default())
    }

    /// Exact refinement of one pre-filtered candidate: the object's
    /// uncertainty interval against the region's polygon over its time
    /// span (Theorems 5–6). `None` means certainly outside.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownObject`] and route/geometry failures.
    pub fn classify_candidate(
        &self,
        id: ObjectId,
        region: &QueryRegion,
    ) -> Result<Option<Containment>, CoreError> {
        self.classify(self.moving(id)?, region)
    }

    /// Refines a slice of pre-filtered candidates into `(must, may)` id
    /// sets (unsorted — the caller merges and normalizes). This is the
    /// unit of work a parallel refiner hands to each worker: `&self` only,
    /// so workers refine disjoint slices of one immutable snapshot
    /// concurrently.
    ///
    /// # Errors
    ///
    /// Same as [`Database::classify_candidate`].
    pub fn refine_slice(
        &self,
        candidates: &[ObjectId],
        region: &QueryRegion,
    ) -> Result<(Vec<ObjectId>, Vec<ObjectId>), CoreError> {
        let mut must = Vec::new();
        let mut may = Vec::new();
        for &id in candidates {
            match self.classify(self.moving(id)?, region)? {
                Some(Containment::Must) => must.push(id),
                Some(Containment::May) => may.push(id),
                None => {}
            }
        }
        Ok((must, may))
    }

    /// Streaming refine: classifies candidates as the iterator yields them
    /// — no upfront id vector.
    fn refine_streaming(
        &self,
        candidates: impl IntoIterator<Item = ObjectId>,
        region: &QueryRegion,
        stats: SearchStats,
    ) -> Result<RangeAnswer, CoreError> {
        let mut answer = RangeAnswer {
            stats,
            ..RangeAnswer::default()
        };
        for id in candidates {
            answer.candidates += 1;
            let obj = self.moving(id)?;
            match self.classify(obj, region)? {
                Some(Containment::Must) => answer.must.push(id),
                Some(Containment::May) => answer.may.push(id),
                None => {}
            }
        }
        answer.normalize();
        Ok(answer)
    }

    /// "Retrieve the objects currently within `radius` miles of `center`"
    /// — the paper's taxi-cab query, as a 32-gon range query at time `t`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidField`] for a bad radius; refinement errors
    /// propagate.
    pub fn within_distance_of_point(
        &self,
        center: Point,
        radius: f64,
        t: f64,
    ) -> Result<RangeAnswer, CoreError> {
        let region = modb_index::within_radius(center, radius, t)
            .ok_or(CoreError::InvalidField("radius", radius))?;
        self.range_query(&region)
    }

    /// "Retrieve the objects currently within `radius` miles of moving
    /// object `target`" — the paper's trucking query (§1).
    ///
    /// The target's own position is uncertain, so the *may* set uses the
    /// radius inflated by the target's deviation bound and the *must* set
    /// uses the radius deflated by it; the target itself is excluded.
    ///
    /// # Errors
    ///
    /// Unknown target, bad radius, refinement failures.
    pub fn within_distance_of_object(
        &self,
        target: ObjectId,
        radius: f64,
        t: f64,
    ) -> Result<RangeAnswer, CoreError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(CoreError::InvalidField("radius", radius));
        }
        let target_pos = self.position_of(target, t)?;
        let center = target_pos.position;
        // may: the object could be anywhere within its bound of the db
        // position, so anything within radius + bound may qualify.
        let may_region = modb_index::within_radius(center, radius + target_pos.bound, t)
            .ok_or(CoreError::InvalidField("radius", radius))?;
        let mut may_side = self.range_query(&may_region)?;
        // must: only objects certainly within radius − bound qualify
        // regardless of where the target actually is.
        let must_radius = radius - target_pos.bound;
        let must_ids = if must_radius > 0.0 {
            let must_region = modb_index::within_radius(center, must_radius, t)
                .ok_or(CoreError::InvalidField("radius", radius))?;
            self.range_query(&must_region)?.must
        } else {
            Vec::new()
        };
        // Assemble: must from the deflated query; everything else that may
        // qualify goes to `may`. Exclude the target.
        let mut answer = RangeAnswer {
            candidates: may_side.candidates,
            stats: may_side.stats,
            ..RangeAnswer::default()
        };
        answer.must = must_ids.into_iter().filter(|&i| i != target).collect();
        may_side.normalize();
        for id in may_side.all() {
            if id != target && !answer.must.contains(&id) {
                answer.may.push(id);
            }
        }
        answer.normalize();
        Ok(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_geom::{Polygon, Rect};
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId};

    const C: f64 = 5.0;

    fn cost_based() -> PolicyDescriptor {
        PolicyDescriptor::CostBased {
            kind: BoundKind::Immediate,
            update_cost: C,
        }
    }

    fn network() -> RouteNetwork {
        RouteNetwork::from_routes([
            Route::from_vertices(
                RouteId(1),
                "main",
                vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            )
            .unwrap(),
            Route::from_vertices(
                RouteId(2),
                "cross",
                vec![Point::new(50.0, -50.0), Point::new(50.0, 50.0)],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn object(id: u64, arc: f64, speed: f64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(arc, 0.0),
                start_arc: arc,
                direction: Direction::Forward,
                speed,
                policy: cost_based(),
            },
            max_speed: 1.5,
            trip_end: None,
        }
    }

    fn db_with(objects: Vec<MovingObject>) -> Database {
        let mut db = Database::new(network(), DatabaseConfig::default());
        for o in objects {
            db.register_moving(o).unwrap();
        }
        db
    }

    fn rect_region(x0: f64, x1: f64, t: f64) -> QueryRegion {
        let g = Polygon::rectangle(&Rect::new(Point::new(x0, -1.0), Point::new(x1, 1.0))).unwrap();
        QueryRegion::at_instant(g, t)
    }

    #[test]
    fn register_and_position_query() {
        let db = db_with(vec![object(1, 10.0, 1.0)]);
        let ans = db.position_of(ObjectId(1), 5.0).unwrap();
        assert_eq!(ans.arc, 15.0);
        assert_eq!(ans.position, Point::new(15.0, 0.0));
        // Bound matches Prop 4's combined bound at t = 5: min(2C/t, D·t)
        // with D = max(1, 0.5) = 1 → min(2, 5) = 2.
        assert!((ans.bound - 2.0).abs() < 1e-12);
        assert!(ans.interval.0 <= 15.0 && ans.interval.1 >= 15.0);
        assert!(!ans.interval_path.is_empty());
    }

    #[test]
    fn registration_validation() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        assert!(matches!(
            db.register_moving(object(1, 0.0, 1.0)),
            Err(CoreError::DuplicateObject(_))
        ));
        let mut bad = object(2, 10.0, 1.0);
        bad.attr.route = RouteId(99);
        assert!(matches!(db.register_moving(bad), Err(CoreError::Route(_))));
        let mut bad = object(3, 200.0, 1.0);
        bad.attr.start_position = Point::new(200.0, 0.0);
        assert!(matches!(
            db.register_moving(bad),
            Err(CoreError::InvalidField("start_arc", _))
        ));
        let mut bad = object(4, 10.0, f64::NAN);
        bad.attr.speed = f64::NAN;
        assert!(db.register_moving(bad).is_err());
    }

    #[test]
    fn apply_update_moves_object() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(12.0), 0.5),
        )
        .unwrap();
        let o = db.moving(ObjectId(1)).unwrap();
        assert_eq!(o.attr.start_time, 5.0);
        assert_eq!(o.attr.start_arc, 12.0);
        assert_eq!(o.attr.speed, 0.5);
        // Position now extrapolates from the new update.
        let ans = db.position_of(ObjectId(1), 7.0).unwrap();
        assert_eq!(ans.arc, 13.0);
    }

    #[test]
    fn same_timestamp_update_coalesces_without_history_push() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(12.0), 0.5),
        )
        .unwrap();
        // Same instant, different content: the revision replaces the
        // attribute in place. The old code pushed the superseded t=5
        // attribute into history, leaving two versions in force at t=5
        // — an infinite-speed trajectory.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(20.0), 1.0),
        )
        .unwrap();
        let o = db.moving(ObjectId(1)).unwrap();
        assert_eq!(o.attr.start_arc, 20.0);
        assert_eq!(o.attr.speed, 1.0);
        let history = db.history_of(ObjectId(1));
        assert!(
            history.iter().all(|v| v.start_time < 5.0),
            "history must hold no version at the coalesced instant: {history:?}"
        );
        // Exactly one attribute answers for t=5: queries see the winner.
        assert_eq!(db.position_of(ObjectId(1), 5.0).unwrap().arc, 20.0);
        // The index reflects the winner too (it moved 8 arc units).
        let ans = db.position_of(ObjectId(1), 7.0).unwrap();
        assert_eq!(ans.arc, 22.0);
    }

    #[test]
    fn same_timestamp_idempotent_redelivery_still_accepted() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        let msg = UpdateMessage::basic(5.0, UpdatePosition::Arc(12.0), 0.5);
        db.apply_update(ObjectId(1), &msg).unwrap();
        let history_len = db.history_of(ObjectId(1)).len();
        db.apply_update(ObjectId(1), &msg).unwrap();
        assert_eq!(db.history_of(ObjectId(1)).len(), history_len);
        assert_eq!(db.moving(ObjectId(1)).unwrap().attr.start_arc, 12.0);
    }

    #[test]
    fn apply_update_with_coordinates_map_matches() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        // Slightly off the route (0.1 < 0.25 tolerance).
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(1.0, UpdatePosition::Coordinates(Point::new(20.0, 0.1)), 1.0),
        )
        .unwrap();
        assert_eq!(db.moving(ObjectId(1)).unwrap().attr.start_arc, 20.0);
        // Too far off: rejected.
        let err = db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(2.0, UpdatePosition::Coordinates(Point::new(20.0, 3.0)), 1.0),
        );
        assert!(matches!(err, Err(CoreError::OffRoute { .. })));
    }

    #[test]
    fn stale_and_invalid_updates_rejected() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(12.0), 1.0),
        )
        .unwrap();
        assert!(matches!(
            db.apply_update(
                ObjectId(1),
                &UpdateMessage::basic(4.0, UpdatePosition::Arc(13.0), 1.0)
            ),
            Err(CoreError::StaleUpdate { .. })
        ));
        assert!(db
            .apply_update(
                ObjectId(1),
                &UpdateMessage::basic(6.0, UpdatePosition::Arc(-1.0), 1.0)
            )
            .is_err());
        assert!(db
            .apply_update(
                ObjectId(1),
                &UpdateMessage::basic(6.0, UpdatePosition::Arc(12.0), -1.0)
            )
            .is_err());
        assert!(matches!(
            db.apply_update(
                ObjectId(9),
                &UpdateMessage::basic(6.0, UpdatePosition::Arc(1.0), 1.0)
            ),
            Err(CoreError::UnknownObject(_))
        ));
    }

    #[test]
    fn route_change_update() {
        let mut db = db_with(vec![object(1, 50.0, 1.0)]);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::route_change(
                3.0,
                RouteId(2),
                UpdatePosition::Arc(50.0), // mid of the cross street
                Direction::Forward,
                0.8,
            ),
        )
        .unwrap();
        let o = db.moving(ObjectId(1)).unwrap();
        assert_eq!(o.attr.route, RouteId(2));
        let ans = db.position_of(ObjectId(1), 3.0).unwrap();
        assert_eq!(ans.position, Point::new(50.0, 0.0));
    }

    #[test]
    fn range_query_index_matches_scan() {
        let db = db_with(vec![
            object(1, 0.0, 1.0),
            object(2, 30.0, 1.0),
            object(3, 60.0, 0.5),
            object(4, 90.0, 0.0),
        ]);
        for t in [0.0, 2.0, 5.0, 10.0] {
            for (x0, x1) in [(0.0, 10.0), (25.0, 45.0), (0.0, 100.0), (95.0, 100.0)] {
                let region = rect_region(x0, x1, t);
                let a = db.range_query(&region).unwrap();
                let b = db.range_query_scan(&region).unwrap();
                assert_eq!(a.must, b.must, "t={t} x=[{x0},{x1}]");
                assert_eq!(a.may, b.may, "t={t} x=[{x0},{x1}]");
            }
        }
    }

    #[test]
    fn slice_refinement_matches_full_query() {
        let db = db_with(vec![
            object(1, 0.0, 1.0),
            object(2, 30.0, 1.0),
            object(3, 60.0, 0.5),
            object(4, 90.0, 0.0),
        ]);
        for (x0, x1, t) in [(0.0, 40.0, 2.0), (25.0, 95.0, 5.0), (0.0, 100.0, 0.0)] {
            let region = rect_region(x0, x1, t);
            let full = db.range_query(&region).unwrap();
            let (candidates, stats) = db.range_candidates(&region);
            assert_eq!(candidates.len(), full.candidates);
            assert_eq!(stats, full.stats);
            // Split the candidates into two slices, refine each, merge:
            // same answer the engine's parallel refiner must reproduce.
            let mid = candidates.len() / 2;
            let (mut must, mut may) = db.refine_slice(&candidates[..mid], &region).unwrap();
            let (m2, y2) = db.refine_slice(&candidates[mid..], &region).unwrap();
            must.extend(m2);
            may.extend(y2);
            must.sort_unstable();
            may.sort_unstable();
            assert_eq!(must, full.must, "x=[{x0},{x1}] t={t}");
            assert_eq!(may, full.may, "x=[{x0},{x1}] t={t}");
            // Per-candidate classification agrees with set membership.
            for &id in &candidates {
                let c = db.classify_candidate(id, &region).unwrap();
                assert_eq!(c == Some(Containment::Must), full.must.contains(&id));
                assert_eq!(c == Some(Containment::May), full.may.contains(&id));
            }
        }
        assert!(matches!(
            db.classify_candidate(ObjectId(99), &rect_region(0.0, 1.0, 0.0)),
            Err(CoreError::UnknownObject(_))
        ));
    }

    #[test]
    fn may_must_semantics() {
        // Object 1 at arc 10 updated at t = 0 with speed 1: at t = 2 its
        // interval (immediate kind) is [10, 15] (l = 0 pre-crossover,
        // u = 12 + 1 ... compute: nominal 12, BS = min(5,2)=2, BF =
        // min(5,1)=1 → [10, 13]).
        let db = db_with(vec![object(1, 10.0, 1.0)]);
        // Region containing the whole interval: must.
        let a = db.range_query(&rect_region(5.0, 20.0, 2.0)).unwrap();
        assert_eq!(a.must, vec![ObjectId(1)]);
        assert!(a.may.is_empty());
        // Region overlapping part of the interval: may.
        let a = db.range_query(&rect_region(12.0, 20.0, 2.0)).unwrap();
        assert!(a.must.is_empty());
        assert_eq!(a.may, vec![ObjectId(1)]);
        // Region beyond the interval: neither.
        let a = db.range_query(&rect_region(40.0, 60.0, 2.0)).unwrap();
        assert!(a.must.is_empty() && a.may.is_empty());
    }

    #[test]
    fn non_indexed_policies_still_answered() {
        let mut fixed = object(1, 10.0, 1.0);
        fixed.attr.policy = PolicyDescriptor::FixedBound { bound: 1.0 };
        let mut unbounded = object(2, 30.0, 1.0);
        unbounded.attr.policy = PolicyDescriptor::Unbounded;
        let db = db_with(vec![fixed, unbounded, object(3, 60.0, 1.0)]);
        let region = rect_region(0.0, 100.0, 2.0);
        let a = db.range_query(&region).unwrap();
        let b = db.range_query_scan(&region).unwrap();
        assert_eq!(a.must, b.must);
        assert_eq!(a.may, b.may);
        assert_eq!(a.all().len(), 3);
    }

    #[test]
    fn future_time_query() {
        let db = db_with(vec![object(1, 0.0, 1.0)]);
        // "Where will it be at t = 50?" Nominal arc 50; immediate bounds
        // have decayed to 2C/t = 0.2.
        let a = db.range_query(&rect_region(45.0, 55.0, 50.0)).unwrap();
        assert_eq!(a.must, vec![ObjectId(1)]);
        let a = db.range_query(&rect_region(0.0, 5.0, 50.0)).unwrap();
        assert!(a.all().is_empty());
    }

    #[test]
    fn within_distance_queries() {
        let mut db = db_with(vec![object(1, 10.0, 1.0), object(2, 13.0, 1.0)]);
        db.insert_stationary(StationaryObject::new(
            ObjectId(100),
            "depot",
            Point::new(12.0, 0.0),
        ))
        .unwrap();
        // At t = 0 object 1 is at 10, object 2 at 13; depot at 12.
        let a = db
            .within_distance_of_point(Point::new(12.0, 0.0), 2.5, 0.0)
            .unwrap();
        let mut all = a.all();
        all.sort_unstable();
        assert_eq!(all, vec![ObjectId(1), ObjectId(2)]);
        // Trucking query: near object 1, excluding itself.
        let a = db.within_distance_of_object(ObjectId(1), 4.0, 0.0).unwrap();
        assert!(!a.all().contains(&ObjectId(1)));
        assert!(a.all().contains(&ObjectId(2)));
        // Invalid radius.
        assert!(db
            .within_distance_of_point(Point::new(0.0, 0.0), 0.0, 0.0)
            .is_err());
        assert!(db
            .within_distance_of_object(ObjectId(1), -1.0, 0.0)
            .is_err());
    }

    #[test]
    fn remove_moving_object() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        let o = db.remove_moving(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert_eq!(db.moving_count(), 0);
        assert!(matches!(
            db.remove_moving(ObjectId(1)),
            Err(CoreError::UnknownObject(_))
        ));
        let a = db.range_query(&rect_region(0.0, 100.0, 0.0)).unwrap();
        assert!(a.all().is_empty());
    }

    #[test]
    fn policy_change_via_update_reindexes() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        // Switch to a fixed-bound policy: object leaves the o-plane index
        // but queries still find it.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(1.0, UpdatePosition::Arc(11.0), 1.0)
                .with_policy(PolicyDescriptor::FixedBound { bound: 0.5 }),
        )
        .unwrap();
        let a = db.range_query(&rect_region(5.0, 20.0, 1.0)).unwrap();
        assert_eq!(a.must, vec![ObjectId(1)]);
        // And back to cost-based.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(2.0, UpdatePosition::Arc(12.0), 1.0).with_policy(cost_based()),
        )
        .unwrap();
        let a = db.range_query(&rect_region(5.0, 20.0, 2.0)).unwrap();
        assert_eq!(a.must, vec![ObjectId(1)]);
    }

    #[test]
    fn as_of_queries_replay_history() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(10.0, UpdatePosition::Arc(17.0), 2.0),
        )
        .unwrap();
        // History holds the two superseded versions.
        assert_eq!(db.history_of(ObjectId(1)).len(), 2);
        // As-of t = 3: the original registration (arc 10, speed 1) was in
        // force → db position 13.
        let ans = db.position_of_as_of(ObjectId(1), 3.0).unwrap();
        assert_eq!(ans.arc, 13.0);
        // As-of t = 7: the second version (arc 14 at t=5, speed 0.5).
        let ans = db.position_of_as_of(ObjectId(1), 7.0).unwrap();
        assert_eq!(ans.arc, 15.0);
        // As-of now and future: same as position_of.
        let now = db.position_of_as_of(ObjectId(1), 12.0).unwrap();
        assert_eq!(now, db.position_of(ObjectId(1), 12.0).unwrap());
        // Bound attaches to historical answers too.
        assert!(db.position_of_as_of(ObjectId(1), 7.0).unwrap().bound > 0.0);
    }

    #[test]
    fn as_of_before_history_errors_and_capacity_respected() {
        let cfg = DatabaseConfig {
            history_capacity: 1,
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(network(), cfg);
        db.register_moving(object(1, 10.0, 1.0)).unwrap();
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(10.0, UpdatePosition::Arc(17.0), 2.0),
        )
        .unwrap();
        assert_eq!(db.history_of(ObjectId(1)).len(), 1);
        // The first epoch was evicted.
        assert!(db.position_of_as_of(ObjectId(1), 3.0).is_err());
        // The retained epoch still answers.
        assert_eq!(db.position_of_as_of(ObjectId(1), 7.0).unwrap().arc, 15.0);
        // History disabled entirely.
        let cfg = DatabaseConfig {
            history_capacity: 0,
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(network(), cfg);
        db.register_moving(object(2, 10.0, 1.0)).unwrap();
        db.apply_update(
            ObjectId(2),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        assert!(db.history_of(ObjectId(2)).is_empty());
        assert!(db.position_of_as_of(ObjectId(2), 3.0).is_err());
    }

    #[test]
    fn removal_clears_history() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        db.remove_moving(ObjectId(1)).unwrap();
        assert!(db.history_of(ObjectId(1)).is_empty());
    }

    #[test]
    fn expire_trips_removes_ended_objects() {
        let mut a = object(1, 10.0, 1.0);
        a.trip_end = Some(5.0);
        let mut b = object(2, 20.0, 1.0);
        b.trip_end = Some(50.0);
        let c = object(3, 30.0, 1.0); // no known end
        let mut db = db_with(vec![a, b, c]);
        let expired = db.expire_trips(10.0);
        assert_eq!(expired, vec![ObjectId(1)]);
        assert_eq!(db.moving_count(), 2);
        // Queries no longer see the expired object.
        let ans = db.range_query(&rect_region(0.0, 100.0, 10.0)).unwrap();
        assert!(!ans.all().contains(&ObjectId(1)));
        // Nothing else expires yet.
        assert!(db.expire_trips(20.0).is_empty());
    }

    #[test]
    fn find_by_name() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.insert_stationary(StationaryObject::new(
            ObjectId(50),
            "depot",
            Point::new(0.0, 0.0),
        ))
        .unwrap();
        assert_eq!(db.find_moving_by_name("veh-1").unwrap().id, ObjectId(1));
        assert!(db.find_moving_by_name("ghost").is_none());
        assert_eq!(
            db.find_stationary_by_name("depot").unwrap().id,
            ObjectId(50)
        );
        assert!(db.find_stationary_by_name("nowhere").is_none());
    }

    #[test]
    fn from_parts_restores_state_and_reindexes() {
        let mut db = db_with(vec![object(1, 10.0, 1.0), object(2, 40.0, 0.5)]);
        db.insert_stationary(StationaryObject::new(
            ObjectId(100),
            "depot",
            Point::new(12.0, 0.0),
        ))
        .unwrap();
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        // Disassemble through the public accessors, as a snapshot would.
        let moving: Vec<_> = db
            .moving_objects()
            .map(|o| (o.clone(), db.history_of(o.id).to_vec()))
            .collect();
        let stationary: Vec<_> = db.stationary_objects().cloned().collect();
        let rebuilt =
            Database::from_parts(db.network().clone(), *db.config(), stationary, moving).unwrap();
        assert_eq!(rebuilt.moving_count(), 2);
        assert_eq!(rebuilt.stationary_count(), 1);
        assert_eq!(rebuilt.history_of(ObjectId(1)).len(), 1);
        // Identical query answers, index path included.
        for t in [0.0, 5.0, 9.0] {
            assert_eq!(
                rebuilt.position_of(ObjectId(1), t).unwrap(),
                db.position_of(ObjectId(1), t).unwrap()
            );
            let region = rect_region(0.0, 100.0, t);
            let a = rebuilt.range_query(&region).unwrap();
            let b = db.range_query(&region).unwrap();
            assert_eq!(a.must, b.must);
            assert_eq!(a.may, b.may);
        }
        assert_eq!(
            rebuilt.position_of_as_of(ObjectId(1), 3.0).unwrap(),
            db.position_of_as_of(ObjectId(1), 3.0).unwrap()
        );
    }

    #[test]
    fn insert_route_grows_network() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        db.insert_route(
            Route::from_vertices(
                RouteId(7),
                "new",
                vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)],
            )
            .unwrap(),
        )
        .unwrap();
        assert!(db.network().get(RouteId(7)).is_ok());
        // Duplicate id rejected.
        let dup =
            Route::from_vertices(RouteId(7), "dup", vec![Point::ORIGIN, Point::new(1.0, 0.0)])
                .unwrap();
        assert!(matches!(db.insert_route(dup), Err(CoreError::Route(_))));
        // Objects can move onto the new route.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::route_change(
                1.0,
                RouteId(7),
                UpdatePosition::Arc(5.0),
                Direction::Forward,
                1.0,
            ),
        )
        .unwrap();
        assert_eq!(db.moving(ObjectId(1)).unwrap().attr.route, RouteId(7));
    }

    /// Observable equivalence: stored state, history, position answers,
    /// and index-backed range answers (checked against the scan baseline
    /// on both sides, so a desynced index cannot hide).
    #[test]
    fn set_max_speed_migrates_bands_and_syncs() {
        let cfg = DatabaseConfig {
            bands: BandConfig::uniform(&[1.0], 5.0).unwrap(),
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(network(), cfg);
        let mut o = object(1, 10.0, 0.5);
        o.max_speed = 0.8;
        db.register_moving(o).unwrap();
        let mut shadow = db.clone();
        let cursor = db.change_cursor();
        assert_eq!(db.index_band_stats()[0].entries, 1);

        // Reclassified for highway duty: the entry migrates bands.
        db.set_max_speed(ObjectId(1), 2.5).unwrap();
        assert_eq!(db.index_band_migrations(), 1);
        let stats = db.index_band_stats();
        assert_eq!((stats[0].entries, stats[1].entries), (0, 1));
        assert_eq!(db.moving(ObjectId(1)).unwrap().max_speed, 2.5);

        // Bad inputs leave the stored value untouched.
        assert!(db.set_max_speed(ObjectId(1), f64::NAN).is_err());
        assert!(db.set_max_speed(ObjectId(1), -1.0).is_err());
        assert!(db.set_max_speed(ObjectId(9), 1.0).is_err());
        assert_eq!(db.moving(ObjectId(1)).unwrap().max_speed, 2.5);

        // A delta-synced shadow mirrors the migration.
        let report = shadow.sync_from(&db, cursor);
        assert!(!report.full_resync);
        let s = shadow.index_band_stats();
        assert_eq!((s[0].entries, s[1].entries), (0, 1));
        assert_same_view(&shadow, &db);
    }

    #[test]
    fn banded_config_partitions_index_and_shadow_syncs() {
        let cfg = DatabaseConfig {
            bands: BandConfig::uniform(&[1.0], 5.0).unwrap(),
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(network(), cfg);
        let mut slow = object(1, 10.0, 0.5);
        slow.max_speed = 0.8;
        let mut fast = object(2, 60.0, 1.2);
        fast.max_speed = 2.5;
        db.register_moving(slow).unwrap();
        db.register_moving(fast).unwrap();
        let stats = db.index_band_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!((stats[0].entries, stats[1].entries), (1, 1));
        assert_eq!(db.index_band_migrations(), 0);
        assert_eq!(db.index_tree_stats().0, 2);

        // Banded index answers are identical to the exhaustive scan.
        let mut shadow = db.clone();
        let cursor = db.change_cursor();
        assert_same_view(&db, &db.clone());

        // Delta-sync mirrors band membership: the shadow's per-band
        // entry counts track the source after updates flow through.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(12.0), 0.6),
        )
        .unwrap();
        let report = shadow.sync_from(&db, cursor);
        assert!(!report.full_resync);
        let (a, b) = (shadow.index_band_stats(), db.index_band_stats());
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.entries, sb.entries);
        }
        assert_same_view(&shadow, &db);
    }

    fn assert_same_view(a: &Database, b: &Database) {
        assert_eq!(a.moving_count(), b.moving_count());
        assert_eq!(a.stationary_count(), b.stationary_count());
        assert_eq!(a.network().len(), b.network().len());
        let mut ids: Vec<ObjectId> = a.moving_ids().collect();
        ids.sort_unstable();
        let mut b_ids: Vec<ObjectId> = b.moving_ids().collect();
        b_ids.sort_unstable();
        assert_eq!(ids, b_ids);
        for &id in &ids {
            assert_eq!(a.moving(id).unwrap(), b.moving(id).unwrap());
            assert_eq!(a.history_of(id), b.history_of(id));
        }
        for t in [0.0, 3.0, 8.0] {
            let region = rect_region(0.0, 100.0, t);
            let ra = a.range_query(&region).unwrap();
            let rb = b.range_query(&region).unwrap();
            assert_eq!(ra.must, rb.must, "t={t}");
            assert_eq!(ra.may, rb.may, "t={t}");
            let scan = a.range_query_scan(&region).unwrap();
            assert_eq!(ra.must, scan.must, "index vs scan t={t}");
            assert_eq!(ra.may, scan.may, "index vs scan t={t}");
        }
    }

    #[test]
    fn sync_from_applies_deltas_incrementally() {
        let mut db = db_with(vec![object(1, 10.0, 1.0), object(2, 30.0, 1.0)]);
        let mut shadow = db.clone();
        let cursor = db.change_cursor();
        // One mutation of every kind.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        db.remove_moving(ObjectId(2)).unwrap();
        let mut fixed = object(3, 60.0, 1.0);
        fixed.attr.policy = PolicyDescriptor::FixedBound { bound: 1.0 };
        db.register_moving(fixed).unwrap();
        db.insert_stationary(StationaryObject::new(
            ObjectId(100),
            "depot",
            Point::new(12.0, 0.0),
        ))
        .unwrap();
        db.insert_route(
            Route::from_vertices(
                RouteId(9),
                "new",
                vec![Point::new(0.0, 20.0), Point::new(100.0, 20.0)],
            )
            .unwrap(),
        )
        .unwrap();

        let report = shadow.sync_from(&db, cursor);
        assert!(!report.full_resync);
        assert!(
            report.applied >= 4,
            "moving x3 + stationary + route touched"
        );
        assert_eq!(report.cursor, db.change_cursor());
        assert_same_view(&shadow, &db);
        // A second sync from the returned cursor is a no-op.
        let again = shadow.sync_from(&db, report.cursor);
        assert!(!again.full_resync);
        assert_eq!(again.applied, 0);
        assert_same_view(&shadow, &db);
    }

    #[test]
    fn sync_from_falls_back_to_full_clone_when_log_truncated() {
        let cfg = DatabaseConfig {
            change_log_capacity: 2,
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(network(), cfg);
        db.register_moving(object(1, 10.0, 1.0)).unwrap();
        let mut shadow = db.clone();
        let cursor = db.change_cursor();
        // More changes than the log retains: the cursor is evicted.
        for i in 2..=5 {
            db.register_moving(object(i, 10.0 * i as f64, 1.0)).unwrap();
        }
        let report = shadow.sync_from(&db, cursor);
        assert!(report.full_resync);
        assert_eq!(report.cursor, db.change_cursor());
        assert_same_view(&shadow, &db);
    }

    #[test]
    fn changes_since_reports_truncation() {
        let cfg = DatabaseConfig {
            change_log_capacity: 2,
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(network(), cfg);
        let cursor = db.change_cursor();
        db.register_moving(object(1, 10.0, 1.0)).unwrap();
        db.register_moving(object(2, 20.0, 1.0)).unwrap();
        assert_eq!(db.changes_since(cursor).unwrap().len(), 2);
        db.register_moving(object(3, 30.0, 1.0)).unwrap();
        assert!(db.changes_since(cursor).is_none(), "evicted → resync");
        assert_eq!(db.changes_since(db.change_cursor()).unwrap().len(), 0);
    }

    #[test]
    fn clones_share_the_network_until_a_route_is_inserted() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        let clone = db.clone();
        assert!(Arc::ptr_eq(&db.network_arc(), &clone.network_arc()));
        db.insert_route(
            Route::from_vertices(
                RouteId(9),
                "new",
                vec![Point::new(0.0, 20.0), Point::new(100.0, 20.0)],
            )
            .unwrap(),
        )
        .unwrap();
        // Copy-on-write: the clone keeps the old map.
        assert!(!Arc::ptr_eq(&db.network_arc(), &clone.network_arc()));
        assert!(db.network().get(RouteId(9)).is_ok());
        assert!(clone.network().get(RouteId(9)).is_err());
    }

    #[test]
    fn identical_update_is_an_idempotent_noop() {
        let mut db = db_with(vec![object(1, 10.0, 1.0)]);
        let msg = UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5);
        db.apply_update(ObjectId(1), &msg).unwrap();
        let attr = db.moving(ObjectId(1)).unwrap().attr.clone();
        let cursor = db.change_cursor();
        // Re-delivering the exact same update (the WAL-replay case)
        // succeeds without a duplicate history entry or a new change.
        db.apply_update(ObjectId(1), &msg).unwrap();
        assert_eq!(db.history_of(ObjectId(1)).len(), 1);
        assert_eq!(db.moving(ObjectId(1)).unwrap().attr, attr);
        assert_eq!(db.changes_since(cursor).unwrap().len(), 0);
        // A same-time update with different content is a real change —
        // but it coalesces in place (no history push): two versions in
        // force at one instant would be an infinite-speed trajectory.
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(15.0), 0.5),
        )
        .unwrap();
        assert_eq!(db.history_of(ObjectId(1)).len(), 1);
        assert_eq!(db.moving(ObjectId(1)).unwrap().attr.start_arc, 15.0);
        assert_eq!(db.changes_since(cursor).unwrap().len(), 1);
    }

    #[test]
    fn stationary_lookup() {
        let mut db = db_with(vec![]);
        db.insert_stationary(StationaryObject::new(
            ObjectId(1),
            "33 N Michigan Ave",
            Point::new(1.0, 1.0),
        ))
        .unwrap();
        assert_eq!(
            db.stationary(ObjectId(1)).unwrap().name,
            "33 N Michigan Ave"
        );
        assert!(matches!(
            db.insert_stationary(StationaryObject::new(ObjectId(1), "dup", Point::ORIGIN)),
            Err(CoreError::DuplicateObject(_))
        ));
        assert_eq!(db.stationary_count(), 1);
    }
}
