//! Object classes (§2): mobile and stationary point objects.

use modb_geom::Point;

/// Opaque identifier of an object in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// A stationary point object — an address, landmark, or depot (e.g.
/// "33 N. Michigan Ave." in the paper's taxi query). Its position
/// attribute is just the coordinate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryObject {
    /// Identifier.
    pub id: ObjectId,
    /// Human-readable name.
    pub name: String,
    /// Fixed position.
    pub position: Point,
}

impl StationaryObject {
    /// Creates a stationary object.
    pub fn new(id: ObjectId, name: impl Into<String>, position: Point) -> Self {
        StationaryObject {
            id,
            name: name.into(),
            position,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_object_construction() {
        let o = StationaryObject::new(ObjectId(1), "depot", Point::new(1.0, 2.0));
        assert_eq!(o.id, ObjectId(1));
        assert_eq!(o.name, "depot");
        assert_eq!(o.position, Point::new(1.0, 2.0));
    }

    #[test]
    fn object_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ObjectId(1));
        s.insert(ObjectId(1));
        s.insert(ObjectId(2));
        assert_eq!(s.len(), 2);
        assert!(ObjectId(1) < ObjectId(2));
    }
}
