//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync::RwLock` behind the `parking_lot` calling
//! convention the workspace uses: `read()` / `write()` return guards
//! directly rather than `Result`s. Poisoning is swallowed (as
//! `parking_lot` never poisons): a panic mid-critical-section lets the
//! next locker proceed with whatever state the panicker left, exactly
//! the semantics the real crate provides.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in an unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Takes a shared read guard, blocking while a writer holds the
    /// lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes the exclusive write guard, blocking until all readers and
    /// writers release.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn guards_are_not_poisoned_by_panics() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
