//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Re-implements the API subset this workspace's property tests use:
//! the `proptest!` macro with `#![proptest_config(..)]`, `prop_assert*`
//! / `prop_assume!`, range and tuple strategies, `prop_map`, `Just`,
//! `prop_oneof!`, `collection::vec`, `option::of`, and `any::<T>()`.
//!
//! Differences from upstream, deliberately accepted for a vendored
//! test-only stand-in:
//!
//! - **No shrinking.** A failing case reports the generated inputs and
//!   the case number; it is not minimized.
//! - **Deterministic seeding.** Cases derive from a fixed seed mixed
//!   with the test's name, so every run explores the same inputs — a
//!   failure seen once reproduces every time, and CI never flakes.
//! - **`prop_assume!` passes instead of retrying** (the case counts as
//!   vacuous rather than being regenerated).

pub mod strategy;

pub mod test_runner {
    //! Test configuration and the per-test RNG.

    /// How many random cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test (upstream default: 256).
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases, other knobs default.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a generated case did not pass: a failed assertion
    /// (`Fail`) or a rejected precondition (`Reject`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed with the contained message.
        Fail(String),
        /// The case was rejected (upstream regenerates; this stand-in
        /// counts it as a vacuous pass).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64 generator seeded from the test name: deterministic
    /// per test, different streams for different tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, folded into a golden base seed.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`: the canonical whole-domain strategy of a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy over their whole domain.
    pub trait ArbitraryValue {
        /// One uniformly distributed value of the type.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: ArbitraryValue + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy of `T`: uniform over the whole domain.
    pub fn any<T: ArbitraryValue + std::fmt::Debug>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies over collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Strategies over `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: Some three times out of four,
            // so optional fields are mostly exercised but None stays
            // covered.
            if rng.below(4) < 3 {
                Some(self.0.new_value(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some` of an `inner` value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; the body runs once per generated case. Supports a
/// leading `#![proptest_config(..)]` to set the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@with ($cfg); $($rest)*}
    };
    (@with ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                        #[allow(unused_mut)]
                        let mut body =
                            || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            };
                        body()
                    };
                    match outcome {
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            ::std::panic!(
                                "proptest case {}/{} of `{}` failed:\n{}",
                                case + 1,
                                config.cases,
                                stringify!($name),
                                message,
                            );
                        }
                        // Rejected cases count as vacuous passes
                        // (upstream regenerates them instead).
                        _ => {}
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@with ($crate::test_runner::Config::default()); $($rest)*}
    };
}

/// Fails the current case unless `cond` holds. Inside `proptest!`
/// bodies only (expands to an early `return Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("{}: `{:?}` == `{:?}`", ::std::format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
}

/// Skips the current case (counting it as a vacuous pass) unless
/// `cond` holds. Upstream regenerates the case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// A strategy drawing uniformly from the listed strategies (all must
/// share a `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(1u64), 10u64..20, (100u64..=109).prop_map(|x| x)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(
            x in 0u64..10,
            f in -1.0f64..1.0,
            v in crate::collection::vec(small(), 0..5),
            o in crate::option::of(0u64..3),
            b in any::<bool>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(v.len() < 5);
            for y in v {
                prop_assert!(y == 1 || (10..20).contains(&y) || (100..110).contains(&y));
            }
            if let Some(z) = o {
                prop_assert!(z < 3, "z out of bounds: {}", z);
            }
            prop_assume!(b || x < 10);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0u32..4, Just("tag"))) {
            let (n, tag) = pair;
            prop_assert!(n < 4);
            prop_assert_eq!(tag, "tag");
        }
    }

    #[test]
    fn deterministic_streams_differ_by_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("b");
        let mut a2 = TestRng::deterministic("a");
        assert_ne!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), {
            a2.next_u64();
            a2.next_u64()
        });
    }
}
