//! The [`Strategy`] trait and combinators: ranges, tuples, [`Just`],
//! [`Map`], [`Union`] (behind `prop_oneof!`), and [`BoxedStrategy`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Object safety: only [`Strategy::new_value`] is dynamically
/// dispatchable; the combinators require `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy generating `f` of this strategy's values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type (needed to mix differently
    /// typed strategies in one `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Uniform choice among several strategies (the `prop_oneof!`
/// expansion; upstream supports weights, this stand-in draws
/// uniformly).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].new_value(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union {{ options: {} }}", self.options.len())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::deterministic("union_draws_every_arm");
        let u = Union::new(vec![
            Just(0u8).boxed(),
            Just(1u8).boxed(),
            Just(2u8).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tuples_thread_one_rng() {
        let mut rng = TestRng::deterministic("tuples_thread_one_rng");
        for _ in 0..50 {
            let (a, b, c) = (0u64..4, -1.0f64..1.0, Just(7u8)).new_value(&mut rng);
            assert!(a < 4);
            assert!((-1.0..1.0).contains(&b));
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn map_applies_the_function() {
        let mut rng = TestRng::deterministic("map_applies_the_function");
        let s = (1u64..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }
}
