//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers with no network access and no
//! registry cache, so external crates are vendored as minimal local
//! implementations (see `vendor/README.md`). This crate re-implements
//! exactly the `rand` 0.8 API subset the workspace uses: `StdRng` +
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`
//! over integer and float ranges.
//!
//! The generator is SplitMix64 — statistically fine for simulations and
//! tests, NOT cryptographic, and a *different stream* than upstream
//! `rand`'s ChaCha-backed `StdRng`: seeds remain deterministic but
//! produce different sequences than upstream would.

/// A seedable pseudo-random generator core.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce (upstream: `Standard: Distribution<T>`).
pub trait Standard01 {
    /// Draws one value from the generator's "standard" distribution:
    /// uniform `[0, 1)` for floats, uniform bits for integers, a fair
    /// coin for `bool`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) at full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard01 for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard01 for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard01 for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] accepts (upstream: `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = Standard01::draw(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u: f64 = Standard01::draw(rng);
                start + (u as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// One value from the standard distribution of `T` (see
    /// [`Standard01`]).
    fn gen<T: Standard01>(&mut self) -> T {
        T::draw(self)
    }

    /// A value uniform in `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard01::draw(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit SplitMix64 generator (upstream's `StdRng`
    /// is ChaCha12 — same role, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): one 64-bit add and
            // two xor-shift-multiply finalization rounds per output.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-8i32..=8);
            assert!((-8..=8).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
