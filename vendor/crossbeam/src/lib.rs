//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Provides `crossbeam::channel`'s bounded MPMC channel over
//! `std::sync::mpsc::sync_channel`. The std receiver is single-consumer,
//! so the stand-in shares it behind an `Arc<Mutex<..>>`: clones contend
//! on the mutex instead of on a lock-free queue. Throughput under heavy
//! multi-consumer load is worse than real crossbeam; semantics
//! (blocking bounded sends, rendezvous at capacity 0, disconnect on
//! last-handle drop) are the same.

pub mod channel {
    //! Multi-producer multi-consumer bounded channels.

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Sending half; clone freely across threads.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                queued: self.queued.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half; clone freely (clones share one queue — each
    /// message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
                queued: self.queued.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// The channel is disconnected: every receiver is gone and `msg`
    /// was not delivered.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// The channel is empty and every sender is gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Why a non-blocking receive returned nothing.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// No message waiting right now.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Why a bounded-wait receive returned nothing.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`cap == 0` is a rendezvous channel: every send blocks for its
    /// receive).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                queued: queued.clone(),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
                queued,
            },
        )
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map(|()| {
                    self.queued.fetch_add(1, Ordering::Relaxed);
                })
                .map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Messages currently queued (delivered but not yet received).
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::Relaxed)
        }

        /// `true` when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Takes the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender is gone and the queue is
        /// drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError).inspect(|_| {
                self.queued.fetch_sub(1, Ordering::Relaxed);
            })
        }

        /// Takes the next message if one is already queued.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock()
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
                .inspect(|_| {
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                })
        }

        /// Takes the next message, blocking at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock()
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
                .inspect(|_| {
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                })
        }

        /// Blocking iterator over incoming messages; ends when every
        /// sender is gone and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip_and_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_fires_when_empty() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_errors_once_receivers_are_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx1) = bounded(4);
        let rx2 = rx1.clone();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let mut got = vec![rx1.recv().unwrap(), rx2.recv().unwrap()];
        got.push(rx1.recv().unwrap());
        got.push(rx2.recv().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
