//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the workspace's `[[bench]]` targets compiling and runnable
//! without the real statistics engine: each benchmark runs a short
//! timed loop and prints a mean per-iteration time. No warm-up
//! modeling, no outlier analysis, no HTML reports — numbers are
//! indicative only. The API mirrors the subset the benches use:
//! `Criterion::{bench_function, benchmark_group}`, groups with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.

use std::time::Instant;

/// Opaque-to-the-optimizer identity, so benchmarked results are not
/// dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    /// An id rendered as just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    label: String,
}

impl Bencher {
    /// Times `routine` over a fixed small iteration count and prints
    /// the mean (upstream calibrates the count statistically).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / self.iters.max(1) as u32;
        println!(
            "{:<56} {:>12?}/iter ({} iters)",
            self.label, per_iter, self.iters
        );
    }
}

fn run_one(label: String, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters: 10, label };
    f(&mut b);
}

/// Top-level benchmark registry (the `c` in `fn bench(c: &mut
/// Criterion)`).
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }

    /// Accepted for API compatibility; the stand-in's iteration count
    /// is fixed.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration count
    /// is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group's prefix.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(format!("{}/{}", self.prefix, name), f);
        self
    }

    /// Runs one parameterized benchmark; the closure receives the
    /// borrowed input.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(format!("{}/{}", self.prefix, id), |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits summary reports here).
    pub fn finish(self) {}
}

/// Upstream-compatible measurement knob; unused by the stand-in.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallTime;

/// Bundles benchmark functions into one runner, mirroring upstream's
/// plain `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs >= 10, "iter must drive the routine");
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::new("p", 3), &3u64, |b, &n| {
            b.iter(|| hits += n)
        });
        group.finish();
        assert!(hits >= 30);
    }
}
