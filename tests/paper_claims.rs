//! Integration tests pinning the paper's quantitative and qualitative
//! claims (the experiment suite at test scale).

use modb::sim::experiments::bound_shape::run_bound_shape;
use modb::sim::experiments::example1::run_example1;
use modb::sim::experiments::indexing::{run_may_must, run_sublinear};
use modb::sim::experiments::policy_sweep::{run_sweep, SweepConfig};
use modb::sim::experiments::savings::run_savings;
use modb::sim::WorkloadConfig;

fn small_workload(n: usize, minutes: f64) -> WorkloadConfig {
    WorkloadConfig {
        n_trips: n,
        duration: minutes,
        ..WorkloadConfig::default()
    }
}

/// §3.4: the ail policy is superior to dl and cil on total cost.
#[test]
fn ail_wins_on_total_cost() {
    let r = run_sweep(&SweepConfig {
        seed: 7,
        workload: small_workload(12, 30.0),
        c_values: vec![1.0, 5.0, 20.0],
        include_baselines: false,
        ..SweepConfig::default()
    });
    let mut ail_wins = 0;
    let mut cells = 0;
    for &c in &[1.0, 5.0, 20.0] {
        let ail = r.get("ail", c).unwrap().total_cost;
        for other in ["dl", "cil"] {
            cells += 1;
            if ail <= r.get(other, c).unwrap().total_cost + 1e-9 {
                ail_wins += 1;
            }
        }
    }
    assert!(
        ail_wins >= cells - 1,
        "ail should win (or tie) almost everywhere: {ail_wins}/{cells}"
    );
}

/// §3.4: ail's average uncertainty beats dl's at every cost level (the
/// decaying bound).
#[test]
fn ail_uncertainty_beats_dl() {
    let r = run_sweep(&SweepConfig {
        seed: 8,
        workload: small_workload(10, 30.0),
        c_values: vec![1.0, 5.0, 20.0],
        include_baselines: false,
        ..SweepConfig::default()
    });
    for &c in &[1.0, 5.0, 20.0] {
        assert!(
            r.get("ail", c).unwrap().avg_uncertainty
                <= r.get("dl", c).unwrap().avg_uncertainty + 1e-9,
            "C={c}"
        );
    }
}

/// §1: update frequency decreases as the update cost increases.
#[test]
fn messages_monotone_in_cost() {
    let r = run_sweep(&SweepConfig {
        seed: 9,
        workload: small_workload(10, 30.0),
        c_values: vec![0.5, 5.0, 50.0],
        include_baselines: false,
        ..SweepConfig::default()
    });
    for p in ["dl", "ail", "cil"] {
        let m05 = r.get(p, 0.5).unwrap().messages;
        let m5 = r.get(p, 5.0).unwrap().messages;
        let m50 = r.get(p, 50.0).unwrap().messages;
        assert!(m05 >= m5 && m5 >= m50, "{p}: {m05} {m5} {m50}");
    }
}

/// §3.3: the bounds are never violated across the full sweep.
#[test]
fn bounds_sound_across_sweep() {
    let r = run_sweep(&SweepConfig {
        seed: 10,
        workload: small_workload(8, 20.0),
        c_values: vec![0.5, 5.0, 50.0],
        include_baselines: true,
        ..SweepConfig::default()
    });
    assert_eq!(r.total_bound_violations(), 0);
}

/// §1/§6: the cost-based policies need a small fraction of the
/// traditional method's updates at matched imprecision (paper: ~15 %).
#[test]
fn savings_match_headline() {
    let rows = run_savings(11, small_workload(12, 30.0), 5.0);
    for row in &rows {
        assert!(
            row.ratio < 0.35,
            "{}: ratio {:.2} nowhere near the ~0.15 headline",
            row.policy,
            row.ratio
        );
    }
    // At least one policy should be in the paper's ballpark.
    assert!(
        rows.iter().any(|r| r.ratio < 0.2),
        "no policy reached ≤20%: {:?}",
        rows.iter().map(|r| r.ratio).collect::<Vec<_>>()
    );
}

/// Example 1: every worked number matches within 1 %.
#[test]
fn example1_numbers() {
    for row in run_example1() {
        assert!(
            row.rel_error() < 0.01,
            "{}: paper {} vs computed {}",
            row.quantity,
            row.paper,
            row.computed
        );
    }
}

/// §3.3: the dl bound plateaus, the immediate bound decays.
#[test]
fn bound_shapes() {
    let rows = run_bound_shape(1.0, 1.5, 5.0, 15.0, 0.25);
    let n = rows.len();
    assert!((rows[n - 1].dl_combined - rows[n - 5].dl_combined).abs() < 1e-12);
    assert!(rows[n - 1].imm_combined < rows[n / 3].imm_combined);
}

/// §4: the index visits far fewer entries than the fleet and agrees with
/// the scan (agreement asserted inside run_sublinear).
#[test]
fn index_is_selective() {
    let rows = run_sublinear(&[600], 8);
    assert!(
        rows[0].candidates < 300.0,
        "candidates {}",
        rows[0].candidates
    );
}

/// Theorems 5–6: may/must answers bracket simulated ground truth.
#[test]
fn may_must_sound() {
    let r = run_may_must(200, 12, 8.0);
    assert_eq!(r.violations, 0, "{r:?}");
}
