//! Route-change integration: a journey spanning two routes, with the §3.1
//! forced update at the route change, driven end to end through the DBMS.

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::Point;
use modb::motion::{Journey, SpeedCurve, Trip};
use modb::policy::{BoundKind, Policy, PolicyEngine, PositionUpdate, Quintuple};
use modb::routes::{Direction, Route, RouteId, RouteNetwork};

const C: f64 = 5.0;
const DT: f64 = 1.0 / 60.0;

fn network() -> RouteNetwork {
    RouteNetwork::from_routes([
        Route::from_vertices(
            RouteId(1),
            "main-street",
            vec![Point::new(0.0, 0.0), Point::new(30.0, 0.0)],
        )
        .unwrap(),
        Route::from_vertices(
            RouteId(2),
            "cross-street",
            vec![Point::new(10.0, -20.0), Point::new(10.0, 20.0)],
        )
        .unwrap(),
    ])
    .unwrap()
}

#[test]
fn journey_with_route_change_stays_queryable() {
    let net = network();
    let mut db = Database::new(net, DatabaseConfig::default());

    // Leg 1: 10 minutes east on main street from arc 0 at 1 mi/min.
    // Leg 2: turn onto the cross street at (10, 0) — arc 20 on route 2 —
    // and drive north for 10 minutes at 0.8 mi/min (declared 1.0, so the
    // policy has work to do).
    let leg1 = Trip::new(
        RouteId(1),
        Direction::Forward,
        0.0,
        0.0,
        SpeedCurve::constant(1.0, 10 * 60, DT).unwrap(),
    )
    .unwrap();
    let leg2 = Trip::new(
        RouteId(2),
        Direction::Forward,
        20.0,
        10.0,
        SpeedCurve::constant(0.8, 10 * 60, DT).unwrap(),
    )
    .unwrap();
    let journey = Journey::new(vec![leg1, leg2]).unwrap();
    assert_eq!(journey.route_change_times(), vec![10.0]);

    db.register_moving(MovingObject {
        id: ObjectId(1),
        name: "turner".into(),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(0.0, 0.0),
            start_arc: 0.0,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: C,
            },
        },
        max_speed: 1.5,
        trip_end: Some(20.0),
    })
    .unwrap();

    // Onboard loop over the journey: the engine is rebuilt at the route
    // change (a new route means fresh arc coordinates), and a
    // route-change update is forced regardless of the deviation — the
    // infinite cross-route distance of §3.1.
    let mut engine = PolicyEngine::new(
        Quintuple::ail(C),
        30.0,
        1.0,
        PositionUpdate {
            time: 0.0,
            arc: 0.0,
            speed: 1.0,
        },
    )
    .unwrap();
    let mut messages = 0;
    let mut current_route = RouteId(1);
    let n_ticks = (20.0 / DT).round() as usize;
    for step in 1..=n_ticks {
        let t = step as f64 * DT;
        let leg = journey.leg_at(t);
        let route = db.network().get(leg.route()).unwrap().clone();
        let arc = leg.arc_at(&route, t);
        let speed = leg.speed_at(t);
        if leg.route() != current_route {
            // Forced route-change update: new route, current position,
            // current speed. Rebuild the onboard engine on the new route.
            current_route = leg.route();
            let msg = UpdateMessage::route_change(
                t,
                current_route,
                UpdatePosition::Arc(arc),
                Direction::Forward,
                speed,
            );
            db.apply_update(ObjectId(1), &msg).unwrap();
            engine = PolicyEngine::new(
                Quintuple::ail(C),
                route.length(),
                1.0,
                PositionUpdate {
                    time: t,
                    arc,
                    speed,
                },
            )
            .unwrap();
            messages += 1;
            continue;
        }
        if let Some(u) = engine.tick(t, arc, speed).unwrap() {
            db.apply_update(
                ObjectId(1),
                &UpdateMessage::basic(u.time, UpdatePosition::Arc(u.arc), u.speed),
            )
            .unwrap();
            messages += 1;
        }
    }
    assert!(messages >= 1, "at least the route change must be sent");

    // Mid-leg-1 historical belief (as-of) vs final state.
    let stored = db.moving(ObjectId(1)).unwrap();
    assert_eq!(stored.attr.route, RouteId(2), "route change persisted");

    // Current position: on the cross street, y ≈ (t−10)·0.8 above −20+20.
    let ans = db.position_of(ObjectId(1), 20.0).unwrap();
    let actual = journey
        .leg_at(20.0 - 1e-9)
        .position_at(&db.network().get(RouteId(2)).unwrap().clone(), 20.0);
    assert!(
        (ans.position.x - 10.0).abs() < 1e-9,
        "db position must be on the cross street"
    );
    let deviation = ans.position.distance(actual);
    assert!(
        deviation <= ans.bound + 1.5 * DT + 1e-9,
        "deviation {deviation} exceeds bound {}",
        ans.bound
    );

    // Range query via the text language finds it on the new route.
    let r = modb::query::run(
        &db,
        "RETRIEVE OBJECTS INSIDE RECT (5, -5, 15, 20) AT TIME 20",
    )
    .unwrap();
    assert_eq!(r.as_range().unwrap().all(), vec![ObjectId(1)]);
    // And not on the old one.
    let r = modb::query::run(
        &db,
        "RETRIEVE OBJECTS INSIDE RECT (20, -3, 30, 3) AT TIME 20",
    )
    .unwrap();
    assert!(r.as_range().unwrap().all().is_empty());
}

#[test]
fn stale_route_change_rejected_keeps_old_route() {
    let net = network();
    let mut db = Database::new(net, DatabaseConfig::default());
    db.register_moving(MovingObject {
        id: ObjectId(1),
        name: "veh".into(),
        attr: PositionAttribute {
            start_time: 5.0,
            route: RouteId(1),
            start_position: Point::new(0.0, 0.0),
            start_arc: 0.0,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: C,
            },
        },
        max_speed: 1.5,
        trip_end: None,
    })
    .unwrap();
    let stale = UpdateMessage::route_change(
        4.0,
        RouteId(2),
        UpdatePosition::Arc(20.0),
        Direction::Forward,
        1.0,
    );
    assert!(db.apply_update(ObjectId(1), &stale).is_err());
    assert_eq!(db.moving(ObjectId(1)).unwrap().attr.route, RouteId(1));
}
