//! End-to-end integration: onboard policy engines feeding the DBMS over a
//! simulated wireless link, with queries checked against ground truth.

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::{Point, Polygon, Rect};
use modb::index::QueryRegion;
use modb::motion::{Trip, TripProfile};
use modb::policy::{BoundKind, Policy, PolicyEngine, PositionUpdate, Quintuple};
use modb::routes::{Direction, Route, RouteId, RouteNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

const C: f64 = 5.0;
const N: usize = 10;
const DT: f64 = 1.0 / 60.0;

struct World {
    db: Database,
    engines: Vec<PolicyEngine>,
    trips: Vec<Trip>,
    route: Route,
    /// Simulation time already driven (see `drive_until`).
    frontier: f64,
}

fn build_world(seed: u64, quintuple_for: fn(f64) -> Quintuple, kind: BoundKind) -> World {
    let route = Route::from_vertices(
        RouteId(1),
        "loop",
        vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 10.0),
            Point::new(100.0, 0.0),
            Point::new(150.0, 10.0),
        ],
    )
    .unwrap();
    let network = RouteNetwork::from_routes([route.clone()]).unwrap();
    let mut db = Database::new(network, DatabaseConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engines = Vec::new();
    let mut trips = Vec::new();
    for i in 0..N {
        let start_arc = 5.0 * i as f64;
        let profile = TripProfile::ALL[i % TripProfile::ALL.len()];
        let curve = profile.generate(&mut rng, 30.0, DT).unwrap();
        let trip = Trip::new(RouteId(1), Direction::Forward, start_arc, 0.0, curve).unwrap();
        let v0 = trip.speed_at(DT);
        db.register_moving(MovingObject {
            id: ObjectId(i as u64),
            name: format!("veh-{i}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: route.point_at(start_arc),
                start_arc,
                direction: Direction::Forward,
                speed: v0,
                policy: PolicyDescriptor::CostBased {
                    kind,
                    update_cost: C,
                },
            },
            max_speed: trip.max_speed().max(0.1),
            trip_end: Some(30.0),
        })
        .unwrap();
        engines.push(
            PolicyEngine::new(
                quintuple_for(C),
                route.length(),
                1.0,
                PositionUpdate {
                    time: 0.0,
                    arc: start_arc,
                    speed: v0,
                },
            )
            .unwrap(),
        );
        trips.push(trip);
    }
    World {
        db,
        engines,
        trips,
        route,
        frontier: 0.0,
    }
}

/// Advances the world from its current frontier to `t_end`, forwarding
/// every fired update to the DB. Tracks the frontier in `World::frontier`.
fn drive_until(world: &mut World, t_end: f64) -> usize {
    let first = (world.frontier / DT).round() as usize + 1;
    let last = (t_end / DT).round() as usize;
    let mut messages = 0;
    for step in first..=last {
        let t = step as f64 * DT;
        for (i, (engine, trip)) in world.engines.iter_mut().zip(&world.trips).enumerate() {
            let arc = trip.arc_at(&world.route, t);
            let speed = trip.speed_at(t);
            if let Some(u) = engine.tick(t, arc, speed).unwrap() {
                messages += 1;
                world
                    .db
                    .apply_update(
                        ObjectId(i as u64),
                        &UpdateMessage::basic(u.time, UpdatePosition::Arc(u.arc), u.speed),
                    )
                    .unwrap();
            }
        }
    }
    world.frontier = t_end;
    messages
}

#[test]
fn dbms_position_answers_are_sound_ail() {
    let mut world = build_world(1, Quintuple::ail, BoundKind::Immediate);
    // Drive to each checkpoint and query at the current time (the model
    // answers current and future queries; the past is not stored).
    for step in [1, 60, 300, 600, 900, 1200] {
        let t = step as f64 * DT;
        drive_until(&mut world, t);
        for i in 0..N {
            let ans = world.db.position_of(ObjectId(i as u64), t).unwrap();
            let actual_arc = world.trips[i].arc_at(&world.route, t);
            let deviation = (actual_arc - ans.arc).abs();
            // The DB state lags the engine by at most the current tick, so
            // allow one tick of slack at max speed.
            let slack = world.trips[i].max_speed() * DT + 1e-9;
            assert!(
                deviation <= ans.bound + slack,
                "veh-{i} t={t}: deviation {deviation} > bound {}",
                ans.bound
            );
            assert!(
                actual_arc >= ans.interval.0 - slack && actual_arc <= ans.interval.1 + slack,
                "veh-{i} t={t}: actual {actual_arc} outside interval {:?}",
                ans.interval
            );
        }
    }
}

#[test]
fn dbms_position_answers_are_sound_dl() {
    let mut world = build_world(2, Quintuple::dl, BoundKind::Delayed);
    for step in [30, 300, 900] {
        let t = step as f64 * DT;
        drive_until(&mut world, t);
        for i in 0..N {
            let ans = world.db.position_of(ObjectId(i as u64), t).unwrap();
            let actual_arc = world.trips[i].arc_at(&world.route, t);
            let deviation = (actual_arc - ans.arc).abs();
            let slack = world.trips[i].max_speed() * DT + 1e-9;
            assert!(
                deviation <= ans.bound + slack,
                "veh-{i} t={t}: deviation {deviation} > bound {}",
                ans.bound
            );
        }
    }
}

#[test]
fn range_queries_bracket_ground_truth() {
    let mut world = build_world(3, Quintuple::ail, BoundKind::Immediate);
    drive_until(&mut world, 15.0);
    let t = 15.0;
    for (x0, x1) in [(0.0, 30.0), (20.0, 60.0), (50.0, 150.0)] {
        let g = Polygon::rectangle(&Rect::new(Point::new(x0, -1.0), Point::new(x1, 11.0))).unwrap();
        let region = QueryRegion::at_instant(g.clone(), t);
        let answer = world.db.range_query(&region).unwrap();
        let all = answer.all();
        for i in 0..N {
            let actual = world.route.point_at(world.trips[i].arc_at(&world.route, t));
            let id = ObjectId(i as u64);
            if g.contains_point(actual) {
                assert!(
                    all.contains(&id),
                    "veh-{i} actually in G but missing from may∪must"
                );
            }
            if answer.must.contains(&id) {
                assert!(
                    g.contains_point(actual),
                    "veh-{i} in must but actually outside G"
                );
            }
        }
        // Index agrees with scan.
        let scan = world.db.range_query_scan(&region).unwrap();
        assert_eq!(answer.must, scan.must);
        assert_eq!(answer.may, scan.may);
    }
}

#[test]
fn updates_are_vastly_fewer_than_ticks() {
    let mut world = build_world(4, Quintuple::ail, BoundKind::Immediate);
    let messages = drive_until(&mut world, 30.0);
    let ticks = N * (30.0 / DT) as usize;
    assert!(
        (messages as f64) < ticks as f64 * 0.02,
        "sent {messages} messages for {ticks} vehicle-ticks"
    );
    assert!(messages > 0, "some updates must fire on mixed trips");
}

#[test]
fn future_queries_use_decayed_bounds() {
    let mut world = build_world(5, Quintuple::ail, BoundKind::Immediate);
    drive_until(&mut world, 10.0);
    // Query 20 minutes past the last update: ail bound = 2C/t is small.
    let id = ObjectId(0);
    let last_update = world.db.moving(id).unwrap().attr.start_time;
    let ans = world.db.position_of(id, last_update + 20.0).unwrap();
    assert!(
        ans.bound <= 2.0 * C / 20.0 + 1e-9,
        "future bound {} should have decayed",
        ans.bound
    );
}
