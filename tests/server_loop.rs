//! Full production-shape integration: vehicles run policy engines, their
//! updates flow through the sharded ingest service, and dispatch queries
//! run concurrently against the shared handle — then answers are checked
//! against ground truth.

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::Point;
use modb::motion::{Trip, TripProfile};
use modb::policy::{BoundKind, Policy, PolicyEngine, PositionUpdate, Quintuple};
use modb::routes::{Direction, Route, RouteId, RouteNetwork};
use modb::server::{IngestService, SharedDatabase, UpdateEnvelope};
use rand::rngs::StdRng;
use rand::SeedableRng;

const C: f64 = 5.0;
const FLEET: usize = 16;
const DT: f64 = 1.0 / 60.0;
const MINUTES: f64 = 12.0;

#[test]
fn vehicles_ingest_and_queries_agree_with_truth() {
    let route = Route::from_vertices(
        RouteId(1),
        "artery",
        vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)],
    )
    .unwrap();
    let network = RouteNetwork::from_routes([route.clone()]).unwrap();
    let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));

    let mut rng = StdRng::seed_from_u64(77);
    let mut engines = Vec::new();
    let mut trips = Vec::new();
    for i in 0..FLEET {
        let start_arc = 10.0 * i as f64;
        let curve = TripProfile::ALL[i % 4]
            .generate(&mut rng, MINUTES, DT)
            .unwrap();
        let trip = Trip::new(RouteId(1), Direction::Forward, start_arc, 0.0, curve).unwrap();
        let v0 = trip.speed_at(DT);
        db.register_moving(MovingObject {
            id: ObjectId(i as u64),
            name: format!("veh-{i}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: route.point_at(start_arc),
                start_arc,
                direction: Direction::Forward,
                speed: v0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: C,
                },
            },
            max_speed: trip.max_speed().max(0.1),
            trip_end: Some(MINUTES),
        })
        .unwrap();
        engines.push(
            PolicyEngine::new(
                Quintuple::ail(C),
                route.length(),
                1.0,
                PositionUpdate {
                    time: 0.0,
                    arc: start_arc,
                    speed: v0,
                },
            )
            .unwrap(),
        );
        trips.push(trip);
    }

    // Drive the fleet; updates go through the ingest service while a
    // reader thread keeps querying.
    let service = IngestService::spawn(db.clone(), 4, 256);
    let handle = service.handle();
    let reader_db = db.clone();
    let reader = std::thread::spawn(move || {
        let mut answered = 0usize;
        for _ in 0..100 {
            let r = reader_db
                .within_distance_of_point(Point::new(80.0, 0.0), 30.0, 6.0)
                .unwrap();
            answered += r.all().len();
            std::thread::yield_now();
        }
        answered
    });
    let n_ticks = (MINUTES / DT).round() as usize;
    let mut sent = 0usize;
    for step in 1..=n_ticks {
        let t = step as f64 * DT;
        for (i, (engine, trip)) in engines.iter_mut().zip(&trips).enumerate() {
            let arc = trip.arc_at(&route, t);
            if let Some(u) = engine.tick(t, arc, trip.speed_at(t)).unwrap() {
                handle
                    .send(UpdateEnvelope {
                        id: ObjectId(i as u64),
                        msg: UpdateMessage::basic(u.time, UpdatePosition::Arc(u.arc), u.speed),
                    })
                    .unwrap();
                sent += 1;
            }
        }
    }
    reader.join().unwrap();
    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.accepted, sent, "all policy updates must be applied");
    assert_eq!(
        stats.rejected(),
        0,
        "sharded ingest preserves per-object order"
    );

    // Post-drive: every DBMS answer is within its advertised bound of the
    // true position.
    for (i, trip) in trips.iter().enumerate().take(FLEET) {
        let ans = db.position_of(ObjectId(i as u64), MINUTES).unwrap();
        let true_arc = trip.arc_at(&route, MINUTES);
        let deviation = (true_arc - ans.arc).abs();
        let slack = trip.max_speed() * DT + 1e-9;
        assert!(
            deviation <= ans.bound + slack,
            "veh-{i}: deviation {deviation} > bound {}",
            ans.bound
        );
    }

    // Dispatch via the text language on the shared handle agrees with the
    // native API.
    let via_text = db
        .run_query("RETRIEVE OBJECTS INSIDE RECT (50, -1, 120, 1) AT TIME 12")
        .unwrap();
    let region = modb::index::QueryRegion::at_instant(
        modb::geom::Polygon::rectangle(&modb::geom::Rect::new(
            Point::new(50.0, -1.0),
            Point::new(120.0, 1.0),
        ))
        .unwrap(),
        12.0,
    );
    let via_api = db.range_query(&region).unwrap();
    assert_eq!(via_text.as_range().unwrap(), &via_api);
}
