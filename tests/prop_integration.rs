//! Property-based integration tests across crates: random fleets, random
//! update streams, random queries — index answers must always equal scan
//! answers, and bounds must always hold.

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::{Point, Polygon, Rect};
use modb::index::QueryRegion;
use modb::policy::BoundKind;
use modb::routes::{Direction, Route, RouteId, RouteNetwork};
use proptest::prelude::*;

const C: f64 = 5.0;

fn network() -> RouteNetwork {
    RouteNetwork::from_routes([
        Route::from_vertices(
            RouteId(1),
            "east-west",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap(),
        Route::from_vertices(
            RouteId(2),
            "diagonal",
            vec![Point::new(0.0, 30.0), Point::new(80.0, -30.0)],
        )
        .unwrap(),
        Route::from_vertices(
            RouteId(3),
            "bent",
            vec![
                Point::new(10.0, 10.0),
                Point::new(50.0, 40.0),
                Point::new(90.0, 10.0),
            ],
        )
        .unwrap(),
    ])
    .unwrap()
}

#[derive(Debug, Clone)]
struct FleetSpec {
    objects: Vec<(u64, u64, f64, f64, bool, bool)>, // id, route, arc_frac, speed, backward, immediate
    updates: Vec<(usize, f64, f64, f64)>,           // object index, time, arc_frac, speed
    query: (f64, f64, f64, f64, f64),               // x0, y0, w, h, t
}

fn fleet_spec() -> impl Strategy<Value = FleetSpec> {
    (
        proptest::collection::vec(
            (
                1u64..4,
                0.0f64..1.0,
                0.0f64..1.4,
                any::<bool>(),
                any::<bool>(),
            ),
            1..20,
        ),
        proptest::collection::vec((0usize..20, 0.1f64..30.0, 0.0f64..1.0, 0.0f64..1.4), 0..30),
        (
            -10.0f64..90.0,
            -35.0f64..35.0,
            2.0f64..40.0,
            2.0f64..40.0,
            0.0f64..40.0,
        ),
    )
        .prop_map(|(raw_objects, updates, query)| FleetSpec {
            objects: raw_objects
                .into_iter()
                .enumerate()
                .map(|(i, (route, arc, speed, backward, immediate))| {
                    (i as u64, route, arc, speed, backward, immediate)
                })
                .collect(),
            updates,
            query,
        })
}

fn build(spec: &FleetSpec) -> Database {
    let net = network();
    let mut db = Database::new(net, DatabaseConfig::default());
    for &(id, route, arc_frac, speed, backward, immediate) in &spec.objects {
        let rid = RouteId(route);
        let r = db.network().get(rid).unwrap();
        let arc = arc_frac * r.length();
        let start_position = r.point_at(arc);
        db.register_moving(MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: rid,
                start_position,
                start_arc: arc,
                direction: if backward {
                    Direction::Backward
                } else {
                    Direction::Forward
                },
                speed,
                policy: PolicyDescriptor::CostBased {
                    kind: if immediate {
                        BoundKind::Immediate
                    } else {
                        BoundKind::Delayed
                    },
                    update_cost: C,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        })
        .unwrap();
    }
    // Apply the update stream; per-object timestamps must be monotone, so
    // sort by time first and skip stale ones silently (the property is
    // about query consistency, not update ordering).
    let mut updates = spec.updates.clone();
    updates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (idx, time, arc_frac, speed) in updates {
        let n = spec.objects.len();
        let id = ObjectId(spec.objects[idx % n].0);
        let rid = db.moving(id).unwrap().attr.route;
        let len = db.network().get(rid).unwrap().length();
        let _ = db.apply_update(
            id,
            &UpdateMessage::basic(time, UpdatePosition::Arc(arc_frac * len), speed),
        );
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The index-backed range query and the exhaustive scan agree on every
    /// random fleet, update stream, and query.
    #[test]
    fn index_equals_scan(spec in fleet_spec()) {
        let db = build(&spec);
        let (x0, y0, w, h, t) = spec.query;
        let g = Polygon::rectangle(&Rect::new(
            Point::new(x0, y0),
            Point::new(x0 + w, y0 + h),
        )).unwrap();
        let region = QueryRegion::at_instant(g, t);
        let a = db.range_query(&region).unwrap();
        let b = db.range_query_scan(&region).unwrap();
        prop_assert_eq!(&a.must, &b.must);
        prop_assert_eq!(&a.may, &b.may);
        // must and may are disjoint and sorted.
        for id in &a.must {
            prop_assert!(!a.may.contains(id));
        }
    }

    /// Every position answer is internally consistent: the database
    /// position lies inside its own uncertainty interval, the interval
    /// path's ends resolve to the interval arcs, and the bound is
    /// non-negative and finite.
    #[test]
    fn position_answers_consistent(spec in fleet_spec(), t in 0.0f64..60.0) {
        let db = build(&spec);
        for &(id, ..) in &spec.objects {
            let ans = db.position_of(ObjectId(id), t).unwrap();
            prop_assert!(ans.bound >= 0.0 && ans.bound.is_finite());
            prop_assert!(ans.interval.0 <= ans.arc + 1e-9);
            prop_assert!(ans.interval.1 >= ans.arc - 1e-9);
            prop_assert!(!ans.interval_path.is_empty());
            let rid = db.moving(ObjectId(id)).unwrap().attr.route;
            let route = db.network().get(rid).unwrap();
            let first = ans.interval_path.first().unwrap();
            prop_assert!(first.approx_eq(route.point_at(ans.interval.0)));
            let last = ans.interval_path.last().unwrap();
            prop_assert!(last.approx_eq(route.point_at(ans.interval.1)));
        }
    }

    /// The textual query language agrees with the native API on random
    /// rectangles.
    #[test]
    fn query_language_matches_api(spec in fleet_spec()) {
        let db = build(&spec);
        let (x0, y0, w, h, t) = spec.query;
        let src = format!(
            "RETRIEVE OBJECTS INSIDE RECT ({x0}, {y0}, {}, {}) AT TIME {t}",
            x0 + w, y0 + h
        );
        let via_text = modb::query::run(&db, &src).unwrap();
        let g = Polygon::rectangle(&Rect::new(
            Point::new(x0, y0),
            Point::new(x0 + w, y0 + h),
        )).unwrap();
        let via_api = db.range_query(&QueryRegion::at_instant(g, t)).unwrap();
        prop_assert_eq!(via_text.as_range().unwrap(), &via_api);
    }
}
