//! Quickstart: register a moving object, let it drive, watch the
//! cost-based update policy fire, and query its position with an error
//! bound.
//!
//! Run with: `cargo run --example quickstart`

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::Point;
use modb::policy::{BoundKind, Policy, PolicyEngine, PositionUpdate, Quintuple};
use modb::routes::{Direction, Route, RouteId, RouteNetwork};

fn main() {
    // ── 1. The route database: one 20-mile highway. ────────────────────
    let highway = Route::from_vertices(
        RouteId(1),
        "I-90",
        vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)],
    )
    .expect("valid route");
    let network = RouteNetwork::from_routes([highway]).expect("unique ids");
    let mut db = Database::new(network, DatabaseConfig::default());

    // ── 2. Register a vehicle at mile 0, declaring 60 mph (1 mi/min),
    //       using the ail policy with update cost C = 5. ─────────────────
    const C: f64 = 5.0;
    db.register_moving(MovingObject {
        id: ObjectId(1),
        name: "cab-42".into(),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(0.0, 0.0),
            start_arc: 0.0,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: C,
            },
        },
        max_speed: 1.5,
        trip_end: Some(30.0),
    })
    .expect("registration ok");

    // ── 3. Onboard, the same policy decides when to send updates. ──────
    // The vehicle cruises at 1 mi/min for 2 minutes, then hits a jam and
    // stops — the paper's Example 1.
    let mut onboard = PolicyEngine::new(
        Quintuple::ail(C),
        20.0,
        1.0,
        PositionUpdate {
            time: 0.0,
            arc: 0.0,
            speed: 1.0,
        },
    )
    .expect("valid policy");

    let dt = 1.0 / 60.0; // one-second ticks
    let mut t: f64 = 0.0;
    let mut messages = 0;
    while t < 10.0 {
        t += dt;
        let actual_arc = t.min(2.0); // stopped at mile 2 after minute 2
        let speed = if t <= 2.0 { 1.0 } else { 0.0 };
        if let Some(update) = onboard
            .tick(t, actual_arc, speed)
            .expect("well-formed observation")
        {
            messages += 1;
            println!(
                "t = {:5.2} min: UPDATE sent — position mile {:.2}, declared speed {:.3} mi/min",
                t, update.arc, update.speed
            );
            db.apply_update(
                ObjectId(1),
                &UpdateMessage::basic(update.time, UpdatePosition::Arc(update.arc), update.speed),
            )
            .expect("update accepted");
        }
    }
    println!("messages sent in 10 minutes: {messages} (a naive per-tick updater would send 600)");

    // ── 4. Query: where is cab-42 now, and how wrong can the answer be? ─
    let answer = db.position_of(ObjectId(1), 10.0).expect("known object");
    println!(
        "DBMS answer at t = 10: position ({:.2}, {:.2}) mi, deviation bound {:.2} mi",
        answer.position.x, answer.position.y, answer.bound
    );
    println!(
        "uncertainty interval: miles {:.2} .. {:.2} along I-90",
        answer.interval.0, answer.interval.1
    );
    assert!(answer.bound < 2.0, "ail bound has decayed below 2 miles");
}
