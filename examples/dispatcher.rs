//! Dispatcher console: the textual query language over a live fleet.
//!
//! Demonstrates `modb::query` — the §5/§6 "query languages for these
//! databases" extension — running every query shape the paper motivates,
//! plus an as-of (transaction-time) position query.
//!
//! Run with: `cargo run --example dispatcher`

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::Point;
use modb::policy::BoundKind;
use modb::query::{run, QueryResult};
use modb::routes::{generators, Direction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // An 8-spoke radial network, 15 vehicles.
    let network = generators::radial_network(Point::new(0.0, 0.0), 20.0, 8, 0).expect("valid");
    let route_ids = network.route_ids();
    let mut db = Database::new(network, DatabaseConfig::default());
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..15u64 {
        let rid = route_ids[rng.gen_range(0..route_ids.len())];
        let route = db.network().get(rid).expect("route");
        let arc = rng.gen_range(0.0..route.length() / 2.0);
        db.register_moving(MovingObject {
            id: ObjectId(i),
            name: if i == 4 {
                "ABT312".into()
            } else {
                format!("unit-{i:02}")
            },
            attr: PositionAttribute {
                start_time: 0.0,
                route: rid,
                start_position: route.point_at(arc),
                start_arc: arc,
                direction: Direction::Forward,
                speed: rng.gen_range(0.4..1.2),
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: Some(90.0),
        })
        .expect("registered");
    }
    // One mid-trip update so the as-of query has history to replay.
    db.apply_update(
        ObjectId(4),
        &UpdateMessage::basic(6.0, UpdatePosition::Arc(8.0), 0.9),
    )
    .expect("accepted");

    let queries = [
        "RETRIEVE POSITION OF OBJECT 'ABT312' AT TIME 10",
        "RETRIEVE OBJECTS INSIDE RECT (-5, -5, 5, 5) AT TIME 10",
        "RETRIEVE OBJECTS INSIDE POLYGON ((0,0), (15,0), (15,15), (0,15)) DURING 0 TO 20",
        "RETRIEVE OBJECTS WITHIN 4 OF POINT (6, 0) AT TIME 10",
        "RETRIEVE OBJECTS WITHIN 6 OF OBJECT 'ABT312' AT TIME 10",
        "RETRIEVE 3 NEAREST OBJECTS TO POINT (0, 0) AT TIME 10",
    ];
    for q in queries {
        println!("modb> {q}");
        match run(&db, q) {
            Ok(QueryResult::Position(p)) => println!(
                "  position ({:.2}, {:.2}) ± {:.2} mi, interval miles {:.2}..{:.2}\n",
                p.position.x, p.position.y, p.bound, p.interval.0, p.interval.1
            ),
            Ok(QueryResult::Range(r)) => {
                let names = |ids: &[ObjectId]| {
                    ids.iter()
                        .map(|id| db.moving(*id).map(|o| o.name.clone()).unwrap_or_default())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                println!(
                    "  must: [{}]\n  may:  [{}]  ({} candidates filtered)\n",
                    names(&r.must),
                    names(&r.may),
                    r.candidates
                );
            }
            Ok(QueryResult::Nearest(n)) => {
                for nb in &n.ranked {
                    let name = db.moving(nb.id).map(|o| o.name.clone()).unwrap_or_default();
                    println!(
                        "  {} at {:.2} mi (±{:.2}) — {}",
                        name,
                        nb.distance,
                        nb.bound,
                        if nb.certain { "certain" } else { "possible" }
                    );
                }
                println!("  ({} contenders)\n", n.contenders.len());
            }
            Err(e) => println!("  error: {e}\n"),
        }
    }

    // A malformed query produces a located diagnostic, not a panic.
    let bad = "RETRIEVE OBJECTS INSIDE CIRCLE (0,0,5) AT TIME 1";
    println!("modb> {bad}");
    println!("  error: {}\n", run(&db, bad).unwrap_err());

    // As-of query (API-level): where did the DBMS believe ABT312 was at
    // t = 3, before its t = 6 update rewrote the attribute?
    let then = db
        .position_of_as_of(ObjectId(4), 3.0)
        .expect("history kept");
    let now = db.position_of(ObjectId(4), 10.0).expect("known");
    println!(
        "as-of t=3 belief: ({:.2}, {:.2}) ± {:.2} | current t=10 belief: ({:.2}, {:.2}) ± {:.2}",
        then.position.x, then.position.y, then.bound, now.position.x, now.position.y, now.bound
    );
}
