//! Taxi fleet: the paper's §1 motivating query — "retrieve the free cabs
//! that are currently within 1 mile of 33 N. Michigan Ave., Chicago".
//!
//! A fleet of cabs drives a Manhattan-style grid; the dispatcher runs
//! within-distance queries with may/must semantics and inspects the
//! uncertainty the DBMS attaches to each answer.
//!
//! Run with: `cargo run --example taxi_fleet`

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    StationaryObject,
};
use modb::geom::Point;
use modb::policy::BoundKind;
use modb::routes::{generators, Direction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: f64 = 5.0;
const FLEET: usize = 200;

fn main() {
    // A 12×12-street grid, one mile between streets.
    let network = generators::grid_network(12, 12, 1.0, 0).expect("valid grid");
    let route_ids = network.route_ids();
    let mut db = Database::new(network, DatabaseConfig::default());

    // The landmark the dispatcher cares about.
    let michigan_ave = Point::new(5.0, 6.0);
    db.insert_stationary(StationaryObject::new(
        ObjectId(100_000),
        "33 N. Michigan Ave.",
        michigan_ave,
    ))
    .expect("landmark registered");

    // Scatter the fleet over the grid with an ail policy each.
    let mut rng = StdRng::seed_from_u64(2024);
    for i in 0..FLEET {
        let rid = route_ids[rng.gen_range(0..route_ids.len())];
        let route = db.network().get(rid).expect("route exists");
        let arc = rng.gen_range(0.0..route.length());
        db.register_moving(MovingObject {
            id: ObjectId(i as u64),
            name: format!("cab-{i:03}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: rid,
                start_position: route.point_at(arc),
                start_arc: arc,
                direction: if rng.gen_bool(0.5) {
                    Direction::Forward
                } else {
                    Direction::Backward
                },
                speed: rng.gen_range(0.2..0.8), // city speeds
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: C,
                },
            },
            max_speed: 1.0,
            trip_end: Some(120.0),
        })
        .expect("cab registered");
    }
    println!(
        "fleet registered: {} cabs on a 12x12-mile grid",
        db.moving_count()
    );

    // Dispatch queries at a few times; watch the answer tighten as the
    // ail bound decays.
    for t in [1.0, 4.0, 10.0, 20.0] {
        let answer = db
            .within_distance_of_point(michigan_ave, 1.0, t)
            .expect("query ok");
        println!(
            "t = {t:4.1} min: cabs within 1 mile of 33 N. Michigan Ave.: \
             {} certain, {} possible (index filtered {} candidates, visited {} tree nodes)",
            answer.must.len(),
            answer.may.len(),
            answer.candidates,
            answer.stats.nodes_visited,
        );
        // Show one certain answer in detail, with its uncertainty.
        if let Some(&id) = answer.must.first() {
            let pos = db.position_of(id, t).expect("known cab");
            let cab = db.moving(id).expect("known cab");
            println!(
                "         e.g. {} at ({:.2}, {:.2}) ± {:.2} mi",
                cab.name, pos.position.x, pos.position.y, pos.bound
            );
        }
    }

    // Cross-check: the index answer equals the exhaustive scan.
    let region = modb::index::within_radius(michigan_ave, 1.0, 10.0).expect("valid radius");
    let via_index = db.range_query(&region).expect("query ok");
    let via_scan = db.range_query_scan(&region).expect("query ok");
    assert_eq!(via_index.must, via_scan.must);
    assert_eq!(via_index.may, via_scan.may);
    println!("index answers verified against exhaustive scan ✓");
}
