//! Trucking: the paper's §1 query — "retrieve the trucks that are
//! currently within 1 mile of truck ABT312 (which needs assistance)" —
//! plus the full onboard-to-DBMS update loop over a simulated convoy.
//!
//! Each truck runs its own policy engine over a mixed-regime speed curve;
//! updates flow into the database exactly as they would over a wireless
//! link, and the dispatcher queries around the breakdown.
//!
//! Run with: `cargo run --example trucking`

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb::geom::Point;
use modb::motion::{Trip, TripProfile};
use modb::policy::{BoundKind, Policy, PolicyEngine, PositionUpdate, Quintuple};
use modb::routes::{Direction, Route, RouteId, RouteNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

const C: f64 = 5.0;
const TRUCKS: usize = 12;

fn main() {
    // One long interstate; the convoy starts staggered along it.
    let interstate = Route::from_vertices(
        RouteId(1),
        "I-80",
        vec![
            Point::new(0.0, 0.0),
            Point::new(40.0, 5.0),
            Point::new(80.0, 0.0),
            Point::new(120.0, 5.0),
        ],
    )
    .expect("valid route");
    let route_len = interstate.length();
    let network = RouteNetwork::from_routes([interstate]).expect("unique ids");
    let mut db = Database::new(network, DatabaseConfig::default());

    // Build trips and onboard engines.
    let mut rng = StdRng::seed_from_u64(7);
    let mut onboard = Vec::new();
    let mut trips = Vec::new();
    for i in 0..TRUCKS {
        let start_arc = 2.0 * i as f64;
        let curve = TripProfile::Mixed
            .generate(&mut rng, 45.0, 1.0 / 60.0)
            .expect("valid curve");
        let trip =
            Trip::new(RouteId(1), Direction::Forward, start_arc, 0.0, curve).expect("valid trip");
        let initial_speed = trip.speed_at(1.0 / 60.0);
        db.register_moving(MovingObject {
            id: ObjectId(i as u64),
            name: if i == 3 {
                "ABT312".into()
            } else {
                format!("truck-{i:02}")
            },
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: db
                    .network()
                    .get(RouteId(1))
                    .expect("route")
                    .point_at(start_arc),
                start_arc,
                direction: Direction::Forward,
                speed: initial_speed,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: C,
                },
            },
            max_speed: 1.5,
            trip_end: Some(45.0),
        })
        .expect("registered");
        onboard.push(
            PolicyEngine::new(
                Quintuple::ail(C),
                route_len,
                1.0,
                PositionUpdate {
                    time: 0.0,
                    arc: start_arc,
                    speed: initial_speed,
                },
            )
            .expect("valid policy"),
        );
        trips.push(trip);
    }

    // Drive for 30 minutes: every truck ticks its policy; fired updates
    // go to the DBMS.
    let dt = 1.0 / 60.0;
    let route = db.network().get(RouteId(1)).expect("route").clone();
    let mut total_messages = 0;
    for step in 1..=(30 * 60) {
        let t = step as f64 * dt;
        for (i, (engine, trip)) in onboard.iter_mut().zip(&trips).enumerate() {
            let arc = trip.arc_at(&route, t);
            let speed = trip.speed_at(t);
            if let Some(u) = engine.tick(t, arc, speed).expect("well-formed") {
                total_messages += 1;
                db.apply_update(
                    ObjectId(i as u64),
                    &UpdateMessage::basic(u.time, UpdatePosition::Arc(u.arc), u.speed),
                )
                .expect("accepted");
            }
        }
    }
    println!(
        "30 simulated minutes, {TRUCKS} trucks: {total_messages} update messages \
         ({:.1} per truck; naive per-second updating would need 1800 each)",
        total_messages as f64 / TRUCKS as f64
    );

    // ABT312 breaks down and calls for help: who is within 3 miles?
    let t_now = 30.0;
    let abt312 = ObjectId(3);
    let answer = db
        .within_distance_of_object(abt312, 3.0, t_now)
        .expect("query ok");
    let abt_pos = db.position_of(abt312, t_now).expect("known truck");
    println!(
        "ABT312 is at ({:.2}, {:.2}) ± {:.2} mi; trucks within 3 miles: {} certain, {} possible",
        abt_pos.position.x,
        abt_pos.position.y,
        abt_pos.bound,
        answer.must.len(),
        answer.may.len()
    );
    for id in answer.all() {
        let truck = db.moving(id).expect("known");
        let pos = db.position_of(id, t_now).expect("known");
        let kind = if answer.must.contains(&id) {
            "MUST"
        } else {
            "may "
        };
        println!(
            "  [{kind}] {} at ({:.2}, {:.2}) ± {:.2} mi",
            truck.name, pos.position.x, pos.position.y, pos.bound
        );
    }
    // Ground truth check: which trucks are actually within 3 route-miles?
    let abt_actual = trips[3].arc_at(&route, t_now);
    let actually: Vec<String> = trips
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 3)
        .filter(|(_, trip)| (trip.arc_at(&route, t_now) - abt_actual).abs() <= 3.0)
        .map(|(i, _)| format!("truck-{i:02}"))
        .collect();
    println!("ground truth (route distance ≤ 3 mi): {actually:?}");
}
