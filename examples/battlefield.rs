//! Battlefield: the paper's §1 query — "retrieve the friendly helicopters
//! that are currently in a given region" — including *future* queries
//! ("where will the helicopters be in 10 minutes", §5) and the
//! must/may distinction that matters when the answer drives decisions.
//!
//! Helicopters fly radial corridors out of a base; command asks which
//! units are certainly inside an operation area now and at t+10.
//!
//! Run with: `cargo run --example battlefield`

use modb::core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
};
use modb::geom::{Point, Polygon, Rect};
use modb::index::QueryRegion;
use modb::policy::BoundKind;
use modb::routes::{generators, Direction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: f64 = 2.0; // military link: cheap-ish messages, tight bounds
const SQUADRON: usize = 24;

fn main() {
    // 16 flight corridors radiating 30 miles from the forward base.
    let base = Point::new(0.0, 0.0);
    let network = generators::radial_network(base, 30.0, 16, 0).expect("valid corridors");
    let route_ids = network.route_ids();
    let mut db = Database::new(network, DatabaseConfig::default());

    let mut rng = StdRng::seed_from_u64(1944);
    for i in 0..SQUADRON {
        let rid = route_ids[rng.gen_range(0..route_ids.len())];
        let route = db.network().get(rid).expect("corridor");
        let arc = rng.gen_range(0.0..route.length() / 2.0);
        db.register_moving(MovingObject {
            id: ObjectId(i as u64),
            name: format!("helo-{i:02}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: rid,
                start_position: route.point_at(arc),
                start_arc: arc,
                direction: Direction::Forward,  // outbound
                speed: rng.gen_range(1.5..2.5), // 90–150 mph
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: C,
                },
            },
            max_speed: 3.0,
            trip_end: Some(60.0),
        })
        .expect("registered");
    }
    println!("{SQUADRON} helicopters on 16 corridors out of base (0, 0)");

    // Operation area: a 12×12-mile box northeast of the base.
    let op_area = Polygon::rectangle(&Rect::new(Point::new(5.0, 5.0), Point::new(17.0, 17.0)))
        .expect("valid polygon");

    for (label, t) in [("now (t = 2)", 2.0), ("in 10 minutes (t = 12)", 12.0)] {
        let region = QueryRegion::at_instant(op_area.clone(), t);
        let answer = db.range_query(&region).expect("query ok");
        println!(
            "\n{label}: {} helicopters MUST be in the op area, {} MAY be:",
            answer.must.len(),
            answer.may.len()
        );
        for id in &answer.must {
            let h = db.moving(*id).expect("known");
            let p = db.position_of(*id, t).expect("known");
            println!(
                "  [MUST] {} at ({:+.1}, {:+.1}) ± {:.2} mi",
                h.name, p.position.x, p.position.y, p.bound
            );
        }
        for id in &answer.may {
            let h = db.moving(*id).expect("known");
            let p = db.position_of(*id, t).expect("known");
            println!(
                "  [may ] {} at ({:+.1}, {:+.1}) ± {:.2} mi",
                h.name, p.position.x, p.position.y, p.bound
            );
        }
    }

    // "During" query: which units touch the op area at any point in the
    // next 15 minutes? (An extension of the paper's instant queries.)
    let during = QueryRegion::during(op_area, 0.0, 15.0);
    let answer = db.range_query(&during).expect("query ok");
    println!(
        "\nany time in the next 15 minutes: {} certain, {} possible transits",
        answer.must.len(),
        answer.may.len()
    );
}
