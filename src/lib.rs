//! # modb — moving-objects database (umbrella crate)
//!
//! Re-exports the `modb-*` workspace crates under one roof. See the README
//! for the architecture overview and `DESIGN.md` for the paper mapping.

#![warn(missing_docs)]

pub use modb_core as core;
pub use modb_geom as geom;
pub use modb_index as index;
pub use modb_motion as motion;
pub use modb_policy as policy;
pub use modb_query as query;
pub use modb_routes as routes;
pub use modb_server as server;
pub use modb_sim as sim;
pub use modb_wal as wal;
